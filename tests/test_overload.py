"""Tests for the overload-survival layer.

Covers the four mechanisms — admission control, deadline propagation,
adaptive resubmission backoff with GIVEUP escalation, and per-site
circuit breakers — at unit level and wired through a full system, plus
the drill's invariant battery and determinism, and the dead-letter
bound on both transports.
"""

import random

import pytest

from repro.common.errors import ConfigError, RefusalReason
from repro.common.ids import SerialNumber, global_txn
from repro.core.agent import AgentConfig, AgentPhase, _AgentTxn
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.core.intervals import AliveInterval
from repro.ldbs.commands import AddValue, UpdateItem
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network
from repro.kernel import EventKernel
from repro.overload.admission import AdmissionController
from repro.overload.backoff import ResubmitBackoff
from repro.overload.breaker import BreakerRegistry, BreakerState, CircuitBreaker
from repro.overload.config import BreakerConfig, OverloadConfig
from repro.sim.failures import abort_current_incarnation
from repro.sim.overload import OverloadDrillConfig, run_overload


def _update(key=1, delta=1):
    return UpdateItem("t", key, AddValue(delta))


def make_system(overload, sites=("a", "b"), **kwargs):
    system = MultidatabaseSystem(
        SystemConfig(sites=sites, n_coordinators=1, overload=overload, **kwargs)
    )
    for site in sites:
        system.load(site, "t", {k: 100 for k in range(8)})
    return system


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestConfigValidation:
    def test_defaults_are_valid(self):
        OverloadConfig()
        BreakerConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight_globals": 0},
            {"shed_start_fraction": 1.5},
            {"shed_start_fraction": -0.1},
            {"default_deadline": 0.0},
            {"resubmit_backoff_base": 0.0},
            {"resubmit_backoff_factor": 0.5},
            {"resubmit_backoff_max": 5.0, "resubmit_backoff_base": 10.0},
            {"resubmit_backoff_jitter": -1.0},
            {"resubmit_budget": 0},
            {"min_commit_retry": 0.0},
            {"commit_retry_halflife": 0.0},
        ],
    )
    def test_bad_overload_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            OverloadConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_volume": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"open_duration": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_bad_breaker_values_raise(self, kwargs):
        with pytest.raises(ConfigError):
            BreakerConfig(**kwargs)


# ----------------------------------------------------------------------
# Backoff
# ----------------------------------------------------------------------


class TestBackoff:
    def cfg(self, **kwargs):
        defaults = dict(
            resubmit_backoff_base=10.0,
            resubmit_backoff_factor=2.0,
            resubmit_backoff_max=80.0,
            resubmit_backoff_jitter=0.0,
        )
        defaults.update(kwargs)
        return OverloadConfig(**defaults)

    def test_exponential_growth_and_cap(self):
        backoff = ResubmitBackoff(self.cfg(), random.Random(0))
        assert [backoff.delay(n) for n in (1, 2, 3, 4, 5)] == [
            10.0,
            20.0,
            40.0,
            80.0,
            80.0,  # capped
        ]

    def test_attempt_floor(self):
        backoff = ResubmitBackoff(self.cfg(), random.Random(0))
        assert backoff.delay(0) == backoff.delay(1) == 10.0

    def test_jitter_bounded_and_seeded(self):
        config = self.cfg(resubmit_backoff_jitter=5.0)
        a = ResubmitBackoff(config, random.Random(7))
        b = ResubmitBackoff(config, random.Random(7))
        delays_a = [a.delay(1) for _ in range(50)]
        delays_b = [b.delay(1) for _ in range(50)]
        assert delays_a == delays_b  # same seed, same schedule
        assert all(10.0 <= d < 15.0 for d in delays_a)
        assert len(set(delays_a)) > 1  # the jitter actually jitters


# ----------------------------------------------------------------------
# Admission controller
# ----------------------------------------------------------------------


class TestAdmission:
    def test_hard_cap_refuses(self):
        admission = AdmissionController(OverloadConfig(max_inflight_globals=2))
        assert admission.try_admit()
        assert admission.try_admit()
        assert not admission.try_admit()
        assert (admission.admitted, admission.shed) == (2, 1)
        admission.release()
        assert admission.try_admit()

    def test_release_underflow_raises(self):
        admission = AdmissionController(OverloadConfig())
        with pytest.raises(RuntimeError):
            admission.release()

    def test_shed_ramp_is_probabilistic_and_seeded(self):
        config = OverloadConfig(max_inflight_globals=10, shed_start_fraction=0.5)

        def shed_profile(seed):
            admission = AdmissionController(config, seed=seed)
            return [admission.try_admit() for _ in range(30)]

        assert shed_profile(3) == shed_profile(3)  # deterministic
        profile = shed_profile(3)
        # Below the ramp start nothing is shed.
        assert all(profile[:5])
        # The ramp shed something before the hard cap...
        assert not all(profile[5:])
        # ...and the hard cap is still absolute.
        admission = AdmissionController(config, seed=3)
        while admission.try_admit():
            pass
        assert admission.inflight <= 10


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestBreaker:
    def cfg(self, **kwargs):
        defaults = dict(
            window=8,
            min_volume=4,
            failure_threshold=0.5,
            open_duration=100.0,
            half_open_probes=2,
        )
        defaults.update(kwargs)
        return BreakerConfig(**defaults)

    def test_opens_at_error_rate_over_min_volume(self):
        breaker = CircuitBreaker("a", self.cfg())
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        # Three failures but min_volume=4: still closed.
        assert breaker.state is BreakerState.CLOSED
        breaker.record_success(3.0)
        # 3/4 failures >= 0.5: open.
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow(4.0)
        assert breaker.refusals == 1

    def test_window_slides(self):
        breaker = CircuitBreaker("a", self.cfg(window=4, min_volume=4))
        for t in range(4):
            breaker.record_failure(float(t))
        assert breaker.state is BreakerState.OPEN

    def test_successes_keep_it_closed(self):
        breaker = CircuitBreaker("a", self.cfg())
        for t in range(20):
            breaker.record_success(float(t))
        breaker.record_failure(20.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_success_closes_with_clean_slate(self):
        breaker = CircuitBreaker("a", self.cfg())
        for t in range(4):
            breaker.record_failure(float(t))
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(50.0)  # still cooling off
        assert breaker.allow(104.0)  # open_duration passed: probe allowed
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success(110.0)
        assert breaker.state is BreakerState.CLOSED
        # Clean slate: one new failure must not instantly re-open.
        breaker.record_failure(111.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker("a", self.cfg())
        for t in range(4):
            breaker.record_failure(float(t))
        assert breaker.allow(104.0)
        breaker.record_failure(105.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        # The new open period starts at the re-open, not the first one.
        assert not breaker.allow(150.0)
        assert breaker.allow(206.0)

    def test_half_open_probe_budget(self):
        breaker = CircuitBreaker("a", self.cfg(half_open_probes=2))
        for t in range(4):
            breaker.record_failure(float(t))
        assert breaker.allow(104.0)
        assert breaker.allow(104.0)
        assert not breaker.allow(104.0)  # budget spent, probes in flight

    def test_late_failures_ignored_while_open(self):
        breaker = CircuitBreaker("a", self.cfg())
        for t in range(4):
            breaker.record_failure(float(t))
        opens = breaker.opens
        breaker.record_failure(10.0)  # straggler from before the trip
        assert breaker.opens == opens

    def test_registry_aggregates_per_site(self):
        registry = BreakerRegistry(self.cfg(min_volume=1, failure_threshold=0.5))
        registry.record_failure("a", 0.0)
        registry.record_success("b", 0.0)
        assert registry.state_of("a") is BreakerState.OPEN
        assert registry.state_of("b") is BreakerState.CLOSED
        assert registry.opens == 1
        assert not registry.allow("a", 1.0)
        assert registry.allow("b", 1.0)
        assert registry.refusals == 1


# ----------------------------------------------------------------------
# Admission control wired through the coordinator
# ----------------------------------------------------------------------


class TestAdmissionIntegration:
    def test_concurrent_globals_beyond_budget_are_shed(self):
        system = make_system(OverloadConfig(max_inflight_globals=1, breaker=None))
        specs = [
            GlobalTransactionSpec(
                txn=global_txn(n),
                steps=(("a", _update(n)), ("b", _update(n))),
                think_time=50.0,
            )
            for n in (1, 2, 3)
        ]
        done = [system.submit(spec, coordinator=0) for spec in specs]
        system.run()
        outcomes = [d.value for d in done]
        committed = [o for o in outcomes if o.committed]
        shed = [o for o in outcomes if o.reason is RefusalReason.OVERLOADED]
        assert len(committed) == 1  # the budget holder finished normally
        assert len(shed) == 2  # the rest were refused at BEGIN
        coordinator = system.coordinator(0)
        assert coordinator.overload_refusals == 2
        assert coordinator.admission.inflight == 0  # all slots returned
        # Shed transactions never touched a site: no refusals, no state.
        for site in ("a", "b"):
            assert system.agent(site).refusals == {}

    def test_sequential_globals_all_admitted(self):
        system = make_system(OverloadConfig(max_inflight_globals=1, breaker=None))
        for n in (1, 2, 3):
            done = system.submit(
                GlobalTransactionSpec(
                    txn=global_txn(n), steps=(("a", _update(n)),)
                ),
                coordinator=0,
            )
            system.run()
            assert done.value.committed
        assert system.coordinator(0).overload_refusals == 0

    def test_overload_off_changes_nothing(self):
        system = make_system(None)
        assert system.coordinator(0).admission is None
        assert system.breakers is None
        done = system.submit(
            GlobalTransactionSpec(txn=global_txn(1), steps=(("a", _update()),))
        )
        system.run()
        assert done.value.committed


# ----------------------------------------------------------------------
# Deadline propagation
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_expired_deadline_aborts_at_agent_command(self):
        system = make_system(OverloadConfig(breaker=None))
        # The think time pushes the second COMMAND past the deadline;
        # the coordinator has no pre-send gate there, so enforcement
        # falls to the agent: expired work is refused, never executed.
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(("a", _update(1)), ("a", _update(2))),
                think_time=10.0,
                deadline=20.0,
            )
        )
        system.run()
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.DEADLINE_EXPIRED
        agent = system.agent("a")
        assert agent.refusals.get(RefusalReason.DEADLINE_EXPIRED) == 1
        assert agent.certifier.table_size() == 0
        assert agent.phase_of(global_txn(1)) is AgentPhase.DONE

    def test_deadline_gate_before_votes(self):
        system = make_system(OverloadConfig(breaker=None))
        # Hold the READY vote back past the deadline: the coordinator
        # must abort at the vote gate instead of committing late.
        system.network.pause_channel("agent:a", "coord:c1")
        system.kernel.schedule_at(
            120.0, lambda: system.network.resume_channel("agent:a", "coord:c1")
        )
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1), steps=(("a", _update()),), deadline=100.0
            )
        )
        system.run()
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.DEADLINE_EXPIRED
        assert system.coordinator(0).deadline_aborts == 1
        # The prepared state was cleanly rolled back, not orphaned.
        agent = system.agent("a")
        assert agent.certifier.table_size() == 0
        assert agent.rollbacks_done == 1

    def test_expired_prepare_is_refused_never_prepared(self):
        # Drive the agent directly: a PREPARE that arrives past the
        # deadline must refuse without entering the certifier table.
        system = make_system(OverloadConfig(breaker=None))
        agent = system.agent("a")
        replies = []
        system.network.register("coord:test", replies.append)

        def at(time, fn):
            system.kernel.schedule_at(time, fn)

        def send(type_, **kwargs):
            system.network.send(
                Message(
                    type=type_,
                    src="coord:test",
                    dst="agent:a",
                    txn=global_txn(1),
                    **kwargs,
                )
            )

        at(0.0, lambda: send(MsgType.BEGIN))
        at(10.0, lambda: send(MsgType.COMMAND, payload=_update()))
        at(
            40.0,
            lambda: send(
                MsgType.PREPARE, sn=SerialNumber(40.0, "test"), deadline=30.0
            ),
        )
        system.run()
        assert [m.type for m in replies] == [
            MsgType.COMMAND_RESULT,
            MsgType.REFUSE,
        ]
        refuse = replies[-1]
        assert refuse.reason is RefusalReason.DEADLINE_EXPIRED
        assert agent.certifier.table_size() == 0
        assert agent.ready_sent == 0
        assert agent.phase_of(global_txn(1)) is AgentPhase.DONE

    def test_default_deadline_stamped_from_config(self):
        system = make_system(
            OverloadConfig(default_deadline=7.0, breaker=None)
        )
        done = system.submit(
            GlobalTransactionSpec(txn=global_txn(1), steps=(("a", _update()),))
        )
        system.run()
        # now=0 at submit, so the deadline was 7: the COMMAND at t>=10
        # found it expired exactly as an explicit deadline would.
        assert done.value.reason is RefusalReason.DEADLINE_EXPIRED

    def test_generous_deadline_commits_normally(self):
        system = make_system(OverloadConfig(breaker=None))
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(("a", _update()), ("b", _update())),
                deadline=10_000.0,
            )
        )
        system.run()
        assert done.value.committed


# ----------------------------------------------------------------------
# GIVEUP escalation
# ----------------------------------------------------------------------


class TestGiveupEscalation:
    def test_exhausted_resubmit_budget_escalates_to_global_abort(self):
        overload = OverloadConfig(
            resubmit_budget=2,
            resubmit_backoff_base=2.0,
            resubmit_backoff_factor=1.0,
            resubmit_backoff_max=2.0,
            resubmit_backoff_jitter=0.0,
            breaker=None,
        )
        system = make_system(
            overload, agent=AgentConfig(alive_check_interval=4.0)
        )
        # Keep site b's READY from reaching the coordinator so the
        # global decision stays open while site a's prepared
        # subtransaction is torn down and forced to resubmit.  The
        # pause starts at t=26: after b's COMMAND_RESULT has passed
        # (~t22) but before its READY is sent (~t29).
        system.kernel.schedule_at(
            26.0, lambda: system.network.pause_channel("agent:b", "coord:c1")
        )
        system.kernel.schedule_at(
            1000.0,
            lambda: system.network.resume_channel("agent:b", "coord:c1"),
        )
        # A second global queues for key 1's lock at a; at t=41.5 T1's
        # prepared subtransaction is unilaterally aborted, the lock
        # passes to T2 (whose own decision is held open by the same
        # paused channel), and every resubmission attempt of T1 then
        # dies on the lock timeout.
        blocker = []
        system.kernel.schedule_at(
            30.0,
            lambda: blocker.append(
                system.submit(
                    GlobalTransactionSpec(
                        txn=global_txn(2),
                        steps=(("a", _update(1)), ("b", _update(1))),
                    )
                )
            ),
        )
        system.kernel.schedule_at(
            41.5,
            lambda: abort_current_incarnation(system, global_txn(1), "a"),
        )
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(("a", _update(1)), ("b", _update(1))),
            )
        )
        system.run()
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.RESUBMIT_BUDGET
        assert system.coordinator(0).giveup_aborts == 1
        agent = system.agent("a")
        assert agent.giveups_sent == 1
        assert agent.resubmit_failures > overload.resubmit_budget
        # The blocker reached its own terminal state too (its decision
        # was held open by the paused channel; it times out and aborts).
        assert not blocker[0].value.committed
        # Everything cleaned up: nothing prepared, tables empty.
        for site in ("a", "b"):
            assert system.agent(site).certifier.table_size() == 0
            assert system.agent(site).phase_of(global_txn(1)) is AgentPhase.DONE

    def test_giveup_after_commit_decision_is_ignored(self):
        # A READY vote cannot be revoked: a GIVEUP arriving for a
        # transaction that is no longer active (decision made) must be
        # dropped without growing coordinator state.
        system = make_system(OverloadConfig(breaker=None))
        done = system.submit(
            GlobalTransactionSpec(txn=global_txn(1), steps=(("a", _update()),))
        )
        system.run()
        assert done.value.committed
        coordinator = system.coordinator(0)
        coordinator._on_message(
            Message(
                type=MsgType.GIVEUP,
                src="agent:a",
                dst="coord:c1",
                txn=global_txn(1),
            )
        )
        assert coordinator._giveups == {}
        assert coordinator.giveup_aborts == 0


# ----------------------------------------------------------------------
# Circuit breakers wired through the system
# ----------------------------------------------------------------------


class TestBreakerIntegration:
    def make(self):
        return make_system(
            OverloadConfig(
                breaker=BreakerConfig(
                    window=8,
                    min_volume=2,
                    failure_threshold=0.5,
                    open_duration=100.0,
                    half_open_probes=1,
                )
            )
        )

    def test_open_breaker_refuses_up_front(self):
        system = self.make()
        system.breakers.record_failure("a", 0.0)
        system.breakers.record_failure("a", 0.0)
        assert system.breakers.state_of("a") is BreakerState.OPEN
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1), steps=(("a", _update()), ("b", _update()))
            )
        )
        system.run()
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.SITE_BREAKER_OPEN
        assert system.coordinator(0).breaker_refusals == 1
        # Refused before any site work: the agents saw nothing.
        assert system.agent("a").refusals == {}
        assert system.network.messages_sent == 0

    def test_half_open_probe_commit_closes_the_breaker(self):
        system = self.make()
        system.breakers.record_failure("a", 0.0)
        system.breakers.record_failure("a", 0.0)
        # Wait out the open period, then submit: the probe passes,
        # commits, and its success closes the breaker.
        system.kernel.schedule_at(150.0, lambda: None)
        system.run()
        done = system.submit(
            GlobalTransactionSpec(txn=global_txn(1), steps=(("a", _update()),))
        )
        system.run()
        assert done.value.committed
        assert system.breakers.state_of("a") is BreakerState.CLOSED

    def test_unreachable_site_feedback_charges_the_breaker(self):
        # A coordinator abort whose reason implicates the site (here:
        # NOT_ALIVE via an injected unilateral abort racing PREPARE)
        # must land in the site's breaker window.
        system = self.make()
        registry = system.breakers
        assert registry.breaker("a")._window == []
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1), steps=(("a", _update()),), deadline=None
            )
        )
        system.run()
        assert done.value.committed
        # A committed global records a success for every participant.
        assert registry.breaker("a")._window == [True]


# ----------------------------------------------------------------------
# Eager-commit-retry coalescing (the thundering-herd fix)
# ----------------------------------------------------------------------


class TestEagerRetryCoalescing:
    def test_at_most_one_pending_retry_per_subtransaction(self):
        system = make_system(None, sites=("a",))
        agent = system.agent("a")
        kernel = system.kernel

        def pending_candidate(n):
            state = _AgentTxn(
                txn=global_txn(n),
                coordinator="coord:test",
                local=None,
                phase=AgentPhase.PREPARED,
                commit_pending=True,
            )
            agent._txns[state.txn] = state
            return state

        def finalizable(n):
            state = _AgentTxn(
                txn=global_txn(n), coordinator="coord:test", local=None
            )
            agent.log.open(state.txn, coordinator="coord:test")
            agent.certifier.insert(
                state.txn, SerialNumber(float(n), "test"), AliveInterval(0.0, 1.0)
            )
            return state

        c1, c2 = pending_candidate(1), pending_candidate(2)
        before = kernel.pending
        agent._finalize(finalizable(10))
        assert kernel.pending - before == 2  # one wakeup per candidate
        assert c1.retry_armed and c2.retry_armed
        # A burst of further finalizations must not pile on more.
        agent._finalize(finalizable(11))
        agent._finalize(finalizable(12))
        assert kernel.pending - before == 2

    def test_wakeup_rearms_after_draining(self):
        system = make_system(None, sites=("a",))
        done = system.submit(
            GlobalTransactionSpec(txn=global_txn(1), steps=(("a", _update()),))
        )
        system.run()
        assert done.value.committed  # coalescing left the protocol intact


# ----------------------------------------------------------------------
# Dead-letter bounds
# ----------------------------------------------------------------------


class TestDeadLetterBound:
    def test_network_dead_letters_are_bounded(self):
        kernel = EventKernel()
        net = Network(kernel, latency=LatencyModel(base=1.0), dead_letter_limit=3)
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.pause_channel("a", "b")
        for n in range(5):
            net.send(
                Message(MsgType.COMMAND, src="a", dst="b", txn=global_txn(n))
            )
        net.unregister("b")
        released = net.resume_channel("a", "b")
        assert released == 0
        assert len(net.dead_letters) == 3  # bounded
        assert net.dead_letters_dropped == 2  # the loss is counted
        # The survivors are the *newest* entries.
        assert [m.txn for m, _why in net.dead_letters] == [
            global_txn(2),
            global_txn(3),
            global_txn(4),
        ]


# ----------------------------------------------------------------------
# The drill
# ----------------------------------------------------------------------


class TestOverloadDrill:
    def test_drill_sheds_cleanly_at_16x(self):
        result = run_overload(OverloadDrillConfig(seed=1))
        assert result.ok, result.violations
        assert result.counters["shed"] > 0  # the storm was real
        assert result.committed > 0  # and the system kept committing
        # Every submitted global reached a terminal state.
        assert result.committed + result.aborted == result.submitted

    def test_drill_is_deterministic(self):
        a = run_overload(OverloadDrillConfig(seed=2, n_global=40, n_local=4))
        b = run_overload(OverloadDrillConfig(seed=2, n_global=40, n_local=4))
        assert (a.committed, a.aborted, a.sim_time) == (
            b.committed,
            b.aborted,
            b.sim_time,
        )
        assert a.counters == b.counters
        c = run_overload(OverloadDrillConfig(seed=9, n_global=40, n_local=4))
        assert (a.committed, a.sim_time) != (c.committed, c.sim_time)

    def test_unprotected_storm_still_safe_just_slower(self):
        result = run_overload(
            OverloadDrillConfig(seed=1, shed=False, n_global=60, n_local=6)
        )
        # No overload layer: nothing shed — but safety must still hold.
        assert result.counters["shed"] == 0
        assert result.counters["admitted"] == 0
        assert result.ok, result.violations
