"""RealtimeKernel: the deterministic heap, drained on the wall clock.

The runtime's core trick is that ``Agent``/``Coordinator`` run
unmodified on an :class:`EventKernel` subclass whose heap is pumped by
asyncio ``call_later`` wakeups instead of ``run()`` fast-forwarding.
These tests pin the contract the protocol objects rely on: callbacks
fire in (time, seq) order, ``now`` is monotonic and never ahead of the
wall clock, ``Timer`` restart semantics survive, and cancellations
leave tombstones, not firings.
"""

import asyncio

from repro.kernel.events import Timer
from repro.rt.kernel import RealtimeKernel


def _run(coro):
    return asyncio.run(coro)


def test_ripe_callbacks_fire_in_schedule_order():
    async def scenario():
        kernel = RealtimeKernel()
        fired = []
        kernel.schedule(0.02, lambda: fired.append("b"))
        kernel.schedule(0.01, lambda: fired.append("a"))
        kernel.schedule(0.02, lambda: fired.append("c"))
        await asyncio.sleep(0.08)
        return fired

    assert _run(scenario()) == ["a", "b", "c"]


def test_call_soon_runs_without_manual_pumping():
    async def scenario():
        kernel = RealtimeKernel()
        fired = []
        kernel.call_soon(lambda: fired.append(1))
        await asyncio.sleep(0.03)
        return fired

    assert _run(scenario()) == [1]


def test_cancelled_handle_never_fires():
    async def scenario():
        kernel = RealtimeKernel()
        fired = []
        handle = kernel.schedule(0.01, lambda: fired.append("cancelled"))
        kernel.schedule(0.02, lambda: fired.append("kept"))
        handle.cancel()
        await asyncio.sleep(0.06)
        return fired

    assert _run(scenario()) == ["kept"]


def test_timer_restart_supersedes_earlier_deadline():
    async def scenario():
        kernel = RealtimeKernel()
        fired = []
        timer = Timer(kernel, 0.04, lambda: fired.append(kernel.now))
        timer.start()
        # Restart from inside a pump (the way the agents do it), pushing
        # the deadline from ~0.04 out to ~0.06.
        kernel.schedule(0.02, timer.restart)
        await asyncio.sleep(0.05)
        mid = list(fired)
        await asyncio.sleep(0.05)
        return mid, fired

    mid, fired = _run(scenario())
    assert mid == []  # the restarted deadline, not the original, governs
    assert len(fired) == 1
    assert fired[0] >= 0.055


def test_now_monotonic_and_behind_wall():
    async def scenario():
        kernel = RealtimeKernel()
        samples = []

        def sample():
            samples.append((kernel.now, kernel.wall))

        for i in range(4):
            kernel.schedule(0.01 * (i + 1), sample)
        await asyncio.sleep(0.09)
        return samples

    samples = _run(scenario())
    assert len(samples) == 4
    nows = [now for now, _ in samples]
    assert nows == sorted(nows)
    for now, wall in samples:
        assert now <= wall + 1e-9


def test_idle_kernel_advances_now_on_next_pump():
    async def scenario():
        kernel = RealtimeKernel()
        kernel.schedule(0.01, lambda: None)
        await asyncio.sleep(0.05)
        # Heap went idle at wall ~0.01; the next pump's ``advance=True``
        # must fast-forward ``now`` back up to the wall clock, so idle
        # periods do not freeze simulated time behind real time.
        kernel.schedule(0.001, lambda: None)
        await asyncio.sleep(0.04)
        return kernel

    kernel = _run(scenario())
    assert kernel.now >= 0.05
    assert kernel.pumps >= 2


def test_rearm_picks_earlier_deadline():
    async def scenario():
        kernel = RealtimeKernel()
        fired = []
        kernel.schedule(0.08, lambda: fired.append("late"))
        kernel.schedule(0.01, lambda: fired.append("early"))
        await asyncio.sleep(0.04)
        return list(fired)

    # The second schedule must re-aim the single wakeup earlier; if the
    # 0.08s wakeup were kept, nothing would have fired by 0.04s.
    assert _run(scenario()) == ["early"]


def test_pump_now_drains_ripe_entries_synchronously():
    async def scenario():
        kernel = RealtimeKernel()
        fired = []
        kernel.call_soon(lambda: fired.append(1))
        kernel.pump_now()
        return list(fired)

    assert _run(scenario()) == [1]
