"""History journals: durability, torn tails, replay, merged checking.

The journal is both halves of the runtime's proof obligation: an
agent's committed store is rebuilt by replaying its own journal, and
the storm client merges every process's journal into a
``History``-shaped view for ``check_atomic_commitment``. These tests
pin the record format (torn/damaged tails dropped, never bridged),
the replay semantics (WRITEs buffer until LOCAL_COMMIT; ``None``
deletes), and that the merged view feeds the checker faithfully for
both clean and violated histories.
"""

import struct

from repro.common.ids import DataItemId, SubtxnId, global_txn
from repro.history.invariants import check_atomic_commitment
from repro.history.model import History
from repro.rt.journal import (
    HistoryJournal,
    MergedHistory,
    committed_state,
    journal_path,
    merge_journals,
    read_journal,
)

_RECORD = struct.Struct("<II")


def test_append_read_round_trip(tmp_path):
    path = journal_path(str(tmp_path), "agent-b1")
    journal = HistoryJournal(path)
    history = History()
    journal.attach(history)

    txn = global_txn(1)
    sub = SubtxnId(txn, "b1", 0)
    item = DataItemId("accounts", 7)
    history.record_write(0.1, sub, "b1", item, value=250)
    history.record_prepare(0.2, txn, "b1", sn=None)
    history.record_local_commit(0.3, sub, "b1")
    history.record_global_commit(0.4, txn)
    journal.close()

    ops = read_journal(path)
    assert journal.appended == 4
    assert [op.kind.value for op in ops] == ["W", "P", "Cl", "C"]
    assert ops[0].item == item and ops[0].value == 250


def test_reopen_appends_to_existing_journal(tmp_path):
    path = journal_path(str(tmp_path), "agent-b1")
    txn = global_txn(1)
    sub = SubtxnId(txn, "b1", 0)
    first = HistoryJournal(path)
    h1 = History()
    first.attach(h1)
    h1.record_write(0.1, sub, "b1", DataItemId("t", 1), value=1)
    first.close()

    # The restarted incarnation continues its own journal.
    second = HistoryJournal(path)
    h2 = History()
    second.attach(h2)
    h2.record_local_commit(0.2, sub, "b1")
    second.close()

    kinds = [op.kind.value for op in read_journal(path)]
    assert kinds == ["W", "Cl"]


def test_torn_tail_is_dropped_not_bridged(tmp_path):
    path = journal_path(str(tmp_path), "x")
    journal = HistoryJournal(path)
    history = History()
    journal.attach(history)
    txn = global_txn(2)
    sub = SubtxnId(txn, "s", 0)
    history.record_write(0.1, sub, "s", DataItemId("t", 1), value=10)
    history.record_write(0.2, sub, "s", DataItemId("t", 2), value=20)
    journal.close()

    whole = open(path, "rb").read()
    # SIGKILL signature: the final record half-written.
    open(path, "wb").write(whole[:-3])
    ops = read_journal(path)
    assert len(ops) == 1 and ops[0].value == 10


def test_damaged_middle_record_stops_replay(tmp_path):
    path = journal_path(str(tmp_path), "x")
    journal = HistoryJournal(path)
    history = History()
    journal.attach(history)
    txn = global_txn(2)
    sub = SubtxnId(txn, "s", 0)
    for i in range(3):
        history.record_write(0.1 * (i + 1), sub, "s", DataItemId("t", i), value=i)
    journal.close()

    data = bytearray(open(path, "rb").read())
    length, _crc = _RECORD.unpack_from(data, 0)
    # flip a byte inside the *second* record's payload
    second_payload = _RECORD.size + length + _RECORD.size
    data[second_payload] ^= 0xFF
    open(path, "wb").write(bytes(data))
    ops = read_journal(path)
    assert len(ops) == 1  # never bridge past damage


def test_missing_journal_reads_empty(tmp_path):
    assert read_journal(str(tmp_path / "nope.log")) == []


def test_committed_state_replay_semantics():
    history = History()
    txn1, txn2, txn3 = global_txn(1), global_txn(2), global_txn(3)
    s1 = SubtxnId(txn1, "s", 0)
    s2 = SubtxnId(txn2, "s", 0)
    s3 = SubtxnId(txn3, "s", 0)
    a, b = DataItemId("t", "a"), DataItemId("t", "b")

    history.record_write(0.1, s1, "s", a, value=1)
    history.record_write(0.2, s1, "s", b, value=2)
    history.record_local_commit(0.3, s1, "s")
    # aborted subtxn leaves no trace
    history.record_write(0.4, s2, "s", a, value=99)
    history.record_local_abort(0.5, s2, "s", unilateral=True)
    # committed delete removes the item
    history.record_write(0.6, s3, "s", b, value=None)
    history.record_local_commit(0.7, s3, "s")

    state, committed = committed_state(history.ops)
    assert state == {a: 1}
    assert committed == {s1, s3}


def test_committed_state_ignores_pending_writes():
    history = History()
    sub = SubtxnId(global_txn(9), "s", 0)
    history.record_write(0.1, sub, "s", DataItemId("t", 1), value=123)
    state, committed = committed_state(history.ops)
    assert state == {} and committed == set()


def _site_journal(tmp_path, name, record):
    path = journal_path(str(tmp_path), name)
    journal = HistoryJournal(path)
    history = History()
    journal.attach(history)
    record(history)
    journal.close()
    return path


def test_merged_history_clean_run_passes_checker(tmp_path):
    txn = global_txn(5)
    sub1 = SubtxnId(txn, "b1", 0)
    sub2 = SubtxnId(txn, "b2", 0)

    def at_b1(h):
        h.record_write(0.1, sub1, "b1", DataItemId("t", 1), value=1)
        h.record_prepare(0.2, txn, "b1", sn=None)
        h.record_local_commit(0.3, sub1, "b1")

    def at_b2(h):
        h.record_write(0.1, sub2, "b2", DataItemId("t", 2), value=2)
        h.record_prepare(0.2, txn, "b2", sn=None)
        h.record_local_commit(0.3, sub2, "b2")

    def at_coord(h):
        h.record_global_commit(0.4, txn)

    paths = [
        _site_journal(tmp_path, "agent-b1", at_b1),
        _site_journal(tmp_path, "agent-b2", at_b2),
        _site_journal(tmp_path, "coord-c1", at_coord),
    ]
    merged = merge_journals(paths)
    assert sorted(merged.sites()) == ["b1", "b2"]
    assert merged.globally_committed() == [txn]
    assert check_atomic_commitment(merged) == []


def test_merged_history_detects_split_outcome(tmp_path):
    txn = global_txn(6)
    sub1 = SubtxnId(txn, "b1", 0)
    sub2 = SubtxnId(txn, "b2", 0)

    def at_b1(h):
        h.record_local_commit(0.1, sub1, "b1")

    def at_b2(h):
        # a *requested* (non-unilateral) rollback: a final outcome
        h.record_local_abort(0.1, sub2, "b2", unilateral=False)

    merged = merge_journals(
        [
            _site_journal(tmp_path, "agent-b1", at_b1),
            _site_journal(tmp_path, "agent-b2", at_b2),
        ]
    )
    violations = check_atomic_commitment(merged)
    assert len(violations) == 1
    assert violations[0].txn == txn
    assert violations[0].committed_sites == ("b1",)
    assert violations[0].aborted_sites == ("b2",)


def test_merged_history_unilateral_abort_is_not_final(tmp_path):
    txn = global_txn(7)
    sub1 = SubtxnId(txn, "b1", 0)
    sub2 = SubtxnId(txn, "b2", 0)

    def at_b1(h):
        h.record_local_commit(0.1, sub1, "b1")

    def at_b2(h):
        # crash-induced unilateral abort followed by the resubmitted
        # incarnation committing: atomicity holds.
        h.record_local_abort(0.1, sub2, "b2", unilateral=True)
        h.record_local_commit(0.2, SubtxnId(txn, "b2", 1), "b2")

    merged = merge_journals(
        [
            _site_journal(tmp_path, "agent-b1", at_b1),
            _site_journal(tmp_path, "agent-b2", at_b2),
        ]
    )
    assert check_atomic_commitment(merged) == []


def test_merged_history_shim_surfaces():
    merged = MergedHistory(())
    assert merged.ops == ()
    assert merged.sites() == []
    assert merged.txns() == {}
    assert merged.globally_committed() == []
