"""NemesisProxy unit tests: relay semantics, fault ops, seeded plans.

The wire-level fault proxy is the tentpole's instrument — these pin the
contract the chaos drill relies on: a relay is transparent when no
fault is armed, `reset` aborts established connections, `blackhole`
swallows bytes without blocking the sender and aborts poisoned
connections at heal, `partition` both drops and refuses in *both*
directions, `heal` clears everything, the JSON-lines control socket
round-trips ops, and `generate_plan` is a pure function of its seed
with the first partition always cutting a coordinator↔agent link.
"""

import asyncio
import json

from repro.rt.nemesis import (
    NemesisControlClient,
    NemesisPlanConfig,
    NemesisProxy,
    generate_plan,
    link_key,
)


async def _echo_server():
    """An upstream that echoes every chunk back."""

    async def on_client(reader, writer):
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
        except (OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    server = await asyncio.start_server(on_client, host="127.0.0.1", port=0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


async def _connect_via(proxy, key):
    listen = proxy.links[key].listen
    return await asyncio.open_connection(*listen)


async def _roundtrip(reader, writer, payload: bytes, timeout=5.0) -> bytes:
    writer.write(payload)
    await writer.drain()
    return await asyncio.wait_for(reader.readexactly(len(payload)), timeout)


def test_transparent_relay_forwards_bytes_and_counts_them():
    async def scenario():
        server, host, port = await _echo_server()
        proxy = NemesisProxy()
        await proxy.add_link("a", "b", host, port)
        key = link_key("a", "b")
        reader, writer = await _connect_via(proxy, key)
        assert await _roundtrip(reader, writer, b"ping") == b"ping"
        stats = proxy.stats()
        assert stats["bytes_forwarded"] >= 8  # both directions
        assert stats["bytes_dropped"] == 0
        writer.close()
        server.close()
        await proxy.close()

    asyncio.run(scenario())


def test_reset_aborts_established_connections():
    async def scenario():
        server, host, port = await _echo_server()
        proxy = NemesisProxy()
        await proxy.add_link("a", "b", host, port)
        key = link_key("a", "b")
        reader, writer = await _connect_via(proxy, key)
        assert await _roundtrip(reader, writer, b"up") == b"up"

        ack = proxy.apply({"op": "reset", "link": key})
        assert ack["ok"] and ack["aborted_conns"] == 1
        # the client observes a hard close, not a clean EOF handshake
        data = await asyncio.wait_for(reader.read(64), 5.0)
        assert data == b""
        # the link itself stays usable: a reconnect goes straight through
        reader2, writer2 = await _connect_via(proxy, key)
        assert await _roundtrip(reader2, writer2, b"again") == b"again"
        writer2.close()
        server.close()
        await proxy.close()

    asyncio.run(scenario())


def test_blackhole_swallows_bytes_then_heal_aborts_poisoned_conns():
    async def scenario():
        server, host, port = await _echo_server()
        proxy = NemesisProxy()
        await proxy.add_link("a", "b", host, port)
        key = link_key("a", "b")
        reader, writer = await _connect_via(proxy, key)
        assert await _roundtrip(reader, writer, b"warm") == b"warm"

        proxy.apply({"op": "blackhole", "link": key, "duration": 0.3})
        writer.write(b"into-the-void")
        await writer.drain()  # sender never blocks: the half-open illusion
        # the poisoned connection is aborted at heal time — resuming a
        # stream missing bytes mid-frame would corrupt the codec
        assert await asyncio.wait_for(reader.read(64), 5.0) == b""
        assert proxy.stats()["bytes_dropped"] >= len(b"into-the-void")
        server.close()
        await proxy.close()

    asyncio.run(scenario())


def test_partition_refuses_both_directions_until_heal():
    async def scenario():
        server, host, port = await _echo_server()
        proxy = NemesisProxy()
        await proxy.add_link("a", "b", host, port)
        await proxy.add_link("b", "a", host, port)

        ack = proxy.apply(
            {"op": "partition", "a": "a", "b": "b", "duration": 30.0}
        )
        assert ack["ok"] and len(ack["links"]) == 2

        for key in (link_key("a", "b"), link_key("b", "a")):
            reader, _writer = await _connect_via(proxy, key)
            # refused: aborted immediately, no data ever flows
            assert await asyncio.wait_for(reader.read(64), 5.0) == b""

        healed = proxy.apply({"op": "heal"})
        assert healed["ok"]
        reader, writer = await _connect_via(proxy, link_key("a", "b"))
        assert await _roundtrip(reader, writer, b"after") == b"after"
        writer.close()
        server.close()
        await proxy.close()

    asyncio.run(scenario())


def test_control_socket_round_trips_json_lines():
    async def scenario():
        server, host, port = await _echo_server()
        proxy = NemesisProxy()
        await proxy.add_link("a", "b", host, port)
        chost, cport = await proxy.start_control()
        client = NemesisControlClient(chost, cport)

        ack = await client.request(
            {"op": "latency", "a": "a", "b": "b", "delay": 0.01, "duration": 1}
        )
        assert ack["ok"] and ack["op"] == "latency"
        stats = await client.request({"op": "stats", "log": True})
        assert stats["ok"]
        assert stats["stats"]["faults_applied"] == 1
        assert stats["fault_log"][0]["op"] == "latency"
        bad = await client.request({"op": "no-such-op"})
        assert bad["ok"] is False and "no-such-op" in bad["error"]

        await client.close()
        server.close()
        await proxy.close()

    asyncio.run(scenario())


def test_describe_lists_control_and_links():
    async def scenario():
        server, host, port = await _echo_server()
        proxy = NemesisProxy()
        listen = await proxy.add_link("a", "b", host, port)
        await proxy.start_control()
        desc = proxy.describe()
        assert desc["control"]["port"] == proxy.control_bound[1]
        assert desc["links"][link_key("a", "b")]["listen"] == list(listen)
        assert desc["links"][link_key("a", "b")]["upstream"] == [host, port]
        server.close()
        await proxy.close()

    asyncio.run(scenario())


def test_generate_plan_is_seed_deterministic():
    config = NemesisPlanConfig(seed=7, duration=10.0)
    plan_a = generate_plan(config, "coord-c1", ["agent-1", "agent-2"])
    plan_b = generate_plan(config, "coord-c1", ["agent-1", "agent-2"])
    assert plan_a == plan_b
    other = generate_plan(
        NemesisPlanConfig(seed=8, duration=10.0),
        "coord-c1",
        ["agent-1", "agent-2"],
    )
    assert plan_a != other
    # JSON-able: every op must survive the control socket
    for _at, op in plan_a:
        json.dumps(op)


def test_generate_plan_first_partition_cuts_coordinator_link():
    for seed in range(6):
        plan = generate_plan(
            NemesisPlanConfig(seed=seed),
            "coord-c1",
            ["agent-1", "agent-2", "agent-3"],
        )
        partitions = [op for _at, op in plan if op["op"] == "partition"]
        assert partitions, "plan must contain at least one partition"
        first = partitions[0]
        assert "coord-c1" in (first["a"], first["b"])
        for _at, op in plan:
            assert 0 <= _at < 10.0
