"""Commit certification ordering across concurrent global transactions."""

from repro.common.ids import global_txn
from repro.core.agent import AgentConfig
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.graphs import commit_order_graph, is_acyclic
from repro.history.model import OpKind
from repro.ldbs.commands import AddValue, UpdateItem
from repro.net.network import LatencyModel
from repro.sim.metrics import audit


def build(method="2cm", overrides=None, **kwargs):
    kwargs.setdefault("sites", ("a", "b"))
    kwargs.setdefault("n_coordinators", 2)
    system = MultidatabaseSystem(
        SystemConfig(
            method=method,
            latency=LatencyModel(base=5.0, overrides=overrides or {}),
            **kwargs,
        )
    )
    system.load("a", "t", {"P": 1, "R": 2})
    system.load("b", "t", {"S": 3, "U": 4})
    return system


def disjoint_specs():
    """Two multi-site transactions with no conflicting items.

    T1 visits the slow-channel site first so the channel delay hits its
    early commands and its final COMMIT, but not its serial number draw
    relative to T2 (which starts later): SN(1) < SN(2) while T2's COMMIT
    reaches site b before T1's does.
    """
    t1 = GlobalTransactionSpec(
        txn=global_txn(1),
        steps=(
            ("b", UpdateItem("t", "S", AddValue(1))),
            ("a", UpdateItem("t", "P", AddValue(1))),
        ),
    )
    t2 = GlobalTransactionSpec(
        txn=global_txn(2),
        steps=(
            ("a", UpdateItem("t", "R", AddValue(1))),
            ("b", UpdateItem("t", "U", AddValue(1))),
        ),
    )
    return t1, t2


def submit_race(system, t1, t2, t2_at=110.0):
    """Submit t1 now and t2 at ``t2_at`` (mid-flight of t1)."""
    done1 = system.submit(t1, coordinator=0)
    holder = {}

    def later():
        holder["done2"] = system.submit(t2, coordinator=1)

    system.kernel.schedule(t2_at, later)
    return done1, holder


def drain(system, limit=100_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending


def local_commit_order(system, site):
    return [
        op.txn
        for op in system.history.ops
        if op.kind is OpKind.LOCAL_COMMIT and op.site == site
    ]


class TestSnOrderAcrossSites:
    def test_reversed_commit_arrivals_are_reordered(self):
        """T2's COMMIT reaches site b first, but T1 holds the smaller
        serial number — commit certification delays T2 at b until T1
        committed there, keeping CG acyclic."""
        overrides = {("coord:c1", "agent:b"): 60.0}  # T1 slow towards b
        system = build(overrides=overrides)
        t1, t2 = disjoint_specs()
        done1, holder = submit_race(system, t1, t2)
        drain(system)
        done2 = holder["done2"]
        assert done1.value.committed and done2.value.committed
        assert done1.value.sn < done2.value.sn
        assert local_commit_order(system, "b") == [global_txn(1), global_txn(2)]
        cg = commit_order_graph(system.history.ops)
        assert is_acyclic(cg)
        assert system.certifier("b").commit_delays >= 1
        assert audit(system).ok

    def test_without_commit_certification_cg_can_go_cyclic(self):
        overrides = {("coord:c1", "agent:b"): 60.0}
        system = build(method="2cm-nocommitcert", overrides=overrides)
        t1, t2 = disjoint_specs()
        submit_race(system, t1, t2)
        drain(system)
        order_a = local_commit_order(system, "a")
        order_b = local_commit_order(system, "b")
        assert order_a != order_b  # reversed orders: the raw race
        cg = commit_order_graph(system.history.ops)
        assert not is_acyclic(cg)

    def test_failure_free_run_has_zero_aborts(self):
        """Sec. 6: 'in a failure-free situation it does not abort any
        transactions' — even with racing commits."""
        overrides = {("coord:c1", "agent:b"): 60.0}
        system = build(overrides=overrides)
        t1, t2 = disjoint_specs()
        done1, holder = submit_race(system, t1, t2)
        drain(system)
        assert done1.value.committed and holder["done2"].value.committed
        for coordinator in system.coordinators:
            assert coordinator.aborted == 0


class TestCommitRetryTimer:
    def test_timer_only_retry_still_commits(self):
        """With eager retry off, the paper's pure retry-timeout loop
        (Appendix C) must still make progress."""
        overrides = {("coord:c1", "agent:b"): 60.0}
        system = build(
            overrides=overrides,
            agent=AgentConfig(
                alive_check_interval=50.0,
                commit_retry_interval=7.0,
                eager_commit_retry=False,
            ),
        )
        t1, t2 = disjoint_specs()
        done1, holder = submit_race(system, t1, t2)
        drain(system)
        assert done1.value.committed and holder["done2"].value.committed
        assert local_commit_order(system, "b") == [global_txn(1), global_txn(2)]


class TestTicketBaseline:
    def test_ticket_orders_by_submission(self):
        """Under the ticket method SNs are drawn at BEGIN from a central
        counter: submission order dictates commit order everywhere."""
        system = build(method="ticket")
        t1, t2 = disjoint_specs()
        done1 = system.submit(t1, coordinator=0)
        done2 = system.submit(t2, coordinator=1)
        drain(system)
        assert done1.value.committed and done2.value.committed
        assert done1.value.sn.clock == 1.0
        assert done2.value.sn.clock == 2.0
        assert local_commit_order(system, "a") == [global_txn(1), global_txn(2)]
        assert local_commit_order(system, "b") == [global_txn(1), global_txn(2)]
