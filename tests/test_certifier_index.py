"""The indexed certification engine: index correctness, epoch GC,
batched prepares, and the END-watermark GC of agent state.

The decision-for-decision equivalence of the two engines is proven
property-style in ``test_certifier_differential.py``; this module pins
the targeted edge cases (gap misses, compaction, the batch cursor) and
the system-level wiring (engine selection, batching, DONE-entry GC).
"""

import pytest

from repro.common.errors import ConfigError, RefusalReason, SimulationError
from repro.common.ids import SerialNumber, global_txn
from repro.core.agent import AgentConfig, AgentPhase
from repro.core.certifier import (
    Certifier,
    CertifierConfig,
    CommitOrderPolicy,
)
from repro.core.dtm import SystemConfig
from repro.core.intervals import AliveInterval
from repro.sim.metrics import audit, collect_metrics
from tests.fingerprint_util import fingerprint, run_seeded_workload


def sn(value, site="c1"):
    return SerialNumber(float(value), site, 0)


def make(engine="indexed", **kwargs):
    return Certifier("a", CertifierConfig(engine=engine, **kwargs))


class TestEngineConfig:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            Certifier("a", CertifierConfig(engine="btree"))

    def test_unknown_engine_rejected_at_system_config(self):
        with pytest.raises(ConfigError):
            SystemConfig(certifier_engine="btree")

    def test_naive_engine_has_no_index(self):
        certifier = make("naive")
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        assert certifier.index_depth() == 0
        assert certifier.collect_garbage() == 0
        assert certifier.gc_compactions == 0


class TestGapMiss:
    """A candidate inside a gap between archived intervals must be
    refused — the endpoint bounds alone cannot see it."""

    def test_gap_between_incarnations_refused(self):
        for engine in ("naive", "indexed"):
            certifier = make(engine, max_intervals=3)
            certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
            certifier.restart_interval(global_txn(1), 20.0)
            # Entry now knows [0, 10] and [20, 20]: bounds are [0, 20]
            # but [12, 15] falls in the gap.
            decision = certifier.certify_prepare(
                global_txn(2), sn(2), AliveInterval(12, 15)
            )
            assert not decision.ok, engine
            assert decision.reason is RefusalReason.ALIVE_INTERSECTION, engine

    def test_candidate_touching_archive_passes(self):
        certifier = make(max_intervals=3)
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.restart_interval(global_txn(1), 20.0)
        assert certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(5, 8)
        ).ok

    def test_gap_entry_removed_clears_the_scan_set(self):
        certifier = make(max_intervals=3)
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.restart_interval(global_txn(1), 20.0)
        certifier.remove(global_txn(1))
        assert certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(12, 15)
        ).ok


class TestBackwardMovingKeys:
    """restart_interval can move an entry's endpoints backwards; the
    lazy heaps must still answer with the *current* extrema."""

    def test_restart_shrinks_max_end(self):
        certifier = make()  # max_intervals=1: the restart forgets [0, 100]
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 100))
        certifier.restart_interval(global_txn(1), 5.0)
        # Entry is now [5, 5]; a candidate at [50, 60] misses it.
        decision = certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(50, 60)
        )
        assert not decision.ok

    def test_restart_raises_min_start(self):
        certifier = make()
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.restart_interval(global_txn(1), 50.0)
        # Entry is now [50, 50]; a candidate ending before it misses.
        decision = certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(0, 10)
        )
        assert not decision.ok


class TestEpochGC:
    def test_churn_triggers_compaction_and_bounds_the_index(self):
        certifier = make(gc_min_entries=16, gc_stale_factor=2.0)
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 1))
        for t in range(2, 2000):
            certifier.extend_interval(global_txn(1), float(t))
        assert certifier.gc_compactions > 0
        assert certifier.gc_reclaimed > 0
        # One live entry: the index holds its records plus at most the
        # pre-sweep burst allowed by the threshold.
        assert certifier.index_depth() <= 4 * 16 + 8

    def test_forced_collect_garbage_reports_reclaimed(self):
        certifier = make(gc_min_entries=10_000)  # never auto-compacts
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 1))
        for t in range(2, 50):
            certifier.extend_interval(global_txn(1), float(t))
        depth_before = certifier.index_depth()
        reclaimed = certifier.collect_garbage()
        assert reclaimed > 0
        assert certifier.index_depth() < depth_before

    def test_decisions_unchanged_across_gc(self):
        certifier = make(max_intervals=2)
        certifier.insert(global_txn(1), sn(10), AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(20), AliveInterval(5, 15))
        certifier.restart_interval(global_txn(1), 30.0)
        probe = AliveInterval(40, 50)
        before = certifier.certify_prepare(global_txn(3), sn(30), probe)
        commit_before = certifier.certify_commit(global_txn(1))
        certifier.collect_garbage()
        after = certifier.certify_prepare(global_txn(4), sn(31), probe)
        commit_after = certifier.certify_commit(global_txn(1))
        assert (before.ok, before.reason) == (after.ok, after.reason)
        assert commit_before.ok == commit_after.ok


class TestCommitCertIndexed:
    def test_single_entry_table_commits(self):
        # Regression for the satellite fix: the pivot must never block
        # itself, with exactly one entry in the table.
        for engine in ("naive", "indexed"):
            for policy in CommitOrderPolicy:
                certifier = Certifier(
                    "a",
                    CertifierConfig(engine=engine, commit_order=policy),
                )
                certifier.insert(global_txn(1), sn(10), AliveInterval(0, 10))
                assert certifier.certify_commit(global_txn(1)).ok, (engine, policy)

    def test_pivot_on_heap_top_is_skipped_not_lost(self):
        certifier = make()
        certifier.insert(global_txn(1), sn(10), AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(20), AliveInterval(0, 10))
        # T1 is the heap minimum AND the pivot: it must pass...
        assert certifier.certify_commit(global_txn(1)).ok
        # ...and must still block T2 afterwards (the record was pushed
        # back, not dropped).
        assert not certifier.certify_commit(global_txn(2)).ok
        certifier.remove(global_txn(1))
        assert certifier.certify_commit(global_txn(2)).ok

    def test_sn_less_entries_do_not_block(self):
        certifier = make()
        certifier.insert(global_txn(1), None, AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(20), AliveInterval(0, 10))
        assert certifier.certify_commit(global_txn(2)).ok
        assert certifier.certify_commit(global_txn(1)).ok


class TestPrepareBatch:
    def run_batch(self, engine, members):
        certifier = make(engine)
        certifier.insert(global_txn(100), sn(100), AliveInterval(0, 10))
        batch = certifier.begin_prepare_batch()
        decisions = []
        for number, interval in members:
            decision = batch.certify(global_txn(number), sn(number), interval)
            decisions.append((decision.ok, decision.reason))
            if decision.ok:
                batch.admit(global_txn(number), sn(number), interval)
        return certifier, decisions

    def test_batch_matches_sequential_on_both_engines(self):
        members = [
            (1, AliveInterval(5, 15)),   # intersects the seed entry
            (2, AliveInterval(20, 30)),  # misses everything -> refused
            (3, AliveInterval(8, 12)),   # intersects seed + member 1
            (4, AliveInterval(14, 20)),  # misses member 3 -> refused
        ]
        naive_cert, naive_decisions = self.run_batch("naive", members)
        indexed_cert, indexed_decisions = self.run_batch("indexed", members)
        assert naive_decisions == indexed_decisions
        assert naive_decisions == [
            (True, None),
            (False, RefusalReason.ALIVE_INTERSECTION),
            (True, None),
            (False, RefusalReason.ALIVE_INTERSECTION),
        ]
        assert naive_cert.prepared_txns() == indexed_cert.prepared_txns()
        assert naive_cert.prepare_checks == indexed_cert.prepare_checks
        assert (
            naive_cert.prepare_refusals_intersection
            == indexed_cert.prepare_refusals_intersection
        )

    def test_batch_duplicate_raises(self):
        certifier = make()
        batch = certifier.begin_prepare_batch()
        batch.admit(global_txn(1), sn(1), AliveInterval(0, 10))
        with pytest.raises(SimulationError):
            batch.certify(global_txn(1), sn(1), AliveInterval(0, 10))

    def test_batch_respects_extension(self):
        certifier = make()
        certifier.insert(global_txn(1), sn(50), AliveInterval(0, 10))
        certifier.record_local_commit(global_txn(1))
        certifier.remove(global_txn(1))
        batch = certifier.begin_prepare_batch()
        decision = batch.certify(global_txn(2), sn(40), AliveInterval(0, 100))
        assert not decision.ok
        assert decision.reason is RefusalReason.PREPARE_OUT_OF_ORDER


class TestEngineEquivalenceEndToEnd:
    """The indexed engine is event-for-event identical on full runs:
    certification is synchronous, so equal decisions mean equal
    histories — the seed-revision goldens must keep matching."""

    GOLDEN_0 = "f9bbfd8388daa01d6911459d60bcb6a85548c4b6b38cb522b164488817bc5283"
    GOLDEN_13 = "82b01734dbac082ef00e18f15902d11448054bb21806f3328070fafab296e7d3"

    def test_failure_free_run_matches_golden(self):
        result = run_seeded_workload(0, certifier_engine="indexed")
        assert fingerprint(result) == self.GOLDEN_0

    def test_run_with_failures_matches_golden(self):
        # Failures drive restart_interval / recovery through the index.
        result = run_seeded_workload(
            13, failures=0.15, certifier_engine="indexed"
        )
        assert fingerprint(result) == self.GOLDEN_13

    def test_metrics_surface_index_counters(self):
        result = run_seeded_workload(0, certifier_engine="indexed")
        metrics = collect_metrics(result.system)
        # The run is too small to trigger a compaction, but the depth
        # gauge proves the index was live (or fully drained: >= 0).
        assert metrics.cert_gc_compactions >= 0
        assert metrics.cert_index_depth >= 0
        naive = collect_metrics(run_seeded_workload(0).system)
        assert naive.cert_index_depth == 0
        assert metrics.prepare_checks == naive.prepare_checks
        assert metrics.commit_delays == naive.commit_delays


class TestBatchedPreparesEndToEnd:
    def test_batched_run_commits_and_audits_clean(self):
        result = run_seeded_workload(
            3,
            certifier_engine="indexed",
            agent=AgentConfig(batch_prepares=True),
        )
        baseline = run_seeded_workload(3)
        # Batching defers READY replies by a microstep, so event order
        # (and with it retry interleavings) may differ — but the same
        # transactions commit and the history stays correct.
        assert sorted(result.committed_globals) == sorted(
            baseline.committed_globals
        )
        assert audit(result.system).ok
        batches = sum(
            agent.prepare_batches for agent in result.system.agents.values()
        )
        assert batches > 0
        assert collect_metrics(result.system).prepare_batches == batches


class TestDoneTxnGC:
    def test_end_watermark_forgets_done_entries(self):
        result = run_seeded_workload(
            0, agent=AgentConfig(gc_done_txns=True)
        )
        forgotten = 0
        for agent in result.system.agents.values():
            forgotten += agent.done_forgotten
            for state in agent._txns.values():
                # Anything still tracked is not a sealed DONE entry.
                assert state.phase is not AgentPhase.DONE
        assert forgotten > 0
        assert collect_metrics(result.system).done_txns_forgotten == forgotten

    def test_default_config_keeps_done_entries(self):
        result = run_seeded_workload(0)
        kept = sum(
            1
            for agent in result.system.agents.values()
            for state in agent._txns.values()
            if state.phase is AgentPhase.DONE
        )
        assert kept > 0
        assert all(
            agent.done_forgotten == 0
            for agent in result.system.agents.values()
        )

    def test_gc_run_matches_default_outcomes(self):
        gc = run_seeded_workload(5, agent=AgentConfig(gc_done_txns=True))
        default = run_seeded_workload(5)
        assert fingerprint(gc) == fingerprint(default)
