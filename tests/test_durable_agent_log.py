"""DurableAgentLog: WAL-backed Agent log reopened purely from disk."""

from repro.common.ids import SerialNumber, global_txn
from repro.durability import DurabilityConfig, DurableAgentLog, scan_wal
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem


def config(tmp_path, **kwargs):
    kwargs.setdefault("sync", "simulated")
    return DurabilityConfig(root=str(tmp_path), **kwargs)


def reopen(log, tmp_path, **kwargs):
    log.close()
    return DurableAgentLog.open_site(log.site, config(tmp_path, **kwargs))


class TestReplay:
    def test_full_lifecycle_survives_reopen(self, tmp_path):
        log = DurableAgentLog.open_site("a", config(tmp_path))
        txn = global_txn(1)
        log.open(txn, coordinator="coord:c1")
        log.log_command(txn, ReadItem("t", "X"))
        log.log_command(txn, UpdateItem("t", "X", AddValue(5)))
        sn = SerialNumber(7.0, "c1")
        log.write_prepare(txn, sn, time=12.0)

        log = reopen(log, tmp_path)
        entry = log.entry(txn)
        assert entry.coordinator == "coord:c1"
        assert entry.prepare_sn == sn
        assert entry.prepare_time == 12.0
        assert not entry.committed
        assert [type(c).__name__ for c in entry.commands] == [
            "ReadItem",
            "UpdateItem",
        ]

    def test_commit_record_survives(self, tmp_path):
        log = DurableAgentLog.open_site("a", config(tmp_path))
        txn = global_txn(1)
        log.open(txn)
        log.write_prepare(txn, SerialNumber(1.0, "c1"), time=1.0)
        log.write_commit(txn, time=2.0)
        log = reopen(log, tmp_path)
        assert log.entry(txn).committed

    def test_incarnation_counter_survives(self, tmp_path):
        # A recovered agent must never reuse an incarnation id: the
        # RESUBMIT record is forced for exactly this reason.
        log = DurableAgentLog.open_site("a", config(tmp_path))
        txn = global_txn(1)
        log.open(txn)
        log.note_resubmission(txn)
        log.note_resubmission(txn)
        log = reopen(log, tmp_path)
        assert log.entry(txn).incarnations == 3

    def test_max_committed_sn_survives(self, tmp_path):
        log = DurableAgentLog.open_site("a", config(tmp_path))
        log.record_committed_sn(SerialNumber(5.0, "c1"))
        log.record_committed_sn(SerialNumber(3.0, "c1"))  # not an advance
        log = reopen(log, tmp_path)
        assert log.max_committed_sn == SerialNumber(5.0, "c1")

    def test_discard_removes_entry_after_reopen(self, tmp_path):
        log = DurableAgentLog.open_site("a", config(tmp_path))
        txn = global_txn(1)
        log.open(txn)
        log.write_prepare(txn, None, time=1.0)
        log.discard(txn)
        log = reopen(log, tmp_path)
        assert not log.has_entry(txn)

    def test_force_write_counters_track_kinds(self, tmp_path):
        log = DurableAgentLog.open_site("a", config(tmp_path))
        txn = global_txn(1)
        log.open(txn)
        log.write_prepare(txn, None, time=1.0)
        log.write_commit(txn, time=2.0)
        log.discard(txn)
        assert log.force_writes_by_kind == {
            "prepare": 1,
            "commit": 1,
            "discard": 1,
        }
        log.close()


class TestCompaction:
    def test_discard_churn_triggers_checkpoint(self, tmp_path):
        log = DurableAgentLog.open_site(
            "a",
            config(tmp_path, compact_min_discards=8, segment_bytes=512),
        )
        for i in range(1, 30):
            txn = global_txn(i)
            log.open(txn)
            log.write_prepare(txn, None, time=float(i))
            log.discard(txn)
        assert log.wal.checkpoints >= 1
        # Everything discarded: the surviving WAL replays to nothing.
        log = reopen(log, tmp_path)
        assert log.entries() == []
        log.close()

    def test_live_entries_survive_compaction(self, tmp_path):
        log = DurableAgentLog.open_site(
            "a",
            config(
                tmp_path,
                compact_min_discards=4,
                compact_dead_ratio=0.5,
                segment_bytes=512,
            ),
        )
        keeper = global_txn(100)
        log.open(keeper, coordinator="coord:c1")
        log.write_prepare(keeper, SerialNumber(9.0, "c1"), time=9.0)
        for i in range(1, 20):
            txn = global_txn(i)
            log.open(txn)
            log.discard(txn)
        assert log.wal.checkpoints >= 1
        log = reopen(log, tmp_path)
        assert [e.txn for e in log.entries()] == [keeper]
        assert log.entry(keeper).prepare_sn == SerialNumber(9.0, "c1")
        log.close()

    def test_wal_directory_is_clean_after_close(self, tmp_path):
        log = DurableAgentLog.open_site("a", config(tmp_path))
        txn = global_txn(1)
        log.open(txn)
        directory = log.wal.directory
        log.close()
        assert scan_wal(directory).clean
