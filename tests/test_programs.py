"""Tests for interactive application programs (submit_program)."""

import pytest

from repro.common.errors import RefusalReason
from repro.common.ids import global_txn
from repro.core.coordinator import AbortRequested
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.model import OpKind
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.net.network import LatencyModel
from repro.sim.failures import inject_abort_after_global_commit
from repro.sim.metrics import audit


def build(**kwargs):
    kwargs.setdefault("sites", ("a", "b"))
    system = MultidatabaseSystem(SystemConfig(**kwargs))
    system.load("a", "accounts", {"checking": 300})
    system.load("b", "accounts", {"savings": 50})
    return system


def drain(system, limit=100_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending


class TestInteractivePrograms:
    def test_result_dependent_branching(self):
        """Read a balance, then transfer an amount computed from it."""
        system = build()

        def program():
            result = yield ("a", ReadItem("accounts", "checking"))
            balance = result.rows[0][1]
            surplus = balance - 100
            yield ("a", UpdateItem("accounts", "checking", AddValue(-surplus)))
            yield ("b", UpdateItem("accounts", "savings", AddValue(surplus)))

        done = system.submit_program(global_txn(1), program())
        drain(system)
        assert done.value.committed
        a = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        b = {k.key: v for k, v in system.ltm("b").store.snapshot().items()}
        assert a["checking"] == 100
        assert b["savings"] == 250
        assert audit(system).ok

    def test_application_requested_abort(self):
        """The program inspects a result and bails out: ROLLBACK path."""
        system = build()

        def program():
            result = yield ("a", ReadItem("accounts", "checking"))
            if result.rows[0][1] < 1000:
                raise AbortRequested("insufficient funds")
            yield ("b", UpdateItem("accounts", "savings", AddValue(1)))

        done = system.submit_program(global_txn(1), program())
        drain(system)
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.REQUESTED
        # Site a was begun and rolled back; site b never touched.
        a = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        assert a["checking"] == 300
        assert system.ltm("b").commits == 0
        assert audit(system).ok

    def test_empty_program_commits_trivially(self):
        system = build()

        def program():
            return
            yield  # pragma: no cover

        done = system.submit_program(global_txn(1), program())
        drain(system)
        assert done.value.committed
        assert done.value.results == []

    def test_program_bug_surfaces(self):
        system = build()

        def program():
            yield ("a", ReadItem("accounts", "checking"))
            raise ValueError("application bug")

        done = system.submit_program(global_txn(1), program())
        drain(system)
        assert isinstance(done.error, ValueError)

    def test_resubmission_replays_decided_commands_only(self):
        """The application computation is NOT re-run on resubmission:
        the agent log replays the command sequence the program already
        decided (the paper's explicit design point)."""
        runs = {"count": 0}
        system = build(
            latency=LatencyModel(
                base=5.0, overrides={("coord:c1", "agent:a"): 60.0}
            )
        )

        def program():
            runs["count"] += 1
            result = yield ("a", ReadItem("accounts", "checking"))
            yield (
                "a",
                UpdateItem("accounts", "checking", AddValue(-10)),
            )
            yield ("b", UpdateItem("accounts", "savings", AddValue(10)))

        done = system.submit_program(global_txn(1), program())
        inject_abort_after_global_commit(system, global_txn(1), "a", delay=1.0)
        drain(system)
        assert done.value.committed
        assert system.agent("a").resubmissions == 1
        assert runs["count"] == 1  # the program itself ran exactly once
        a = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        assert a["checking"] == 290  # the update applied exactly once
        assert audit(system).ok

    def test_interactive_program_runs_full_2pc(self):
        system = build()

        def program():
            yield ("a", UpdateItem("accounts", "checking", AddValue(-1)))
            yield ("b", UpdateItem("accounts", "savings", AddValue(1)))

        done = system.submit_program(global_txn(1), program())
        drain(system)
        assert done.value.committed
        kinds = [op.kind for op in system.history.ops]
        assert kinds.count(OpKind.PREPARE) == 2
        assert OpKind.GLOBAL_COMMIT in kinds
