"""Differential testing: one workload, every method, relational facts.

Rather than asserting absolute numbers, these tests pin the *relations*
between the methods that the paper's comparison section predicts, on a
shared seeded workload.
"""

import pytest

from repro.core.dtm import METHODS, MultidatabaseSystem, SystemConfig
from repro.sim.driver import run_schedule
from repro.sim.failures import RandomFailureInjector
from repro.sim.experiments import guarantee_holds
from repro.sim.metrics import audit, collect_metrics
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def run_method(method, seed=31, failures=0.0, n_global=20):
    system = MultidatabaseSystem(
        SystemConfig(
            sites=("a", "b", "c"), n_coordinators=2, method=method, seed=seed
        )
    )
    if failures:
        RandomFailureInjector(system, probability=failures, seed=seed)
    schedule = WorkloadGenerator(
        WorkloadConfig(
            sites=("a", "b", "c"),
            n_global=n_global,
            n_tables=4,
            keys_per_site=32,
            sites_max=2,
            seed=seed,
        )
    ).generate()
    result = run_schedule(system, schedule)
    return system, collect_metrics(system, latencies=result.commit_latencies)


@pytest.fixture(scope="module")
def failure_free():
    return {
        method: run_method(method)
        for method in ("2cm", "naive", "ticket", "cgm")
    }


@pytest.fixture(scope="module")
def with_failures():
    return {
        method: run_method(method, failures=0.4)
        for method in ("2cm", "naive", "ticket", "cgm")
    }


class TestFailureFreeRelations:
    def test_2cm_matches_naive_exactly(self, failure_free):
        """Without failures certification never fires: 2CM and naive
        produce the same committed counts and the same latencies."""
        cm = failure_free["2cm"][1]
        naive = failure_free["naive"][1]
        assert cm.global_committed == naive.global_committed
        assert cm.refusals_by_reason == {} == naive.refusals_by_reason

    def test_every_certifying_method_is_correct(self, failure_free):
        for method in ("2cm", "ticket", "cgm"):
            system, _metrics = failure_free[method]
            assert guarantee_holds(audit(system)), method

    def test_cgm_commits_no_more_than_2cm(self, failure_free):
        assert (
            failure_free["cgm"][1].global_committed
            <= failure_free["2cm"][1].global_committed
        )

    def test_cgm_not_faster_than_2cm(self, failure_free):
        assert (
            failure_free["cgm"][1].mean_latency
            >= failure_free["2cm"][1].mean_latency
        )

    def test_ticket_aborts_in_vain(self, failure_free):
        ticket = failure_free["ticket"][1]
        cm = failure_free["2cm"][1]
        assert ticket.global_aborted >= cm.global_aborted

    def test_message_counts_comparable(self, failure_free):
        """All decentralized methods use the same 2PC message pattern;
        per committed transaction the counts stay in a narrow band."""
        cm = failure_free["2cm"][1]
        naive = failure_free["naive"][1]
        assert cm.messages == naive.messages


class TestFailureRelations:
    def test_2cm_clean_under_failures(self, with_failures):
        system, metrics = with_failures["2cm"]
        assert guarantee_holds(audit(system))
        assert metrics.unilateral_aborts > 0  # failures really happened

    def test_naive_commits_at_least_as_many(self, with_failures):
        """Naive never refuses — it buys commits with corruption risk."""
        assert (
            with_failures["naive"][1].global_committed
            >= with_failures["2cm"][1].global_committed
        )

    def test_resubmissions_happen_under_all_agents(self, with_failures):
        for method in ("2cm", "naive", "ticket"):
            assert with_failures[method][1].resubmissions > 0, method

    def test_all_transactions_accounted_for(self, with_failures):
        for method, (system, metrics) in with_failures.items():
            assert metrics.global_committed + metrics.global_aborted == 20, (
                method
            )

    def test_force_writes_track_prepares_and_decisions(self, with_failures):
        """Every READY costs a prepare record, every local commit a
        commit record, every decision a coordinator record."""
        system, metrics = with_failures["2cm"]
        sites = system.config.sites
        ready = sum(system.agent(s).ready_sent for s in sites)
        commits = sum(system.agent(s).commits_done for s in sites)
        decisions = sum(c.decisions_logged for c in system.coordinators)
        assert metrics.force_writes == ready + commits + decisions
