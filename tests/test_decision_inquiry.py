"""The presumed-abort decision inquiry (2PC blocking-window fix).

A coordinator SIGKILLed *before* forcing its DECISION record leaves
participants stranded: prepared entries hold their locks forever and
active entries keep their in-place writes — with no protocol message
that could ever resolve them (the paper's recovery machinery only
replays *logged* decisions).  The inquiry closes that window:

* agents with an overdue decision send INQUIRE to the coordinator;
* the coordinator answers from its decision log, stays silent for
  transactions it is actively driving, and replies ROLLBACK for
  transactions it has never heard of — *presumed abort*, safe because
  the DECISION record is always forced before the first COMMIT leaves;
* everything is off by default (``decision_inquiry_after = 0``), so
  simulator goldens and the paper's timings are untouched.
"""

import pytest

from repro.common.ids import SerialNumber, global_txn
from repro.core.agent import AgentConfig, AgentPhase
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.durability.config import DurabilityConfig
from repro.ldbs.commands import AddValue, UpdateItem
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel

INQUIRY = AgentConfig(alive_check_interval=50.0, decision_inquiry_after=120.0)


def build(tmp_path=None, agent=INQUIRY, **kwargs):
    kwargs.setdefault("sites", ("a", "b"))
    kwargs.setdefault("latency", LatencyModel(base=5.0))
    if tmp_path is not None:
        kwargs.setdefault(
            "durability", DurabilityConfig(root=str(tmp_path), sync="always")
        )
    system = MultidatabaseSystem(SystemConfig(agent=agent, **kwargs))
    system.load("a", "t", {"X": 100})
    system.load("b", "t", {"Z": 10})
    return system


def drain(system, limit=100_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending, "system did not quiesce"


def spec(number=1):
    return GlobalTransactionSpec(
        txn=global_txn(number),
        steps=(
            ("a", UpdateItem("t", "X", AddValue(-5))),
            ("b", UpdateItem("t", "Z", AddValue(5))),
        ),
    )


def _orphan(system, number, *, prepare=False, command=True):
    """Plant a subtransaction at site ``a`` whose coordinator will never
    speak again — BEGIN (and optionally COMMAND/PREPARE) arrive from the
    real coordinator's address, but the coordinator has no state for it,
    exactly as if it had been killed after sending."""
    coord = system.coordinator()
    txn = global_txn(number)
    system.network.send(
        Message(MsgType.BEGIN, src=coord.address, dst="agent:a", txn=txn)
    )
    if command:
        system.network.send(
            Message(
                MsgType.COMMAND,
                src=coord.address,
                dst="agent:a",
                txn=txn,
                payload=UpdateItem("t", "X", AddValue(-1)),
            )
        )
    if prepare:
        # a real coordinator only sends PREPARE after the last result:
        # let the command finish (and its result go unanswered) first
        system.run(max_events=2_000)
        system.network.send(
            Message(
                MsgType.PREPARE,
                src=coord.address,
                dst="agent:a",
                txn=txn,
                sn=SerialNumber(clock=1.0, site="c0"),
            )
        )
    return txn


def test_active_orphan_is_presumed_aborted_and_releases_its_writes():
    system = build()
    agent = system.agent("a")
    txn = _orphan(system, 90, command=True)
    drain(system)

    assert agent.phase_of(txn) is None or agent.phase_of(txn) is AgentPhase.DONE
    assert agent.open_txn_count() == 0
    assert agent.inquiries_sent >= 1
    coord = system.coordinator()
    assert coord.inquiries >= 1
    assert coord.inquiries_presumed_abort >= 1
    # the orphan's in-place write was undone: X is back to its image
    snapshot = system.ltm("a").store.snapshot("t")
    x = next(v for k, v in snapshot.items() if k.key == "X")
    assert x == 100


def test_prepared_orphan_is_presumed_aborted_and_unblocks_later_txns():
    system = build()
    agent = system.agent("a")
    txn = _orphan(system, 91, prepare=True)
    drain(system)
    assert agent.open_txn_count() == 0
    assert system.coordinator().inquiries_presumed_abort >= 1

    # the lock the orphan held on X is free: a real transaction commits
    done = system.submit(spec(1))
    drain(system)
    assert done.value.committed
    assert agent.phase_of(txn) in (None, AgentPhase.DONE)


def test_logged_decision_is_resent_not_aborted(tmp_path):
    system = build(tmp_path)
    done = system.submit(spec(1))
    drain(system)
    assert done.value.committed

    # a participant whose COMMIT-ACK was the last word asks again —
    # the answer must be the logged COMMIT, never a presumed abort
    coord = system.coordinator()
    system.network.send(
        Message(
            MsgType.INQUIRE,
            src="agent:a",
            dst=coord.address,
            txn=global_txn(1),
        )
    )
    drain(system)
    assert coord.inquiries == 1
    assert coord.inquiries_presumed_abort == 0
    # the resent COMMIT was re-acked idempotently by the DONE agent
    assert system.agent("a").open_txn_count() == 0


def test_inquiry_for_actively_driven_txn_is_ignored():
    system = build()
    coord = system.coordinator()
    done = system.submit(spec(1, ))
    # interleave: fire the inquiry while the transaction is in flight
    system.run(max_events=5)
    assert not done.done
    active = list(coord._active)
    if active:
        coord._on_inquire(
            Message(
                MsgType.INQUIRE,
                src="agent:a",
                dst=coord.address,
                txn=active[0],
            )
        )
        assert coord.inquiries_presumed_abort == 0
    drain(system)
    assert done.value.committed


def test_inquiry_disabled_by_default_keeps_orphans_prepared():
    """With ``decision_inquiry_after = 0`` (the simulator default) the
    blocking window is faithfully preserved — orphans stay put."""
    system = build(agent=AgentConfig(alive_check_interval=50.0))
    agent = system.agent("a")
    txn = _orphan(system, 92, prepare=True)
    # bounded drain: the alive-check timer restarts forever by design
    for _ in range(200):
        if not system.kernel.pending:
            break
        system.run(max_events=200)
        if system.kernel.now > 5_000.0:
            break
    assert agent.phase_of(txn) is AgentPhase.PREPARED
    assert agent.inquiries_sent == 0
    assert system.coordinator().inquiries == 0
