"""Tests for CGM's data-partition rules (repro.baselines.cgm).

The paper's Sec. 6: in CGM "the restriction is imposed in a less
general way by partitioning the data items into the locally updateable
set and the globally updateable set.  As concerns reads, an additional
restriction is that those global transactions that update data items,
are not allowed to read the locally updateable set."
"""

import pytest

from repro.common.errors import RefusalReason
from repro.common.ids import global_txn
from repro.baselines.cgm import CGMPartition, CGMScheduler
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.kernel import EventKernel
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem


def drain(system, limit=100_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending


class TestSchedulerRules:
    def make(self):
        kernel = EventKernel()
        return kernel, CGMScheduler(
            kernel, partition=CGMPartition.of("gu")
        )

    def test_global_update_of_gu_allowed(self):
        kernel, scheduler = self.make()
        event = scheduler.before_command(
            kernel, global_txn(1), "a", UpdateItem("gu", 1, AddValue(1))
        )
        assert event.done and event.error is None

    def test_global_update_of_lu_denied(self):
        kernel, scheduler = self.make()
        event = scheduler.before_command(
            kernel, global_txn(1), "a", UpdateItem("lu", 1, AddValue(1))
        )
        assert event.error is not None
        assert event.error.reason is RefusalReason.PARTITION
        assert scheduler.partition_violations == 1

    def test_read_only_global_may_read_lu(self):
        kernel, scheduler = self.make()
        event = scheduler.before_command(
            kernel, global_txn(1), "a", ReadItem("lu", 1)
        )
        assert event.done and event.error is None

    def test_updater_may_not_read_lu(self):
        kernel, scheduler = self.make()
        scheduler.before_command(
            kernel, global_txn(1), "a", UpdateItem("gu", 1, AddValue(1))
        )
        event = scheduler.before_command(
            kernel, global_txn(1), "b", ReadItem("lu", 1)
        )
        assert event.error is not None
        assert event.error.reason is RefusalReason.PARTITION

    def test_lu_reader_may_not_later_update(self):
        kernel, scheduler = self.make()
        scheduler.before_command(
            kernel, global_txn(1), "a", ReadItem("lu", 1)
        )
        event = scheduler.before_command(
            kernel, global_txn(1), "a", UpdateItem("gu", 1, AddValue(1))
        )
        assert event.error is not None

    def test_flags_cleared_at_end(self):
        kernel, scheduler = self.make()
        scheduler.before_command(
            kernel, global_txn(1), "a", UpdateItem("gu", 1, AddValue(1))
        )
        scheduler.on_end(global_txn(1), committed=False)
        event = scheduler.before_command(
            kernel, global_txn(1), "a", ReadItem("lu", 1)
        )
        assert event.done and event.error is None

    def test_no_partition_means_no_rules(self):
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel, partition=None)
        event = scheduler.before_command(
            kernel, global_txn(1), "a", UpdateItem("lu", 1, AddValue(1))
        )
        assert event.done and event.error is None


class TestEndToEndPartition:
    def build(self):
        system = MultidatabaseSystem(
            SystemConfig(
                sites=("a", "b"),
                method="cgm",
                cgm_gu_tables=("gu",),
            )
        )
        for site in ("a", "b"):
            system.load(site, "gu", {1: 10})
            system.load(site, "lu", {1: 20})
        return system

    def test_partition_violating_global_aborts(self):
        system = self.build()
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(("a", UpdateItem("lu", 1, AddValue(1))),),
            )
        )
        drain(system)
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.PARTITION

    def test_conforming_global_commits(self):
        system = self.build()
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(
                    ("a", UpdateItem("gu", 1, AddValue(1))),
                    ("b", UpdateItem("gu", 1, AddValue(-1))),
                ),
            )
        )
        drain(system)
        assert done.value.committed

    def test_local_update_of_gu_denied(self):
        """Local transactions may only touch the LU set with writes —
        statically, unlike 2CM's DLU which only protects bound data."""
        system = self.build()
        denied = system.submit_local("a", [UpdateItem("gu", 1, AddValue(1))])
        allowed = system.submit_local("a", [UpdateItem("lu", 1, AddValue(1))])
        drain(system)
        assert not denied.value.committed
        assert denied.value.reason is RefusalReason.DLU
        assert allowed.value.committed
        assert system.guards["a"].static_denials == 1

    def test_2cm_has_no_static_restriction(self):
        """The Sec. 6 contrast: under 2CM the same local update is fine
        (only *bound* data is ever restricted)."""
        system = MultidatabaseSystem(
            SystemConfig(sites=("a",), method="2cm", cgm_gu_tables=("gu",))
        )
        system.load("a", "gu", {1: 10})
        done = system.submit_local("a", [UpdateItem("gu", 1, AddValue(1))])
        drain(system)
        assert done.value.committed
