"""Unit tests for the session layer (repro.net.reliable)."""

from repro.common.ids import global_txn
from repro.kernel import EventKernel
from repro.net.faults import FaultPlan, FaultyNetwork, Partition
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network
from repro.net.reliable import ReliableConfig, SessionLayer


def make(plan=None, config=None, latency=None, seed=0):
    kernel = EventKernel()
    net = FaultyNetwork(
        kernel, latency=latency or LatencyModel(base=5.0), seed=seed, plan=plan
    )
    session = SessionLayer(kernel, net, config or ReliableConfig())
    return kernel, net, session


def msg(src, dst, seq, type_=MsgType.COMMAND):
    return Message(
        type=type_, src=src, dst=dst, txn=global_txn(1), payload=seq
    )


def wire(session, receiver):
    """Register a receiver at "b" and a sender endpoint at "a" (the
    sender must be addressable or the cumulative ACKs cannot return)."""
    session.register("a", lambda m: None)
    session.register("b", receiver)


class TestLosslessFifoOverLossyWire:
    def test_heavy_loss_all_messages_arrive_in_order(self):
        kernel, net, session = make(
            plan=FaultPlan(loss=0.3),
            config=ReliableConfig(rto=20.0, max_retries=20, seed=1),
        )
        got = []
        wire(session, lambda m: got.append(m.payload))
        for i in range(20):
            session.send(msg("a", "b", i))
        kernel.run()
        assert got == list(range(20))
        assert net.messages_lost > 0  # the wire really did drop some
        assert session.retransmits > 0  # and the session repaired it
        assert session.dead_letters == []
        assert kernel.pending == 0

    def test_duplication_deduped_exactly_once_delivery(self):
        kernel, net, session = make(plan=FaultPlan(duplication=1.0))
        got = []
        wire(session, lambda m: got.append(m.payload))
        for i in range(10):
            session.send(msg("a", "b", i))
        kernel.run()
        assert got == list(range(10))
        assert net.messages_duplicated >= 10  # data + their acks
        assert session.dups_dropped > 0

    def test_spike_reordering_is_resequenced(self):
        kernel, net, session = make(
            plan=FaultPlan(spike_probability=0.5, spike_delay=200.0),
            config=ReliableConfig(rto=40.0, max_retries=20, seed=2),
        )
        got = []
        wire(session, lambda m: got.append(m.payload))
        for i in range(20):
            session.send(msg("a", "b", i))
        kernel.run()
        assert got == list(range(20))
        assert net.messages_spiked > 0

    def test_perfect_wire_costs_nothing_extra(self):
        kernel, net, session = make()
        got = []
        wire(session, lambda m: got.append(m.payload))
        for i in range(5):
            session.send(msg("a", "b", i))
        kernel.run()
        assert got == list(range(5))
        assert session.retransmits == 0
        assert session.dups_dropped == 0


class TestUntracked:
    def test_heartbeats_bypass_the_session(self):
        kernel, _net, session = make()
        got = []
        wire(session, got.append)
        ping = Message(MsgType.PING, src="a", dst="b", txn=None)
        session.send(ping)
        kernel.run()
        assert got == [ping]
        assert ping.session is None  # no envelope was stamped
        assert session._send_states == {}  # no window was opened


class TestGiveUp:
    def test_retry_exhaustion_dead_letters_and_resets_epoch(self):
        plan = FaultPlan(loss=1.0, heal_at=500.0)
        kernel, _net, session = make(
            plan=plan,
            config=ReliableConfig(rto=10.0, backoff=1.0, max_retries=3, jitter=0.0),
        )
        got = []
        wire(session, lambda m: got.append(m.payload))
        for i in range(3):
            session.send(msg("a", "b", i))
        kernel.run(until=400.0, advance=True)
        # Budget exhausted long ago: the window was abandoned.
        assert [m.payload for m, _ in session.dead_letters] == [0, 1, 2]
        assert session.session_resets == 1
        assert got == []
        # After heal the *new* epoch resynchronises the receiver: the
        # channel is usable again, not wedged on the abandoned seqs.
        kernel.run(until=600.0, advance=True)
        session.send(msg("a", "b", 99))
        kernel.run()
        assert got == [99]
        assert kernel.pending == 0

    def test_sustained_partition_dead_letters_then_resyncs_exactly_once(self):
        # The full overload-survival story on one channel: a partition
        # outlives the retry budget (dead letters + epoch bump, with the
        # on_dead_letter observer notified), and after the heal a fresh
        # batch flows through the resynchronised session exactly once.
        plan = FaultPlan(
            partitions=(
                Partition(isolated=frozenset({"b"}), start=0.0, end=300.0),
            )
        )
        kernel, net, session = make(
            plan=plan,
            config=ReliableConfig(
                rto=10.0, backoff=1.0, max_retries=2, jitter=0.0
            ),
        )
        got = []
        observed = []
        wire(session, lambda m: got.append(m.payload))
        session.on_dead_letter = lambda m, why: observed.append(m.payload)
        for i in range(4):
            session.send(msg("a", "b", i))
        kernel.run(until=250.0, advance=True)
        # Every message of the first batch was abandoned, not silently
        # lost: dead-lettered, observer notified, epoch bumped.
        assert [m.payload for m, _ in session.dead_letters] == [0, 1, 2, 3]
        assert observed == [0, 1, 2, 3]
        assert session.session_resets >= 1
        assert got == []
        assert net.partition_drops > 0
        # Post-heal: the next batch arrives exactly once, in order.
        kernel.run(until=320.0, advance=True)
        for i in range(10, 14):
            session.send(msg("a", "b", i))
        kernel.run()
        assert got == [10, 11, 12, 13]
        assert net.trace_dropped == 0  # the trace saw every message
        assert kernel.pending == 0

    def test_session_dead_letters_are_bounded(self):
        kernel, _net, session = make(
            plan=FaultPlan(loss=1.0),
            config=ReliableConfig(
                rto=5.0,
                backoff=1.0,
                max_retries=1,
                jitter=0.0,
                dead_letter_limit=2,
            ),
        )
        observed = []
        wire(session, lambda m: None)
        session.on_dead_letter = lambda m, why: observed.append(m.payload)
        for i in range(5):
            session.send(msg("a", "b", i))
        kernel.run(until=500.0, advance=True)
        # All five were abandoned and every abandonment was observed,
        # but only the newest two are retained.
        assert observed == [0, 1, 2, 3, 4]
        assert [m.payload for m, _ in session.dead_letters] == [3, 4]
        assert session.dead_letters_dropped == 3

    def test_stale_epoch_messages_are_dropped(self):
        """A straggler from the pre-reset epoch must not be delivered
        after the receiver adopted the new epoch."""
        kernel, net, session = make()
        got = []
        wire(session, lambda m: got.append(m.payload))
        stale = msg("a", "b", 0)
        stale.session = (0, 0)
        fresh = msg("a", "b", 1)
        fresh.session = (1, 0)
        net.send(fresh)  # epoch 1 arrives first: receiver resyncs
        kernel.run()
        net.send(stale)  # epoch 0 straggler
        kernel.run()
        assert got == [1]
        assert session.dups_dropped == 1


class TestEndpointDown:
    def test_dead_process_is_not_acked_sender_retries_until_recovery(self):
        kernel, _net, session = make(
            config=ReliableConfig(rto=20.0, backoff=1.0, max_retries=50, jitter=0.0)
        )
        got = []
        wire(session, lambda m: got.append(m.payload))
        session.note_endpoint_down("b")
        session.send(msg("a", "b", 7))
        kernel.run(until=100.0, advance=True)
        assert got == []
        assert session.dropped_to_down > 0
        assert session.retransmits > 0  # no ack came back, so it retried
        session.note_endpoint_up("b")
        kernel.run()
        assert got == [7]  # the next retransmit landed, exactly once
        assert kernel.pending == 0


class TestDelegation:
    def test_unknown_attributes_delegate_to_wrapped_network(self):
        _kernel, net, session = make()
        assert session.messages_sent == net.messages_sent
        assert session.trace is net.trace
        session.pause_channel("a", "b")  # Network method via __getattr__
        assert ("a", "b") in net._paused
