"""Tests for the audit explainer (repro.history.explain)."""

from repro.common.ids import global_txn, local_txn
from repro.history.committed import committed_projection
from repro.history.explain import (
    explain,
    reads_from_table,
    serialization_constraints,
)
from repro.workload.scenarios import run_h1, run_h2

from tests.helpers import HistoryBuilder


class TestReadsFromTable:
    def test_first_reads_only(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").c(1).cl(1, "a")
        h.r(2, "a", "X").r(2, "a", "X").c(2).cl(2, "a")
        entries = reads_from_table(committed_projection(h.history))
        assert len(entries) == 1
        assert entries[0].source == global_txn(1)

    def test_own_writes_excluded(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").r(1, "a", "X").c(1).cl(1, "a")
        assert reads_from_table(committed_projection(h.history)) == []

    def test_incarnations_reported_separately(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).al(1, "a", inc=0)
        h.w(2, "a", "X").c(2).cl(2, "a")
        h.r(1, "a", "X", inc=1).cl(1, "a", inc=1)
        entries = reads_from_table(committed_projection(h.history))
        t1 = [e for e in entries if e.reader == global_txn(1)]
        assert {e.incarnation for e in t1} == {0, 1}
        assert {e.source for e in t1} == {None, global_txn(2)}


class TestConstraints:
    def test_reads_from_gives_order(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").c(1).cl(1, "a")
        h.r(2, "a", "X").c(2).cl(2, "a")
        constraints = serialization_constraints(
            committed_projection(h.history)
        )
        assert any(
            c.before == global_txn(1) and c.after == global_txn(2)
            for c in constraints
        )

    def test_initial_read_orders_before_writers(self):
        h = HistoryBuilder()
        h.r(2, "a", "X").c(2).cl(2, "a")
        h.w(1, "a", "X").c(1).cl(1, "a")
        constraints = serialization_constraints(
            committed_projection(h.history)
        )
        assert any(
            c.before == global_txn(2) and c.after == global_txn(1)
            for c in constraints
        )


class TestExplain:
    def test_h2_cycle_extracted(self):
        """The explainer derives the paper's H2 argument verbatim."""
        result = run_h2("naive")
        explanation = explain(
            committed_projection(result.system.history)
        )
        assert explanation.constraint_cycle is not None
        labels = {t.label for t in explanation.constraint_cycle}
        assert labels == {"T1", "T3", "L4"}
        text = explanation.render()
        assert "impossible" in text
        assert "commit-order graph cycle" in text

    def test_h1_distortion_sections(self):
        result = run_h1("naive")
        explanation = explain(
            committed_projection(result.system.history)
        )
        assert explanation.view_splits
        assert explanation.decomposition_changes
        assert "GLOBAL VIEW DISTORTION" in explanation.render()

    def test_clean_history_has_no_cycles(self):
        result = run_h2("2cm")
        explanation = explain(
            committed_projection(result.system.history)
        )
        assert explanation.constraint_cycle is None
        assert explanation.commit_order_cycle is None


class TestCliExplain:
    def test_scenario_explain_flag(self, capsys):
        from repro.__main__ import main

        assert main(["scenario", "H2", "--method", "naive", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "serialization constraints:" in out
        assert "impossible" in out
