"""Unit tests for the heartbeat failure detector."""

from repro.kernel import EventKernel
from repro.net.failure_detector import FailureDetector, FailureDetectorConfig
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network


class Responder:
    """A watched endpoint that answers PING with PONG while alive."""

    def __init__(self, network, address):
        self.network = network
        self.address = address
        self.alive = True
        network.register(address, self.on_message)

    def on_message(self, message):
        if message.type is MsgType.PING and self.alive:
            self.network.send(
                Message(
                    MsgType.PONG,
                    src=self.address,
                    dst=message.src,
                    txn=None,
                )
            )


def make(interval=10.0, max_misses=3, stop_at=None, restore_pongs=1):
    kernel = EventKernel()
    net = Network(kernel, latency=LatencyModel(base=1.0))
    suspects, restores = [], []
    detector = FailureDetector(
        kernel,
        net,
        "fd:main",
        FailureDetectorConfig(
            interval=interval,
            max_misses=max_misses,
            stop_at=stop_at,
            restore_pongs=restore_pongs,
        ),
        on_suspect=suspects.append,
        on_restore=restores.append,
    )
    return kernel, net, detector, suspects, restores


class TestSuspicion:
    def test_live_endpoint_is_never_suspected(self):
        kernel, net, detector, suspects, _ = make(stop_at=200.0)
        Responder(net, "agent:a")
        detector.watch("agent:a")
        detector.start()
        kernel.run()
        assert suspects == []
        assert detector.pings_sent > 0
        assert detector.pongs_heard > 0
        assert kernel.pending == 0  # stop_at let the kernel drain

    def test_silent_endpoint_suspected_after_max_misses(self):
        kernel, net, detector, suspects, _ = make(
            interval=10.0, max_misses=3, stop_at=200.0
        )
        responder = Responder(net, "agent:a")
        responder.alive = False
        detector.watch("agent:a")
        detector.start()
        kernel.run()
        assert suspects == ["agent:a"]  # callback fires exactly once
        assert detector.suspected == {"agent:a"}

    def test_recovery_restores_exactly_once(self):
        kernel, net, detector, suspects, restores = make(
            interval=10.0, max_misses=2, stop_at=400.0
        )
        responder = Responder(net, "agent:a")
        responder.alive = False
        detector.watch("agent:a")
        detector.start()
        kernel.run(until=100.0, advance=True)
        assert suspects == ["agent:a"]
        responder.alive = True
        kernel.run()
        assert restores == ["agent:a"]
        assert detector.suspected == set()
        events = [event for _, event, _ in detector.log]
        assert events == ["suspect", "restore"]

    def test_flapping_site_stays_suspected_until_streak(self):
        # Hysteresis: with restore_pongs=3, a site that answers every
        # other probe round never accumulates the streak, so the
        # suspicion holds until the site is *consistently* healthy.
        kernel, net, detector, suspects, restores = make(
            interval=10.0, max_misses=2, stop_at=150.0, restore_pongs=3
        )
        responder = Responder(net, "agent:a")
        responder.alive = False
        detector.watch("agent:a")
        detector.start()

        def set_alive(at, alive):
            kernel.schedule_at(at, lambda: setattr(responder, "alive", alive))

        # Dead through t=35 (suspected at the second missed round), then
        # flapping: up for one probe round, down for the next, twice.
        set_alive(35.0, True)
        set_alive(45.0, False)
        set_alive(55.0, True)
        set_alive(65.0, False)
        # Finally healthy for good from t=85.
        set_alive(85.0, True)
        kernel.run()
        assert suspects == ["agent:a"]
        # The single flap-round PONGs never lifted the suspicion; only
        # three consecutive answered rounds did — well after t=85.
        assert restores == ["agent:a"]
        events = [(event, time) for time, event, _ in detector.log]
        assert [e for e, _ in events] == ["suspect", "restore"]
        restore_time = dict((e, t) for e, t in events)["restore"]
        assert restore_time > 100.0
        assert detector.suspected == set()

    def test_single_pong_restores_without_hysteresis(self):
        # restore_pongs=1 keeps the original behaviour: first PONG lifts.
        kernel, net, detector, _suspects, restores = make(
            interval=10.0, max_misses=2, stop_at=100.0, restore_pongs=1
        )
        responder = Responder(net, "agent:a")
        responder.alive = False
        detector.watch("agent:a")
        detector.start()
        kernel.schedule_at(35.0, lambda: setattr(responder, "alive", True))
        kernel.run()
        assert restores == ["agent:a"]

    def test_unregistered_endpoint_counts_as_miss(self):
        kernel, _net, detector, suspects, _ = make(
            interval=10.0, max_misses=2, stop_at=100.0
        )
        detector.watch("agent:ghost")  # never registered: send() raises
        detector.start()
        kernel.run()
        assert suspects == ["agent:ghost"]


class TestLifecycle:
    def test_stop_cancels_the_probe_timer(self):
        kernel, net, detector, _, _ = make(interval=10.0)  # no stop_at
        Responder(net, "agent:a")
        detector.watch("agent:a")
        detector.start()
        kernel.run(until=35.0, advance=True)
        detector.stop()
        kernel.run()  # would never return if the timer kept rearming
        assert kernel.pending == 0

    def test_unwatch_forgets_the_address(self):
        kernel, _net, detector, suspects, _ = make(
            interval=10.0, max_misses=1, stop_at=50.0
        )
        detector.watch("agent:ghost")
        detector.start()
        kernel.run(until=15.0, advance=True)
        detector.unwatch("agent:ghost")
        kernel.run()
        assert detector.suspected == set()
        # The one suspect event may or may not have fired before the
        # unwatch; either way no further probing happened for it.
        assert suspects in ([], ["agent:ghost"])
