"""Unit tests for the simulated network (repro.net)."""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.common.ids import global_txn
from repro.kernel import EventKernel
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network


def make(kernel=None, **kwargs):
    kernel = kernel or EventKernel()
    return kernel, Network(kernel, **kwargs)


def msg(src, dst, type_=MsgType.BEGIN, txn=None):
    return Message(type=type_, src=src, dst=dst, txn=txn or global_txn(1))


class TestDelivery:
    def test_basic_delivery_with_base_latency(self):
        kernel, net = make(latency=LatencyModel(base=7.0))
        got = []
        net.register("b", got.append)
        net.send(msg("a", "b"))
        kernel.run()
        assert len(got) == 1
        assert kernel.now == 7.0

    def test_unregistered_destination_rejected(self):
        _kernel, net = make()
        with pytest.raises(SimulationError):
            net.send(msg("a", "nowhere"))

    def test_duplicate_registration_rejected(self):
        _kernel, net = make()
        net.register("b", lambda m: None)
        with pytest.raises(ConfigError):
            net.register("b", lambda m: None)

    def test_counters(self):
        kernel, net = make()
        net.register("b", lambda m: None)
        net.send(msg("a", "b"))
        assert net.messages_sent == 1
        assert net.in_flight == 1
        kernel.run()
        assert net.messages_delivered == 1
        assert net.in_flight == 0


class TestFifoPerChannel:
    def test_same_channel_messages_never_reorder(self):
        kernel, net = make(latency=LatencyModel(base=1.0, jitter=20.0), seed=42)
        got = []
        net.register("b", lambda m: got.append(m.seq))
        sent = [msg("a", "b") for _ in range(20)]
        for m in sent:
            net.send(m)
        kernel.run()
        assert got == [m.seq for m in sent]

    def test_cross_channel_overtaking_possible(self):
        """A later message on a fast channel beats an earlier one on a
        slow channel — the Sec. 5.3 race the extension exists for."""
        kernel, net = make(
            latency=LatencyModel(base=5.0, overrides={("slow", "s"): 100.0})
        )
        got = []
        net.register("s", lambda m: got.append(m.src))
        net.send(msg("slow", "s"))
        net.send(msg("fast", "s"))
        kernel.run()
        assert got == ["fast", "slow"]

    def test_override_applies_to_exact_channel_only(self):
        kernel, net = make(
            latency=LatencyModel(base=5.0, overrides={("a", "b"): 50.0})
        )
        times = {}
        net.register("b", lambda m: times.setdefault(m.src, kernel.now))
        net.send(msg("a", "b"))
        net.send(msg("c", "b"))
        kernel.run()
        assert times["c"] == 5.0
        assert times["a"] == 50.0


class TestLatencyModel:
    def test_no_jitter_is_deterministic(self):
        import random

        model = LatencyModel(base=3.0)
        assert model.sample("a", "b", random.Random(0)) == 3.0

    def test_jitter_bounded(self):
        import random

        model = LatencyModel(base=3.0, jitter=2.0)
        rng = random.Random(7)
        for _ in range(100):
            value = model.sample("a", "b", rng)
            assert 3.0 <= value <= 5.0

    def test_same_seed_same_delays(self):
        kernel1, net1 = make(latency=LatencyModel(base=1.0, jitter=9.0), seed=5)
        kernel2, net2 = make(latency=LatencyModel(base=1.0, jitter=9.0), seed=5)
        arrivals1, arrivals2 = [], []
        net1.register("b", lambda m: arrivals1.append(kernel1.now))
        net2.register("b", lambda m: arrivals2.append(kernel2.now))
        for _ in range(10):
            net1.send(msg("a", "b"))
            net2.send(msg("a", "b"))
        kernel1.run()
        kernel2.run()
        assert arrivals1 == arrivals2

    def test_negative_override_rejected(self):
        _kernel, net = make(
            latency=LatencyModel(base=5.0, overrides={("a", "b"): -1.0})
        )
        net.register("b", lambda m: None)
        with pytest.raises(ConfigError):
            net.send(msg("a", "b"))


class TestTrace:
    def test_trace_records_send_and_delivery_times(self):
        kernel, net = make(latency=LatencyModel(base=4.0))
        net.register("b", lambda m: None)
        net.send(msg("a", "b"))
        kernel.run()
        (send_time, delivery_time, message) = net.trace[0]
        assert send_time == 0.0
        assert delivery_time == 4.0
        assert message.dst == "b"

    def test_trace_bounded(self):
        kernel, net = make(trace_limit=3)
        net.register("b", lambda m: None)
        for _ in range(10):
            net.send(msg("a", "b"))
        assert len(net.trace) == 3


class TestMessageRendering:
    def test_str_contains_route_and_type(self):
        text = str(msg("a", "b", MsgType.PREPARE))
        assert "PREPARE" in text
        assert "a->b" in text


class TestPauseResume:
    def test_paused_channel_holds_messages(self):
        kernel, net = make()
        got = []
        net.register("b", got.append)
        net.pause_channel("a", "b")
        net.send(msg("a", "b"))
        kernel.run()
        assert got == []
        assert net.is_paused("a", "b")

    def test_resume_delivers_in_order(self):
        kernel, net = make()
        got = []
        net.register("b", lambda m: got.append(m.seq))
        net.pause_channel("a", "b")
        queued = [msg("a", "b") for _ in range(3)]
        for m in queued:
            net.send(m)
        released = net.resume_channel("a", "b")
        kernel.run()
        assert released == 3
        assert got == [m.seq for m in queued]

    def test_other_channels_unaffected(self):
        kernel, net = make()
        got = []
        net.register("b", lambda m: got.append(m.src))
        net.pause_channel("a", "b")
        net.send(msg("a", "b"))
        net.send(msg("c", "b"))
        kernel.run()
        assert got == ["c"]
        net.resume_channel("a", "b")
        kernel.run()
        assert got == ["c", "a"]

    def test_resume_of_unpaused_channel_is_noop(self):
        _kernel, net = make()
        assert net.resume_channel("x", "y") == 0

    def test_paused_send_reports_inf(self):
        _kernel, net = make()
        net.register("b", lambda m: None)
        net.pause_channel("a", "b")
        assert net.send(msg("a", "b")) == float("inf")

    def test_pause_resume_scenario_race(self):
        """A dynamic Hx-style overtake: pause only the PREPARE leg."""
        kernel, net = make(latency=LatencyModel(base=5.0))
        got = []
        net.register("s", lambda m: got.append(m.src))
        net.pause_channel("coordJ", "s")
        net.send(msg("coordJ", "s"))   # e.g. a PREPARE, held back
        net.send(msg("coordK", "s"))   # e.g. a COMMIT, sails through
        kernel.run()
        net.resume_channel("coordJ", "s")
        kernel.run()
        assert got == ["coordK", "coordJ"]


class TestDeadLetters:
    def test_resume_drain_survives_unregistered_endpoint(self):
        """One undeliverable message must not abort the drain."""
        _kernel, net = make()
        net.register("b", lambda m: None)
        net.pause_channel("a", "b")
        queued = [msg("a", "b") for _ in range(3)]
        for m in queued:
            net.send(m)
        net.unregister("b")
        released = net.resume_channel("a", "b")
        assert released == 0
        # The drain finished: every queued message is accounted for.
        assert [m for m, _why in net.dead_letters] == queued
        assert all("b" in why for _m, why in net.dead_letters)
        assert not net.is_paused("a", "b")

    def test_unregister_is_idempotent(self):
        _kernel, net = make()
        net.register("b", lambda m: None)
        net.unregister("b")
        net.unregister("b")
        with pytest.raises(SimulationError):
            net.send(msg("a", "b"))

    def test_resume_into_replaced_endpoint(self):
        """A successor registered mid-pause receives the queued backlog."""
        kernel, net = make()
        first, second = [], []
        net.register("b", first.append)
        net.pause_channel("a", "b")
        net.send(msg("a", "b"))
        net.register("b", second.append, replace=True)
        assert net.resume_channel("a", "b") == 1
        kernel.run()
        assert first == []
        assert len(second) == 1
        assert net.dead_letters == []


class TestTraceDropped:
    def test_trace_dropped_counts_unrecorded_messages(self):
        _kernel, net = make(trace_limit=3)
        net.register("b", lambda m: None)
        for _ in range(10):
            net.send(msg("a", "b"))
        assert len(net.trace) == 3
        assert net.trace_dropped == 7

    def test_trace_dropped_zero_under_limit(self):
        _kernel, net = make()
        net.register("b", lambda m: None)
        net.send(msg("a", "b"))
        assert net.trace_dropped == 0


class TestPauseCrashInterleavings:
    """pause/resume interleaved with agent crash/recover and takeover."""

    def _system(self):
        from repro.core.coordinator import CoordinatorTimeouts
        from repro.core.dtm import MultidatabaseSystem, SystemConfig

        system = MultidatabaseSystem(
            SystemConfig(
                sites=("a", "b"),
                coordinator_timeouts=CoordinatorTimeouts(
                    result_timeout=60.0,
                    vote_timeout=60.0,
                    ack_timeout=60.0,
                ),
            )
        )
        system.load("a", "t", {1: 10})
        system.load("b", "t", {1: 10})
        return system

    def _spec(self, number=1):
        from repro.common.ids import global_txn as gtxn
        from repro.core.coordinator import GlobalTransactionSpec
        from repro.ldbs.commands import AddValue, UpdateItem

        return GlobalTransactionSpec(
            txn=gtxn(number),
            steps=(
                ("a", UpdateItem("t", 1, AddValue(1))),
                ("b", UpdateItem("t", 1, AddValue(1))),
            ),
        )

    def test_crash_and_recover_while_channel_paused(self):
        """The endpoint behind a paused channel dies and restarts; the
        drained backlog (BEGIN, COMMAND and the abort's ROLLBACKs)
        reaches the recovered incarnation, which answers idempotently
        so the stuck coordinator finally completes."""
        system = self._system()
        system.network.pause_channel("coord:c1", "agent:b")
        done = system.submit(self._spec())
        system.run(until=300.0, advance=False)
        # The command to b timed out, but the ROLLBACK towards b is
        # queued on the paused channel too: the abort cannot finish.
        assert not done.done
        system.crash_agent("b")
        system.recover_agent("b")
        released = system.network.resume_channel("coord:c1", "agent:b")
        assert released >= 3  # BEGIN + COMMAND + at least one ROLLBACK
        system.run(until=2000.0, advance=False)
        outcome = done.value
        assert not outcome.committed
        assert system.kernel.pending == 0
        assert system.network.dead_letters == []
        # The recovered agent holds no *live* residue of the aborted
        # txn: the drained backlog ran it to a terminal state (or was
        # dropped entirely while the agent was down).
        from repro.core.agent import AgentPhase

        assert system.agent("b").phase_of(outcome.txn) in (None, AgentPhase.DONE)

    def test_crash_while_paused_recover_after_resume(self):
        """Resume drains into a *crashed* endpoint: deliveries are
        dropped by the dead process (the handler is still registered,
        so nothing dead-letters), and the coordinator's resends reach
        the agent only once it recovers."""
        system = self._system()
        system.network.pause_channel("coord:c1", "agent:b")
        done = system.submit(self._spec(2))
        system.run(until=300.0, advance=False)
        assert not done.done
        system.crash_agent("b")
        system.network.resume_channel("coord:c1", "agent:b")
        system.run(until=500.0, advance=False)
        assert not done.done  # drained into a dead process; still stuck
        recovered = system.recover_agent("b")
        assert recovered == 0  # nothing ever reached b's durable log
        system.run(until=2000.0, advance=False)
        assert not done.value.committed
        assert system.kernel.pending == 0
        assert system.network.dead_letters == []

    def test_takeover_replaces_endpoint_behind_paused_channel(self):
        """register(replace=True) mid-pause: the backlog drains to the
        successor coordinator's handler, not the dead predecessor's."""
        from repro.core.coordinator import Coordinator

        system = self._system()
        # Hold back agent a's replies to the coordinator.
        system.network.pause_channel("agent:a", "coord:c1")
        done = system.submit(self._spec(3))
        system.run(until=300.0, advance=False)
        # a's result and its rollback-acks are all stuck in the queue.
        assert not done.done
        seen = []
        successor = Coordinator(
            name="c1",
            site="c1",
            kernel=system.kernel,
            network=system.network,
            history=system.history,
            sn_generator=system.sn_generator,
            takeover=True,
        )
        original_handler = successor._on_message

        def spying_handler(message):
            seen.append(message.type)
            original_handler(message)

        system.network.register("coord:c1", spying_handler, replace=True)
        released = system.network.resume_channel("agent:a", "coord:c1")
        assert released >= 1
        system.run(until=600.0, advance=False)
        # The backlog landed at the successor without error or loss.
        assert seen
        assert system.network.dead_letters == []
        assert successor.committed == 0
