"""WAL substrate tests: record codec, segments, recovery, rotation,
checkpoint compaction, and the SyncPolicy fsync accounting."""

import os
import struct

import pytest

from repro.durability.records import (
    CorruptRecord,
    RecordKind,
    TornRecord,
    WalRecord,
    decode_record,
    encode_record,
)
from repro.durability.recovery import scan_wal, truncate_damage
from repro.durability.segments import (
    SEGMENT_MAGIC,
    SegmentWriter,
    SyncPolicy,
    encode_segment_header,
    list_segments,
    segment_index,
    segment_name,
)
from repro.durability.wal import WriteAheadLog


class TestRecordCodec:
    def test_roundtrip_every_kind(self):
        for kind in RecordKind:
            body = {"txn": "G1", "kind_value": int(kind), "nested": [1, 2]}
            blob = encode_record(WalRecord(kind, body))
            record, offset = decode_record(blob)
            assert record.kind is kind
            assert record.body == body
            assert offset == len(blob)

    def test_decode_at_offset_chains(self):
        first = encode_record(WalRecord(RecordKind.OPEN, {"txn": "G1"}))
        second = encode_record(WalRecord(RecordKind.PREPARE, {"txn": "G1"}))
        buffer = first + second
        record, offset = decode_record(buffer)
        assert record.kind is RecordKind.OPEN
        record, offset = decode_record(buffer, offset)
        assert record.kind is RecordKind.PREPARE
        assert offset == len(buffer)

    def test_torn_frame_detected(self):
        blob = encode_record(WalRecord(RecordKind.COMMIT, {"txn": "G1"}))
        for cut in (1, 4, len(blob) - 1):
            with pytest.raises(TornRecord):
                decode_record(blob[:cut])

    def test_bit_flip_detected(self):
        blob = bytearray(encode_record(WalRecord(RecordKind.COMMIT, {"x": 1})))
        blob[-1] ^= 0x40  # corrupt payload; CRC no longer matches
        with pytest.raises(CorruptRecord):
            decode_record(bytes(blob))

    def test_absurd_length_rejected(self):
        # A frame whose length field claims gigabytes must not be
        # trusted (torn/garbage tail), even if the buffer is short.
        frame = struct.pack("<II", 1 << 30, 0)
        with pytest.raises((TornRecord, CorruptRecord)):
            decode_record(frame + b"junk")

    def test_describe_mentions_kind(self):
        record = WalRecord(RecordKind.PREPARE, {"txn": "G7"})
        assert "prepare" in record.describe()
        assert "G7" in record.describe()


class TestSegments:
    def test_name_index_roundtrip(self):
        assert segment_name(3) == "wal-00000003.seg"
        assert segment_index(segment_name(42)) == 42
        assert segment_index("not-a-segment.txt") is None

    def test_list_segments_sorted(self, tmp_path):
        for index in (3, 1, 2):
            (tmp_path / segment_name(index)).write_bytes(encode_segment_header())
        (tmp_path / "unrelated.log").write_bytes(b"x")
        assert [i for i, _ in list_segments(str(tmp_path))] == [1, 2, 3]


class TestRecoveryScan:
    def fill(self, directory, n=5):
        wal = WriteAheadLog(str(directory), SyncPolicy.simulated())
        for i in range(n):
            wal.append(RecordKind.OPEN, {"txn": f"G{i}"}, force=True)
        wal.close()
        return os.path.join(str(directory), segment_name(1))

    def test_clean_scan(self, tmp_path):
        self.fill(tmp_path)
        report = scan_wal(str(tmp_path))
        assert report.clean
        assert report.total_records == 5
        assert [r.body["txn"] for r in report.records] == [
            f"G{i}" for i in range(5)
        ]

    def test_torn_tail_truncated(self, tmp_path):
        path = self.fill(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)  # tear the final record
        report = scan_wal(str(tmp_path))
        assert not report.clean
        assert report.total_records == 4  # the torn record is dropped
        repaired = truncate_damage(report)
        assert repaired == 1
        after = scan_wal(str(tmp_path))
        assert after.clean and after.total_records == 4

    def test_crc_corruption_drops_suffix(self, tmp_path):
        path = self.fill(tmp_path)
        header = len(encode_segment_header())
        blob = bytearray(open(path, "rb").read())
        # Flip a byte inside the *second* record's payload: the first
        # record survives, everything from the damage on is dropped.
        _, first_end = decode_record(bytes(blob[header:]))
        blob[header + first_end + 12] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        report = scan_wal(str(tmp_path))
        assert not report.clean
        assert report.total_records == 1
        assert report.dropped_after_damage >= 1

    def test_segments_after_damage_ignored(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path), SyncPolicy.simulated(), segment_bytes=1
        )
        for i in range(3):  # segment_bytes=1 → one record per segment
            wal.append(RecordKind.OPEN, {"txn": f"G{i}"}, force=True)
        wal.close()
        first = os.path.join(str(tmp_path), segment_name(1))
        size = os.path.getsize(first)
        with open(first, "r+b") as handle:
            handle.truncate(size - 2)
        report = scan_wal(str(tmp_path))
        assert not report.clean
        assert report.ignored_segments  # later segments must not replay
        assert all(r.body["txn"] != "G2" for r in report.records)
        truncate_damage(report)
        assert scan_wal(str(tmp_path)).clean

    def test_bad_header_segment_rejected(self, tmp_path):
        path = tmp_path / segment_name(1)
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 4)
        report = scan_wal(str(tmp_path))
        assert not report.clean
        assert report.total_records == 0
        truncate_damage(report)
        assert not path.exists()

    def test_magic_constant_is_stable(self):
        # The on-disk format promise: never change this silently.
        assert SEGMENT_MAGIC == b"REPROWAL"


class TestWriteAheadLog:
    def test_reopen_replays_acknowledged_records(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(RecordKind.OPEN, {"txn": "G1"})
        wal.append(RecordKind.PREPARE, {"txn": "G1"}, force=True)
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        kinds = [r.kind for r in reopened.recovery.records]
        assert kinds == [RecordKind.OPEN, RecordKind.PREPARE]
        reopened.close()

    def test_rotation_at_segment_bytes(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path), SyncPolicy.simulated(), segment_bytes=200
        )
        for i in range(20):
            wal.append(RecordKind.OPEN, {"txn": f"G{i}", "pad": "x" * 40})
        assert len(wal.segment_paths()) > 1
        wal.close()
        report = scan_wal(str(tmp_path))
        assert report.clean and report.total_records == 20

    def test_checkpoint_compacts_segments(self, tmp_path):
        wal = WriteAheadLog(
            str(tmp_path), SyncPolicy.simulated(), segment_bytes=200
        )
        for i in range(20):
            wal.append(RecordKind.OPEN, {"txn": f"G{i}", "pad": "x" * 40})
        assert len(wal.segment_paths()) > 1
        wal.checkpoint({"live": ["G19"]})
        assert len(wal.segment_paths()) == 1
        wal.append(RecordKind.COMMAND, {"txn": "G19"})
        wal.close()
        report = scan_wal(str(tmp_path))
        assert [r.kind for r in report.records] == [
            RecordKind.CHECKPOINT,
            RecordKind.COMMAND,
        ]
        assert report.records[0].body["live"] == ["G19"]

    def test_scan_replays_only_checkpoint_suffix(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), SyncPolicy.simulated())
        wal.append(RecordKind.OPEN, {"txn": "G1"})
        wal.checkpoint({"live": []})
        wal.append(RecordKind.OPEN, {"txn": "G2"})
        wal.close()
        report = scan_wal(str(tmp_path))
        kinds = [r.kind for r in report.records]
        assert kinds == [RecordKind.CHECKPOINT, RecordKind.OPEN]
        assert report.records[1].body["txn"] == "G2"

    def test_closed_wal_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.close()
        wal.close()  # idempotent
        with pytest.raises(RuntimeError):
            wal.append(RecordKind.OPEN, {"txn": "G1"})

    def test_stats_shape(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(RecordKind.OPEN, {"txn": "G1"}, force=True)
        stats = wal.stats()
        assert stats["records_appended"] == 1
        assert stats["forced_appends"] == 1
        assert stats["segments"] == 1
        wal.close()


class TestSyncPolicy:
    def forced(self, tmp_path, policy, n=10):
        wal = WriteAheadLog(str(tmp_path), policy)
        for i in range(n):
            wal.append(RecordKind.PREPARE, {"txn": f"G{i}"}, force=True)
        live = wal.fsyncs
        wal.close()
        return live, wal.fsyncs

    def test_always_fsyncs_every_force(self, tmp_path):
        live, _ = self.forced(tmp_path, SyncPolicy.always())
        assert live == 10

    def test_batched_group_commits(self, tmp_path):
        live, closed = self.forced(tmp_path, SyncPolicy.batched(4))
        assert live == 2  # 10 forces → fsync at 4 and 8
        assert closed == 3  # close() drains the pending tail

    def test_simulated_never_fsyncs(self, tmp_path):
        live, closed = self.forced(tmp_path, SyncPolicy.simulated())
        assert live == 0 and closed == 0

    def test_of_parses_names(self):
        assert SyncPolicy.of("always").batch_size == 1
        assert SyncPolicy.of("batched", 16).batch_size == 16
        assert SyncPolicy.of("simulated").batch_size == 0
        with pytest.raises(Exception):
            SyncPolicy.of("nope")

    def test_unforced_appends_survive_reopen(self, tmp_path):
        # Python-level flush on every append: even unforced records are
        # on disk for the in-process crash model (fsync is the physical
        # layer the policies meter; the tests' "crash" is the process).
        wal = WriteAheadLog(str(tmp_path), SyncPolicy.simulated())
        wal.append(RecordKind.OPEN, {"txn": "G1"})
        report = scan_wal(str(tmp_path))  # read-only while still open
        assert report.total_records == 1
        wal.close()
