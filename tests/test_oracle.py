"""The oracle itself, under test: every checker must fire.

The explorer (and the chaos/overload drills) trust
:mod:`repro.history.invariants` and the shared
:func:`~repro.sim.failures.invariant_battery` to recognise a corrupted
run.  A silent checker would turn the whole search into a green-wash,
so each one gets a hand-crafted violating input here — and the
structured :class:`~repro.history.invariants.Violation` reports are
checked for the context (transaction ids, per-site outcomes) the
shrunk-repro files carry.
"""

import types

from tests.helpers import HistoryBuilder

from repro.core.agent import AgentPhase
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.invariants import (
    Violation,
    check_atomic_commitment,
    check_correctness_invariant,
    check_history,
)
from repro.sim.failures import invariant_battery


class TestViolationStructure:
    def test_to_dict_round_trips_fields(self):
        violation = Violation(
            kind="atomicity",
            detail="T1 split-brained",
            txns=("T1",),
            sites=("a", "b"),
            context={"decision": "commit"},
        )
        data = violation.to_dict()
        assert data["kind"] == "atomicity"
        assert data["txns"] == ["T1"]
        assert data["sites"] == ["a", "b"]
        assert data["context"]["decision"] == "commit"

    def test_with_context_merges_and_preserves(self):
        violation = Violation(kind="quiesce", detail="stuck", context={"pending": 3})
        extended = violation.with_context(trace_length=40, deviations=[19])
        assert extended.context["pending"] == 3
        assert extended.context["trace_length"] == 40
        assert violation.context == {"pending": 3}  # original untouched

    def test_str_is_the_detail(self):
        assert str(Violation(kind="x", detail="the story")) == "the story"


class TestCorrectnessInvariantFires:
    def test_ci_part_one_simultaneous_conflicting_prepared(self):
        # T1 prepares at a with a write on Y, dies unilaterally (window
        # stays open), then T2 — also touching Y — prepares into it.
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "Y").p(1, "a")
        h.al(1, "a", unilateral=True)
        h.w(2, "a", "Y").p(2, "a")
        h.c(2).cl(2, "a")
        violations = check_correctness_invariant(h.history)
        assert any(v.part == 1 for v in violations)
        structured = [v for v in check_history(h.history) if v.kind == "ci.1"]
        assert structured, "check_history must surface CI.1 as a Violation"
        assert "T1" in structured[0].txns and "T2" in structured[0].txns
        assert structured[0].sites == ("a",)
        assert "item" in structured[0].context

    def test_ci_part_two_prepare_of_dead_incarnation(self):
        h = HistoryBuilder()
        h.w(1, "a", "X")
        h.al(1, "a", unilateral=True)
        h.p(1, "a")  # prepared while its incarnation is dead
        violations = check_correctness_invariant(h.history)
        assert any(v.part == 2 for v in violations)
        structured = [v for v in check_history(h.history) if v.kind == "ci.2"]
        assert structured and structured[0].txns == ("T1",)

    def test_clean_history_stays_clean(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").p(1, "a").c(1).cl(1, "a")
        h.w(2, "a", "Y").p(2, "a").c(2).cl(2, "a")
        assert check_history(h.history) == []


class TestAtomicCommitmentFires:
    def test_mixed_final_outcomes(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").w(1, "b", "Z")
        h.p(1, "a").p(1, "b").c(1)
        h.cl(1, "a")
        h.al(1, "b", unilateral=False)  # final rollback at b
        violations = check_atomic_commitment(h.history)
        assert len(violations) == 1
        v = violations[0].to_violation()
        assert v.kind == "atomicity"
        assert v.txns == ("T1",)
        assert v.context["outcomes"] == {"a": "commit", "b": "abort"}
        assert v.context["decision"] == "commit"

    def test_decision_contradicted_by_single_site(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").p(1, "a")
        h.a(1)  # global decision: abort
        h.cl(1, "a")  # ... yet a commits
        violations = check_atomic_commitment(h.history)
        assert len(violations) == 1
        assert violations[0].decision == "abort"
        assert violations[0].committed_sites == ("a",)

    def test_unilateral_abort_is_not_a_final_outcome(self):
        # Unilateral abort then resubmission then commit: clean.
        h = HistoryBuilder()
        h.w(1, "a", "X").w(1, "b", "Z")
        h.p(1, "a").p(1, "b").c(1)
        h.al(1, "a", unilateral=True)  # not final — agent resubmits
        h.w(1, "a", "X", inc=1)
        h.cl(1, "a", inc=1)
        h.cl(1, "b")
        assert check_atomic_commitment(h.history) == []


class TestInvariantBattery:
    def test_orphaned_prepared_scan_fires(self):
        system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
        try:
            agent = system.agent("a")
            agent._txns["T9"] = types.SimpleNamespace(
                txn="T9", phase=AgentPhase.PREPARED
            )
            violations = invariant_battery(system)
            orphans = [v for v in violations if v.kind == "orphaned-prepared"]
            assert len(orphans) == 1
            assert orphans[0].sites == ("a",)
            assert orphans[0].txns == ("T9",)
        finally:
            system.close()

    def test_quiet_system_is_clean(self):
        system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
        try:
            assert invariant_battery(system, include_ci=True) == []
        finally:
            system.close()
