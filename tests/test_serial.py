"""Unit tests for serial-number generation (repro.core.serial)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.ids import SerialNumber
from repro.core.serial import (
    CentralCounterSN,
    LamportSN,
    RealTimeClockSN,
    SiteClock,
    make_sn_generator,
)
from repro.kernel import EventKernel


class TestSiteClock:
    def test_reads_simulated_time(self):
        kernel = EventKernel()
        clock = SiteClock("c1")
        kernel.schedule(10.0, lambda: None)
        kernel.run()
        assert clock.read(kernel) == 10.0

    def test_offset_shifts_reading(self):
        kernel = EventKernel()
        assert SiteClock("c1", offset=-3.0).read(kernel) == -3.0

    def test_rate_skews_reading(self):
        kernel = EventKernel()
        kernel.schedule(100.0, lambda: None)
        kernel.run()
        assert SiteClock("c1", rate=0.1).read(kernel) == pytest.approx(110.0)


class TestRealTimeClockSN:
    def make(self, offsets=None):
        kernel = EventKernel()
        offsets = offsets or {}
        clocks = {
            site: SiteClock(site, offset=offsets.get(site, 0.0))
            for site in ("c1", "c2")
        }
        return kernel, RealTimeClockSN(kernel, clocks)

    def test_sn_carries_clock_site_seq(self):
        kernel, gen = self.make()
        sn = gen.generate("c1")
        assert sn == SerialNumber(0.0, "c1", 0)

    def test_same_instant_same_site_unique_by_seq(self):
        _kernel, gen = self.make()
        first = gen.generate("c1")
        second = gen.generate("c1")
        assert first < second

    def test_same_instant_distinct_sites_ordered_by_site(self):
        _kernel, gen = self.make()
        assert gen.generate("c1") < gen.generate("c2")

    def test_drift_reorders_but_stays_unique(self):
        kernel, gen = self.make(offsets={"c1": +50.0})
        early_sn_from_drifted = gen.generate("c1")
        kernel.schedule(10.0, lambda: None)
        kernel.run()
        later_sn = gen.generate("c2")
        # c1's clock runs 50 ahead: its earlier commit gets a BIGGER sn.
        assert later_sn < early_sn_from_drifted

    def test_unknown_site_rejected(self):
        _kernel, gen = self.make()
        with pytest.raises(ConfigError):
            gen.generate("nope")

    def test_add_site(self):
        kernel, gen = self.make()
        gen.add_site(SiteClock("c9", offset=1.0))
        assert gen.generate("c9").clock == 1.0


class TestCentralCounterSN:
    def test_strictly_increasing_across_sites(self):
        gen = CentralCounterSN()
        sns = [gen.generate(site) for site in ("c1", "c2", "c1")]
        assert sns == sorted(sns)
        assert len(set(sns)) == 3

    def test_site_field_is_central(self):
        assert CentralCounterSN().generate("c1").site == "central"


class TestLamportSN:
    def test_monotone_per_site(self):
        gen = LamportSN()
        first = gen.generate("c1")
        second = gen.generate("c1")
        assert first < second

    def test_witness_advances_clock(self):
        gen = LamportSN()
        gen.witness("c2", SerialNumber(41.0, "c1", 0))
        sn = gen.generate("c2")
        assert sn.clock == 42.0

    def test_witness_never_rewinds(self):
        gen = LamportSN()
        gen.generate("c1")
        gen.generate("c1")
        gen.witness("c1", SerialNumber(1.0, "c9", 0))
        assert gen.generate("c1").clock == 3.0

    def test_base_witness_is_noop_for_other_generators(self):
        gen = CentralCounterSN()
        gen.witness("c1", SerialNumber(99.0, "x", 0))  # must not raise
        assert gen.generate("c1").clock == 1.0


class TestFactory:
    def test_kinds(self):
        kernel = EventKernel()
        assert isinstance(
            make_sn_generator("clock", kernel, {"c1": SiteClock("c1")}),
            RealTimeClockSN,
        )
        assert isinstance(make_sn_generator("counter", kernel), CentralCounterSN)
        assert isinstance(make_sn_generator("lamport", kernel), LamportSN)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_sn_generator("sundial", EventKernel())
