"""Tests for the random workload generator (repro.workload.generator)."""

import pytest

from repro.common.errors import ConfigError
from repro.ldbs.commands import ReadItem, ScanTable, UpdateItem
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_bad_ops_range(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(ops_min=3, ops_max=2)

    def test_bad_sites_range(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(sites_min=2, sites_max=1)

    def test_sites_max_bounded_by_sites(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(sites=("a",), sites_max=2)

    def test_update_fraction_bounds(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(update_fraction=1.5)

    def test_hot_keys_bounded(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(keys_per_site=4, hot_keys=5)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        config = WorkloadConfig(n_global=20, n_local=5, seed=7)
        first = WorkloadGenerator(config).generate()
        second = WorkloadGenerator(config).generate()
        assert [(g.at, g.spec) for g in first.globals_] == [
            (g.at, g.spec) for g in second.globals_
        ]
        assert first.locals_ == second.locals_

    def test_different_seed_different_schedule(self):
        base = WorkloadConfig(n_global=20, seed=1)
        other = WorkloadConfig(n_global=20, seed=2)
        first = WorkloadGenerator(base).generate()
        second = WorkloadGenerator(other).generate()
        assert [g.spec for g in first.globals_] != [g.spec for g in second.globals_]


class TestShape:
    def test_counts(self):
        config = WorkloadConfig(n_global=15, n_local=6, seed=3)
        schedule = WorkloadGenerator(config).generate()
        assert schedule.n_global == 15
        assert schedule.n_local == 6

    def test_arrival_times_increase(self):
        schedule = WorkloadGenerator(WorkloadConfig(n_global=30, seed=3)).generate()
        times = [g.at for g in schedule.globals_]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_sites_respect_bounds(self):
        config = WorkloadConfig(
            sites=("a", "b", "c"), sites_min=2, sites_max=3, n_global=30, seed=4
        )
        schedule = WorkloadGenerator(config).generate()
        for entry in schedule.globals_:
            assert 2 <= len(entry.spec.sites) <= 3

    def test_every_chosen_site_is_visited(self):
        config = WorkloadConfig(sites_min=2, sites_max=2, n_global=30, seed=5)
        schedule = WorkloadGenerator(config).generate()
        for entry in schedule.globals_:
            visited = {site for site, _cmd in entry.spec.steps}
            assert visited == set(entry.spec.sites)

    def test_read_only_workload(self):
        config = WorkloadConfig(update_fraction=0.0, n_global=20, seed=6)
        schedule = WorkloadGenerator(config).generate()
        for entry in schedule.globals_:
            for _site, command in entry.spec.steps:
                assert isinstance(command, ReadItem)

    def test_update_only_workload(self):
        config = WorkloadConfig(update_fraction=1.0, n_global=20, seed=6)
        schedule = WorkloadGenerator(config).generate()
        for entry in schedule.globals_:
            for _site, command in entry.spec.steps:
                assert isinstance(command, UpdateItem)

    def test_scan_fraction_produces_scans(self):
        config = WorkloadConfig(scan_fraction=1.0, n_global=10, seed=6)
        schedule = WorkloadGenerator(config).generate()
        commands = [
            command
            for entry in schedule.globals_
            for _site, command in entry.spec.steps
        ]
        assert all(isinstance(c, ScanTable) for c in commands)

    def test_initial_data_covers_all_sites(self):
        config = WorkloadConfig(sites=("a", "b"), keys_per_site=8)
        schedule = WorkloadGenerator(config).generate()
        assert set(schedule.initial_data) == {"a", "b"}
        assert len(schedule.initial_data["a"]["t"]) == 8

    def test_hot_keys_attract_accesses(self):
        config = WorkloadConfig(
            n_global=200,
            keys_per_site=100,
            hot_keys=2,
            hot_access_fraction=0.8,
            seed=9,
        )
        schedule = WorkloadGenerator(config).generate()
        keys = [
            command.key
            for entry in schedule.globals_
            for _site, command in entry.spec.steps
            if hasattr(command, "key")
        ]
        hot = sum(1 for k in keys if k < 2)
        assert hot / len(keys) > 0.6

    def test_local_txns_have_home_sites(self):
        config = WorkloadConfig(n_local=10, seed=2)
        schedule = WorkloadGenerator(config).generate()
        for entry in schedule.locals_:
            assert entry.site in config.sites
            assert len(entry.commands) == config.local_ops
