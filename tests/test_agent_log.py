"""Unit tests for the Agent log (repro.core.agent_log)."""

import pytest

from repro.common.errors import SimulationError
from repro.common.ids import SerialNumber, global_txn
from repro.core.agent_log import AgentLog
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem


@pytest.fixture
def log():
    return AgentLog("a")


class TestEntries:
    def test_open_and_lookup(self, log):
        entry = log.open(global_txn(1))
        assert entry.txn == global_txn(1)
        assert log.has_entry(global_txn(1))

    def test_duplicate_open_rejected(self, log):
        log.open(global_txn(1))
        with pytest.raises(SimulationError):
            log.open(global_txn(1))

    def test_missing_entry_rejected(self, log):
        with pytest.raises(SimulationError):
            log.entry(global_txn(1))

    def test_discard_then_reopen(self, log):
        log.open(global_txn(1))
        log.discard(global_txn(1))
        assert not log.has_entry(global_txn(1))
        log.open(global_txn(1))  # fine after discard

    def test_open_entries_sorted(self, log):
        log.open(global_txn(2))
        log.open(global_txn(1))
        assert log.open_entries() == [global_txn(1), global_txn(2)]


class TestCommands:
    def test_commands_replayed_in_submission_order(self, log):
        log.open(global_txn(1))
        first = ReadItem("t", "X")
        second = UpdateItem("t", "Y", AddValue(1))
        log.log_command(global_txn(1), first)
        log.log_command(global_txn(1), second)
        assert log.commands(global_txn(1)) == [first, second]

    def test_commands_returns_copy(self, log):
        log.open(global_txn(1))
        log.log_command(global_txn(1), ReadItem("t", "X"))
        replay = log.commands(global_txn(1))
        replay.clear()
        assert len(log.commands(global_txn(1))) == 1


class TestRecords:
    def test_prepare_record_is_forced(self, log):
        log.open(global_txn(1))
        sn = SerialNumber(5.0, "c1", 0)
        log.write_prepare(global_txn(1), sn, time=10.0)
        entry = log.entry(global_txn(1))
        assert entry.prepared
        assert entry.prepare_sn == sn
        assert log.force_writes == 1

    def test_double_prepare_rejected(self, log):
        log.open(global_txn(1))
        log.write_prepare(global_txn(1), None, time=1.0)
        with pytest.raises(SimulationError):
            log.write_prepare(global_txn(1), None, time=2.0)

    def test_commit_record(self, log):
        log.open(global_txn(1))
        log.write_commit(global_txn(1), time=20.0)
        assert log.entry(global_txn(1)).committed
        assert log.force_writes == 1

    def test_double_commit_record_rejected(self, log):
        log.open(global_txn(1))
        log.write_commit(global_txn(1), time=1.0)
        with pytest.raises(SimulationError):
            log.write_commit(global_txn(1), time=2.0)
