"""Tests for execution-tree reconstruction (repro.history.trees)."""

import pytest

from repro.common.errors import HistoryError
from repro.common.ids import global_txn, local_txn
from repro.history.trees import execution_tree, render_figure, render_tree
from repro.workload.scenarios import run_h1

from tests.helpers import HistoryBuilder


class TestStructure:
    def make_committed(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "Y").w(1, "b", "Z")
        h.p(1, "a").p(1, "b").c(1).cl(1, "a").cl(1, "b")
        return h.history

    def test_root_carries_decision(self):
        tree = execution_tree(self.make_committed(), global_txn(1))
        assert "C_1" in tree.label

    def test_one_agent_node_per_site(self):
        tree = execution_tree(self.make_committed(), global_txn(1))
        assert len(tree.children) == 2
        assert "P^a_1" in tree.children[0].label
        assert "P^b_1" in tree.children[1].label

    def test_leaves_list_ops_and_termination(self):
        tree = execution_tree(self.make_committed(), global_txn(1))
        leaf_a = tree.children[0].children[0]
        assert "R10" in leaf_a.label and "W10" in leaf_a.label
        assert "C^a_10" in leaf_a.label

    def test_resubmission_adds_a_leaf(self):
        """The H1 shape of the paper's Fig. 2: the aborted incarnation
        and the resubmitted one hang under the same 2PCA node."""
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).al(1, "a", inc=0)
        h.r(1, "a", "X", inc=1).cl(1, "a", inc=1)
        tree = execution_tree(h.history, global_txn(1))
        agent = tree.children[0]
        assert len(agent.children) == 2
        assert "A^a_10" in agent.children[0].label
        assert "C^a_11" in agent.children[1].label

    def test_aborted_global_tree(self):
        h = HistoryBuilder()
        h.r(2, "a", "X").a(2)
        tree = execution_tree(h.history, global_txn(2))
        assert "A_2" in tree.label

    def test_local_transaction_tree(self):
        h = HistoryBuilder()
        h.r(4, "a", "Q", local=True).cl(4, "a", local=True)
        tree = execution_tree(h.history, local_txn(4, "a"))
        assert tree.label == "L4"
        assert len(tree.children) == 1
        assert "C^a_4" in tree.children[0].label

    def test_unknown_txn_rejected(self):
        h = HistoryBuilder()
        with pytest.raises(HistoryError):
            execution_tree(h.history, global_txn(9))

    def test_size_and_walk(self):
        tree = execution_tree(self.make_committed(), global_txn(1))
        assert tree.size == 1 + 2 + 2  # root + 2 agents + 2 leaves


class TestRendering:
    def test_render_tree_ascii(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).cl(1, "a")
        text = render_tree(execution_tree(h.history, global_txn(1)))
        lines = text.splitlines()
        assert lines[0].startswith("T1")
        assert any(line.startswith("|-- ") or line.startswith("`-- ")
                   for line in lines[1:])

    def test_render_figure_multiple_txns(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1).cl(1, "a")
        h.r(4, "a", "Q", local=True).cl(4, "a", local=True)
        text = render_figure(h.history)
        assert "T1" in text and "L4" in text

    def test_h1_tree_matches_paper_fig2_shape(self):
        """The live H1 run regenerates Fig. 2's T1: prepared at both
        sites, aborted and resubmitted at site a, committed everywhere."""
        result = run_h1("naive")
        text = render_tree(
            execution_tree(result.system.history, global_txn(1))
        )
        assert "P^a_1" in text and "P^b_1" in text
        assert "A^a_10" in text          # the unilateral abort
        assert "C^a_11" in text          # the resubmitted incarnation
        assert "C^b_10" in text
