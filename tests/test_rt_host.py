"""ProtocolHost + SessionLayer restart resynchronisation (regression).

The satellite promise under test: when a recovered peer re-registers
under the runtime adapter — detected by a boot-id change in its HELLO —
the surviving host bumps the session epoch towards that peer **exactly
once** per restart (however many connections carry the new boot id),
re-delivers the pending window exactly once, and never double-acks.
Also pins the ``Network.register(replace=)`` / ``note_endpoint_down``
idempotency promises the transport duck-types.
"""

import asyncio

import pytest

from repro.common.errors import ConfigError
from repro.common.ids import global_txn
from repro.kernel.events import EventKernel
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network
from repro.net.reliable import ReliableConfig, SessionLayer
from repro.rt.host import ProtocolHost
from repro.rt.wire import TcpTransport

FAST = ReliableConfig(rto=0.2, backoff=2.0, max_rto=1.0, jitter=0.0, max_retries=200)


def _msg(payload: str) -> Message:
    return Message(
        MsgType.COMMAND,
        src="ep:a",
        dst="ep:b",
        txn=global_txn(1),
        payload=payload,
    )


async def _wait_for(cond, timeout: float = 10.0, what: str = "condition"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not cond():
        if loop.time() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.02)


def test_restart_bumps_epoch_exactly_once_and_never_double_delivers():
    async def scenario():
        a = ProtocolHost("a", reliable=FAST, boot_id="boot-a")
        await a.start()
        a.transport.register("ep:a", lambda m: None)

        b = ProtocolHost("b", reliable=FAST, boot_id="boot-b1")
        bhost, bport = await b.start()
        got_b1 = []
        b.transport.register("ep:b", lambda m: got_b1.append(m.payload))
        a.add_peer("b", bhost, bport, ["ep:b"])
        b.add_peer("a", *a.bound, ["ep:a"])

        # Establish the channel: one message delivered and acked.
        a.transport.send(_msg("m1"))
        await _wait_for(lambda: got_b1 == ["m1"], what="first delivery")
        state = a.session._send_states[("ep:a", "ep:b")]
        await _wait_for(lambda: not state.unacked, what="first ack")
        assert state.epoch == 0
        await _wait_for(
            lambda: "b" in a._peer_boots, what="b's hello reaching a"
        )

        # SIGKILL stand-in: the first incarnation vanishes mid-window.
        await b.close()
        a.transport.send(_msg("m2"))
        a.transport.send(_msg("m3"))

        # The successor binds the same port under a *new* boot id.
        b2 = ProtocolHost("b", reliable=FAST, boot_id="boot-b2")
        await b2.start(bhost, bport)
        got_b2 = []
        b2.transport.register("ep:b", lambda m: got_b2.append(m.payload))
        b2.add_peer("a", *a.bound, ["ep:a"])

        await _wait_for(
            lambda: got_b2 == ["m2", "m3"], what="window redelivery"
        )
        # Epoch bumped exactly once for the restart, never again for
        # the extra connections that carry the same new boot id.
        assert a.peer_resets == 1
        assert a.session.session_resets == 1
        assert state.epoch == 1

        # A fresh connection from the same incarnation (b2 dialling a
        # to say something) re-announces boot-b2: still exactly one.
        b2.transport.send(
            Message(
                MsgType.COMMAND_RESULT,
                src="ep:b",
                dst="ep:a",
                txn=global_txn(1),
                payload="hi",
            )
        )
        await _wait_for(
            lambda: a._peer_boots.get("b") == "boot-b2",
            what="b2's hello reaching a",
        )
        await asyncio.sleep(0.2)
        assert a.peer_resets == 1
        assert state.epoch == 1

        # The re-stamped window drains: no eternal retransmission, and
        # the successor saw each pending message exactly once.
        await _wait_for(lambda: not state.unacked, what="window drain")
        assert got_b2 == ["m2", "m3"]
        assert got_b1 == ["m1"]

        await a.close()
        await b2.close()

    asyncio.run(scenario())


def test_reset_peer_restamps_pending_window_under_new_epoch():
    """Session-layer unit of the same promise, on the sim kernel."""
    kernel = EventKernel()
    network = Network(kernel, latency=LatencyModel(base=0.01))
    session = SessionLayer(kernel, network, ReliableConfig(jitter=0.0))
    received = []
    session.register("ep:a", lambda m: None)
    session.register("ep:b", lambda m: received.append(m.payload))

    session.send(_msg("m1"))
    kernel.run(until=1.0)
    assert received == ["m1"]

    # The process behind ep:b dies: deliveries black-hole un-acked.
    session.note_endpoint_down("ep:b")
    session.send(_msg("m2"))
    session.send(_msg("m3"))
    kernel.run(until=2.0)
    assert received == ["m1"]
    state = session._send_states[("ep:a", "ep:b")]
    assert set(state.unacked) == {1, 2}

    # Restart detected: resynchronise exactly once.
    session.note_endpoint_up("ep:b")
    assert session.reset_peer("ep:b") == 1
    assert state.epoch == 1
    assert list(state.unacked) == [0, 1]  # re-stamped from seq 0
    kernel.run(until=3.0)
    assert received == ["m1", "m2", "m3"]
    assert not state.unacked
    assert session.session_resets == 1

    # Idempotent bookkeeping: nothing pending → nothing retransmitted,
    # but the channel still exists and bumps cleanly if called again.
    before = session.retransmits
    assert session.reset_peer("ep:b") == 1
    assert session.retransmits == before
    kernel.run(until=4.0)
    assert received == ["m1", "m2", "m3"]


def test_reset_peer_unknown_address_is_noop():
    kernel = EventKernel()
    session = SessionLayer(
        kernel, Network(kernel, latency=LatencyModel(base=0.01)), ReliableConfig(jitter=0.0)
    )
    assert session.reset_peer("ep:ghost") == 0
    assert session.session_resets == 0


def test_transport_register_replace_matches_network_contract():
    kernel = EventKernel()
    wire = TcpTransport("t", kernel)
    wire.register("ep:x", lambda m: None)
    with pytest.raises(ConfigError):
        wire.register("ep:x", lambda m: None)
    # A recovered process re-binding its own endpoint is idempotent.
    wire.register("ep:x", lambda m: None, replace=True)
    wire.register("ep:x", lambda m: None, replace=True)

    # note_endpoint_down/up are idempotent too (Network promise).
    wire.note_endpoint_down("ep:x")
    wire.note_endpoint_down("ep:x")
    wire.note_endpoint_up("ep:x")
    wire.note_endpoint_up("ep:x")


def test_transport_loopback_respects_down_endpoints():
    kernel = EventKernel()
    wire = TcpTransport("t", kernel)
    got = []
    wire.register("ep:a", lambda m: None)
    wire.register("ep:b", lambda m: got.append(m.payload))
    wire.note_endpoint_down("ep:b")
    wire.send(_msg("dropped"))
    kernel.run(until=0.1)
    assert got == []
    wire.note_endpoint_up("ep:b")
    wire.send(_msg("kept"))
    kernel.run(until=0.2)
    assert got == ["kept"]
