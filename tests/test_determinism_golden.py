"""Golden event-order fingerprints (byte-identical determinism).

The digests below were captured on the *seed revision* — before the
substrate hot-path overhaul (O(1) kernel accounting, tombstone
compaction, carrier-based timers, indexed locks, single-drain driver
loop).  Every optimization since must reproduce these runs exactly:
same operations in the same order, same outcomes, same simulated
finish time.  If one of these ever changes, an "optimization" altered
observable behaviour — that is a correctness bug, not a perf tweak.

Regenerate (only after an *intentional* semantic change) with::

    PYTHONPATH=src python - <<'EOF'
    from tests.fingerprint_util import fingerprint, run_seeded_workload
    for seed, failures, method in [(0, 0.0, "2cm"), (7, 0.0, "2cm"),
                                   (13, 0.15, "2cm"), (42, 0.3, "2cm"),
                                   (3, 0.1, "cgm"), (5, 0.1, "naive")]:
        fp = fingerprint(run_seeded_workload(seed, failures=failures, method=method))
        print(f"({seed}, {failures}, {method!r}): {fp}")
    EOF
"""

import pytest

from tests.fingerprint_util import fingerprint, run_seeded_workload

GOLDEN = {
    (0, 0.0, "2cm"): "f9bbfd8388daa01d6911459d60bcb6a85548c4b6b38cb522b164488817bc5283",
    (7, 0.0, "2cm"): "9fd22dd3f0e36e50ebb1299d6d576319f55451f3126fe19990df2eb77e07982a",
    (13, 0.15, "2cm"): "82b01734dbac082ef00e18f15902d11448054bb21806f3328070fafab296e7d3",
    (42, 0.3, "2cm"): "20d85a4588e9d402e4204709bddfb4ee0a141d8f67e92fe0f845e5a42530865e",
    (3, 0.1, "cgm"): "bf9a1c516ae9f3e03bf58a7856ad40f07d9bb7496bb923c9e4b34bee9156726f",
    (5, 0.1, "naive"): "c4a80e2f59666f7dc73259b20c05ede334c69114a6cd4283cb49c5f7de3e0526",
}


@pytest.mark.parametrize("seed,failures,method", sorted(GOLDEN))
def test_matches_seed_revision_fingerprint(seed, failures, method):
    result = run_seeded_workload(seed, failures=failures, method=method)
    assert fingerprint(result) == GOLDEN[(seed, failures, method)]


def test_back_to_back_runs_are_identical():
    a = fingerprint(run_seeded_workload(11, failures=0.2))
    b = fingerprint(run_seeded_workload(11, failures=0.2))
    assert a == b


def test_different_seeds_diverge():
    assert fingerprint(run_seeded_workload(1)) != fingerprint(run_seeded_workload(2))
