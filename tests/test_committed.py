"""Unit tests for the committed projection C(H) (repro.history.committed)."""

from repro.common.ids import global_txn, local_txn
from repro.history.committed import committed_projection
from repro.history.model import OpKind

from tests.helpers import HistoryBuilder


class TestInclusion:
    def test_committed_complete_global_included(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1).cl(1, "a")
        proj = committed_projection(h.history)
        assert proj.global_txns == frozenset({global_txn(1)})
        assert len(proj.ops) == 3

    def test_globally_aborted_excluded(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1).cl(1, "a")
        h.r(2, "a", "Y").a(2)
        proj = committed_projection(h.history)
        assert global_txn(2) not in proj.txns
        assert all(op.txn != global_txn(2) for op in proj.ops)

    def test_incomplete_global_excluded(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "b", "Z").c(1).cl(1, "a")  # b never committed
        proj = committed_projection(h.history)
        assert proj.global_txns == frozenset()

    def test_committed_local_included(self):
        h = HistoryBuilder()
        h.r(4, "a", "Q", local=True).cl(4, "a", local=True)
        proj = committed_projection(h.history)
        assert proj.local_txns == frozenset({local_txn(4, "a")})

    def test_uncommitted_local_excluded(self):
        h = HistoryBuilder()
        h.r(4, "a", "Q", local=True).al(4, "a", local=True, unilateral=False)
        proj = committed_projection(h.history)
        assert proj.txns == set()


class TestPaperTwist:
    """The redefinition: unilaterally aborted subtransactions of
    committed complete transactions stay inside C(H)."""

    def test_aborted_incarnation_ops_included(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).al(1, "a", inc=0)
        h.r(1, "a", "X", inc=1).cl(1, "a", inc=1)
        proj = committed_projection(h.history)
        kinds = [op.kind for op in proj.ops]
        assert OpKind.LOCAL_ABORT in kinds
        reads = [op for op in proj.ops if op.kind is OpKind.READ]
        assert {op.subtxn.incarnation for op in reads} == {0, 1}

    def test_projection_render_matches_paper_shape(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).al(1, "a", inc=0)
        h.r(1, "a", "X", inc=1).cl(1, "a", inc=1)
        text = committed_projection(h.history).render()
        assert "A^a_10" in text
        assert "R11[t.'X'^a]" in text


class TestHelpers:
    def test_data_ops_filters(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "Y").p(1, "a").c(1).cl(1, "a")
        proj = committed_projection(h.history)
        assert len(proj.data_ops()) == 2

    def test_txns_union(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1).cl(1, "a")
        h.r(4, "a", "Q", local=True).cl(4, "a", local=True)
        proj = committed_projection(h.history)
        assert proj.txns == {global_txn(1), local_txn(4, "a")}
