"""Golden histories: byte-exact renderings of the paper's scenarios.

These freeze the precise interleavings the scenario scripts produce, as
a drift alarm: any change to the kernel's ordering, the network's FIFO
arithmetic, the LTM's locking plan or the agents' protocol shows up
here first — deliberately brittle, and cheap to regenerate (print
``result.system.history.render()``) when a change is intentional.

Compare with the paper's own strings (Sec. 3 and 5.1):

    H1: R10[Xa] R10[Ya] W10[Ya] R10[Zb] W10[Zb] Pa1 Pb1 C1 Aa10 Cb10
        W20[Ya] R20[Xa] W20[Xa] R20[Zb] W20[Zb] Pa2 Pb2 Ca20 Cb20
        R11[Xa] Ca11

Ours matches up to (a) the paper's blind delete ``W20[Ya]`` rendering
as ``R20 W20`` because DELETE probes before removing, and (b) the
resubmitted ``T^a_11`` replaying its full command list (the paper's
``D(T^a_11)`` elides the update of the deleted Y; we record the probing
read).
"""

from repro.workload.scenarios import run_h1, run_h2, run_h3, run_hx

H1_NAIVE = (
    "R10[acct.'X'^a] R10[acct.'Y'^a] W10[acct.'Y'^a] R10[acct.'Z'^b] "
    "W10[acct.'Z'^b] P^b_1 P^a_1 C_1 A^a_10 C^b_10 R20[acct.'Y'^a] "
    "W20[acct.'Y'^a] R20[acct.'X'^a] W20[acct.'X'^a] R20[acct.'Z'^b] "
    "W20[acct.'Z'^b] P^a_2 P^b_2 C_2 C^a_20 C^b_20 R11[acct.'X'^a] "
    "R11[acct.'Y'^a] C^a_11"
)

H2_NAIVE = (
    "R10[acct.'X'^a] R10[acct.'Y'^a] W10[acct.'Y'^a] R10[acct.'Z'^b] "
    "W10[acct.'Z'^b] P^b_1 P^a_1 C_1 A^a_10 C^b_10 R30[acct.'Z'^b] "
    "R30[acct.'Q'^a] W30[acct.'Q'^a] P^b_3 P^a_3 C_3 C^b_30 C^a_30 "
    "R4[acct.'Q'^a] R4[acct.'Y'^a] W4[acct.'U'^a] C^a_4 R11[acct.'X'^a] "
    "R11[acct.'Y'^a] W11[acct.'Y'^a] C^a_11"
)

H3_PREPARE_ORDER = (
    "R50[acct.'P'^a] W50[acct.'P'^a] R60[acct.'R'^a] W60[acct.'R'^a] "
    "R50[acct.'S'^b] W50[acct.'S'^b] R60[acct.'U'^b] W60[acct.'U'^b] "
    "P^a_5 P^b_6 P^b_5 P^a_6 C_5 A^b_50 C_6 A^a_60 C^a_50 R7[acct.'P'^a] "
    "C^b_60 R7[acct.'R'^a] R8[acct.'U'^b] W7[acct.'V'^a] R8[acct.'S'^b] "
    "C^a_7 W8[acct.'W'^b] C^b_8 R51[acct.'S'^b] W51[acct.'S'^b] "
    "R61[acct.'R'^a] C^b_51 W61[acct.'R'^a] C^a_61"
)

HX_NOEXT = (
    "R70[acct.'S1'^s] W70[acct.'S1'^s] R70[acct.'I1'^i] W70[acct.'I1'^i] "
    "P^i_7 R80[acct.'I2'^i] W80[acct.'I2'^i] R80[acct.'S2'^s] "
    "W80[acct.'S2'^s] P^i_8 P^s_8 C_8 C^s_80 P^s_7 C_7 C^i_70 C^i_80 "
    "C^s_70"
)


class TestGoldenHistories:
    def test_h1_naive(self):
        assert run_h1("naive").system.history.render() == H1_NAIVE

    def test_h2_naive(self):
        assert run_h2("naive").system.history.render() == H2_NAIVE

    def test_h3_prepare_order(self):
        assert (
            run_h3("2cm-prepare-order").system.history.render()
            == H3_PREPARE_ORDER
        )

    def test_hx_noext(self):
        assert run_hx("2cm-noext").system.history.render() == HX_NOEXT


class TestPaperStructure:
    """Paper-facing structural facts the golden strings encode."""

    def test_h1_matches_papers_order_pattern(self):
        """The paper's H1 ordering: all of T1's data ops, both prepares,
        C_1, then A^a_10, C^b_10, then T2's full run, then T1's
        resubmission and late local commit."""
        tokens = H1_NAIVE.split()
        assert tokens.index("A^a_10") > tokens.index("C_1")
        assert tokens.index("C^b_10") > tokens.index("A^a_10")
        assert tokens.index("C^a_20") < tokens.index("R11[acct.'X'^a]")
        assert tokens[-1] == "C^a_11"

    def test_hx_matches_papers_displayed_sequence(self):
        """Sec. 5.3 displays: SN(j) P^i_j SN(k) P^i_k P^s_k C^s_k P^s_j
        C^i_j C^i_k C^s_j — our tail is exactly that."""
        tokens = HX_NOEXT.split()
        tail = [t for t in tokens if t.startswith(("P^", "C"))]
        assert tail == [
            "P^i_7",
            "P^i_8",
            "P^s_8",
            "C_8",
            "C^s_80",
            "P^s_7",
            "C_7",
            "C^i_70",
            "C^i_80",
            "C^s_70",
        ]
