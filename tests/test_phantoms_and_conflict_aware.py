"""Tests for the phantom-insert DLU extension and the conflict-aware
certification ablation (E17 material)."""

import pytest

from repro.common.errors import RefusalReason
from repro.common.ids import global_txn, local_txn
from repro.core.agent import AgentConfig
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.model import OpKind
from repro.ldbs.commands import AddValue, InsertItem, ScanTable, UpdateItem
from repro.ldbs.dlu import DLUPolicy
from repro.net.network import LatencyModel
from repro.sim.failures import inject_abort_after_global_commit
from repro.sim.metrics import audit
from repro.workload.scenarios import run_h2_indirect


def drain(system, limit=100_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending


class TestPhantomBinding:
    """DLU must cover predicate extents: a local INSERT into a table
    scanned by a prepared transaction would change the resubmitted
    decomposition (the paper's footnote-4 stability assumption)."""

    def build(self, dlu_policy=DLUPolicy.ABORT):
        system = MultidatabaseSystem(
            SystemConfig(
                sites=("a", "b"),
                method="2cm",
                dlu_policy=dlu_policy,
                latency=LatencyModel(
                    base=5.0, overrides={("coord:c1", "agent:a"): 80.0}
                ),
                agent=AgentConfig(alive_check_interval=500.0),
            )
        )
        system.load("a", "t", {1: 10, 2: 20})
        system.load("b", "t", {9: 90})
        return system

    def scan_spec(self):
        return GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("a", ScanTable("t")),
                ("b", UpdateItem("t", 9, AddValue(1))),
            ),
        )

    def test_local_insert_into_scanned_table_denied(self):
        system = self.build()
        done = system.submit(self.scan_spec())
        inject_abort_after_global_commit(system, global_txn(1), "a", delay=1.0)
        local_result = {}

        def insert_phantom(op):
            if (
                "ev" not in local_result
                and op.kind is OpKind.LOCAL_ABORT
                and op.site == "a"
                and not op.txn.is_local
            ):
                local_result["ev"] = system.submit_local(
                    "a", [InsertItem("t", 3, 30)], number=4
                )

        system.history.subscribe(insert_phantom)
        drain(system)
        assert done.value.committed
        outcome = local_result["ev"].value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.DLU
        # With the phantom denied, the resubmitted scan decomposed
        # identically and the audit is clean.
        assert audit(system).ok

    def test_violate_policy_lets_phantom_distort(self):
        system = self.build(dlu_policy=DLUPolicy.VIOLATE)
        done = system.submit(self.scan_spec())
        inject_abort_after_global_commit(system, global_txn(1), "a", delay=1.0)
        local_result = {}

        def insert_phantom(op):
            if (
                "ev" not in local_result
                and op.kind is OpKind.LOCAL_ABORT
                and op.site == "a"
                and not op.txn.is_local
            ):
                local_result["ev"] = system.submit_local(
                    "a", [InsertItem("t", 3, 30)], number=4
                )

        system.history.subscribe(insert_phantom)
        drain(system)
        assert done.value.committed
        assert local_result["ev"].value.committed
        report = audit(system)
        # The resubmitted scan saw the phantom: decomposition changed.
        assert report.distortions.decomposition_changes
        assert not report.ok

    def test_unbind_releases_table_binding(self):
        system = self.build()
        done = system.submit(self.scan_spec())
        drain(system)
        assert done.value.committed
        late = system.submit_local("a", [InsertItem("t", 3, 30)], number=5)
        drain(system)
        assert late.value.committed  # nothing bound any more


class TestConflictAwareAblation:
    """The E17 story: the predicate-style (access-set) certification is
    less restrictive but cannot see indirect conflicts through local
    transactions; the paper's conflict-blind interval rule can."""

    def test_2cm_refuses_t3_and_no_local_casualties(self):
        result = run_h2_indirect("2cm")
        assert not result.outcome(3).committed
        assert result.outcome(3).reason is RefusalReason.ALIVE_INTERSECTION
        assert result.audit.ok

    def test_conflict_aware_passes_t3(self):
        result = run_h2_indirect("2cm-conflict-aware")
        # Disjoint access sets at site a ({X,Y} vs {Q}): the variant
        # sees no conflict and lets T3 through.
        assert result.outcome(3).committed

    def test_conflict_aware_converts_anomaly_into_deadlock(self):
        """With commit certification on, the indirect cycle cannot
        complete — it materializes as a deadlock whose victim is the
        bridging local transaction L4 (killed by the lock timeout)."""
        result = run_h2_indirect("2cm-conflict-aware")
        l4 = result.local_outcome(4, "a")
        assert not l4.committed
        assert l4.reason is RefusalReason.LOCK_TIMEOUT
        # Correctness survives — thanks to the commit certification
        # backstop, at the price of a local casualty the interval rule
        # never inflicts.
        assert result.audit.view_serializability.serializable is True

    def test_naive_shows_the_corruption_conflict_awareness_risks(self):
        result = run_h2_indirect("naive")
        assert result.local_outcome(4, "a").committed
        assert result.audit.view_serializability.serializable is False
        cycle = result.audit.distortions.commit_graph_cycle
        assert cycle is not None
        assert {t.label for t in cycle} == {"T1", "T3", "L4"}
