"""Unit tests for the rigorousness checker (repro.history.rigor)."""

from repro.history.rigor import check_rigorous, is_rigorous

from tests.helpers import HistoryBuilder


class TestRigorous:
    def test_serial_history_is_rigorous(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "X").cl(1, "a")
        h.r(2, "a", "X").w(2, "a", "X").cl(2, "a")
        assert is_rigorous(h.history)

    def test_termination_by_abort_also_counts(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").al(1, "a")
        h.w(2, "a", "X").cl(2, "a")
        assert is_rigorous(h.history)

    def test_concurrent_reads_are_fine(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").r(2, "a", "X").cl(1, "a").cl(2, "a")
        assert is_rigorous(h.history)

    def test_disjoint_items_are_fine(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").w(2, "a", "Y").cl(1, "a").cl(2, "a")
        assert is_rigorous(h.history)


class TestViolations:
    def test_write_after_uncommitted_read_violates(self):
        """The condition that separates rigorous from merely strict."""
        h = HistoryBuilder()
        h.r(1, "a", "X").w(2, "a", "X")
        violations = check_rigorous(h.history.ops)
        assert len(violations) == 1
        assert violations[0].first.txn.number == 1
        assert violations[0].second.txn.number == 2

    def test_write_after_uncommitted_write_violates(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").w(2, "a", "X")
        assert len(check_rigorous(h.history.ops)) == 1

    def test_read_after_uncommitted_write_violates(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").r(2, "a", "X")
        assert len(check_rigorous(h.history.ops)) == 1

    def test_violation_rendering(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").r(2, "a", "X")
        text = str(check_rigorous(h.history.ops)[0])
        assert "conflicts" in text

    def test_incarnation_granularity(self):
        """T1's aborted incarnation terminated — its ops may be
        followed by others; the *new* incarnation is a fresh txn."""
        h = HistoryBuilder()
        h.w(1, "a", "X", inc=0).al(1, "a", inc=0)
        h.w(2, "a", "X").cl(2, "a")
        h.w(1, "a", "X", inc=1).cl(1, "a", inc=1)
        assert is_rigorous(h.history)

    def test_same_incarnation_self_ops_ok(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "X").r(1, "a", "X")
        assert is_rigorous(h.history)


class TestSiteFiltering:
    def test_check_single_site(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").w(2, "a", "X")      # violation at a
        h.w(1, "b", "X").cl(1, "b")
        h.w(2, "b", "X")                     # fine at b
        assert check_rigorous(h.history.ops, site="b") == []
        assert len(check_rigorous(h.history.ops, site="a")) == 1

    def test_all_sites_by_default(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").w(2, "a", "X")
        h.w(1, "b", "Y").w(2, "b", "Y")
        assert len(check_rigorous(h.history.ops)) == 2
