"""Unit tests for the DLU bound-data guard (repro.ldbs.dlu)."""

import pytest

from repro.common.errors import DLUViolation
from repro.common.ids import DataItemId, global_txn
from repro.kernel import EventKernel
from repro.ldbs.dlu import BoundDataGuard, DLUPolicy

X = DataItemId("t", "X")
Y = DataItemId("t", "Y")


@pytest.fixture
def kernel():
    return EventKernel()


class TestBinding:
    def test_bind_and_query(self, kernel):
        guard = BoundDataGuard(kernel)
        guard.bind(global_txn(1), [X, Y])
        assert guard.is_bound(X)
        assert guard.binders(X) == {global_txn(1)}
        assert guard.bound_items() == {X, Y}

    def test_unbind_releases(self, kernel):
        guard = BoundDataGuard(kernel)
        guard.bind(global_txn(1), [X])
        guard.unbind(global_txn(1))
        assert not guard.is_bound(X)

    def test_item_bound_by_two_txns_stays_bound(self, kernel):
        guard = BoundDataGuard(kernel)
        guard.bind(global_txn(1), [X])
        guard.bind(global_txn(2), [X])
        guard.unbind(global_txn(1))
        assert guard.is_bound(X)
        guard.unbind(global_txn(2))
        assert not guard.is_bound(X)

    def test_rebinding_same_txn_idempotent(self, kernel):
        guard = BoundDataGuard(kernel)
        guard.bind(global_txn(1), [X])
        guard.bind(global_txn(1), [X, Y])
        guard.unbind(global_txn(1))
        assert guard.bound_items() == set()


class TestAbortPolicy:
    def test_unbound_item_authorized(self, kernel):
        guard = BoundDataGuard(kernel, policy=DLUPolicy.ABORT)
        event = guard.authorize_local_update(X)
        kernel.run()
        assert event.ok

    def test_bound_item_denied(self, kernel):
        guard = BoundDataGuard(kernel, policy=DLUPolicy.ABORT)
        guard.bind(global_txn(1), [X])
        event = guard.authorize_local_update(X)
        kernel.run()
        assert isinstance(event.error, DLUViolation)
        assert guard.denials == 1


class TestBlockPolicy:
    def test_waits_until_unbind(self, kernel):
        guard = BoundDataGuard(kernel, policy=DLUPolicy.BLOCK, wait_timeout=100.0)
        guard.bind(global_txn(1), [X])
        event = guard.authorize_local_update(X)
        kernel.run(until=10.0)
        assert not event.done
        guard.unbind(global_txn(1))
        kernel.run()
        assert event.ok
        assert guard.blocks == 1

    def test_timeout_denies(self, kernel):
        guard = BoundDataGuard(kernel, policy=DLUPolicy.BLOCK, wait_timeout=20.0)
        guard.bind(global_txn(1), [X])
        event = guard.authorize_local_update(X)
        kernel.run()
        assert isinstance(event.error, DLUViolation)

    def test_waiter_on_other_item_not_woken(self, kernel):
        guard = BoundDataGuard(kernel, policy=DLUPolicy.BLOCK, wait_timeout=None)
        guard.bind(global_txn(1), [X])
        guard.bind(global_txn(2), [Y])
        waiter_y = guard.authorize_local_update(Y)
        guard.unbind(global_txn(1))
        kernel.run()
        assert not waiter_y.done


class TestViolatePolicy:
    def test_bound_item_allowed_and_counted(self, kernel):
        guard = BoundDataGuard(kernel, policy=DLUPolicy.VIOLATE)
        guard.bind(global_txn(1), [X])
        event = guard.authorize_local_update(X)
        kernel.run()
        assert event.ok
        assert guard.violations_allowed == 1
