"""Tests for the statistics helpers (repro.sim.stats)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Summary, mean, percentile, stddev


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([7.0], 0.95) == 7.0

    def test_median_even(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.25) == 2.5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_bounds_property(self, samples):
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            value = percentile(samples, q)
            assert min(samples) <= value <= max(samples)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    def test_monotone_in_q(self, samples):
        values = [percentile(samples, q) for q in (0.1, 0.5, 0.9)]
        assert values == sorted(values)


class TestMoments:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_stddev_constant_series(self):
        assert stddev([4.0, 4.0, 4.0]) == 0.0

    def test_stddev_known_value(self):
        assert stddev([2.0, 4.0]) == pytest.approx(2.0 ** 0.5)

    def test_stddev_degenerate(self):
        assert stddev([1.0]) == 0.0
        assert stddev([]) == 0.0


class TestSummary:
    def test_of_samples(self):
        summary = Summary.of([1.0, 2.0, 3.0, 4.0, 100.0])
        assert summary.n == 5
        assert summary.max == 100.0
        assert summary.p50 == 3.0
        assert summary.mean == 22.0

    def test_of_empty(self):
        summary = Summary.of([])
        assert summary.n == 0
        assert summary.mean == 0.0
        assert summary.max == 0.0

    def test_str_contains_fields(self):
        text = str(Summary.of([1.0, 2.0]))
        assert "p95=" in text and "mean=" in text
