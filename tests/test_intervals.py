"""Unit tests for alive time intervals (repro.core.intervals)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.intervals import AliveInterval


class TestConstruction:
    def test_valid_interval(self):
        interval = AliveInterval(1.0, 5.0)
        assert interval.length == 4.0

    def test_degenerate_interval_allowed(self):
        assert AliveInterval(3.0, 3.0).length == 0.0

    def test_reversed_interval_rejected(self):
        with pytest.raises(ConfigError):
            AliveInterval(5.0, 1.0)

    def test_instant(self):
        interval = AliveInterval.instant(7.0)
        assert (interval.start, interval.end) == (7.0, 7.0)


class TestIntersection:
    """The alive time intersection rule of Sec. 4.2."""

    def test_overlap(self):
        assert AliveInterval(0, 10).intersects(AliveInterval(5, 15))

    def test_containment(self):
        assert AliveInterval(0, 10).intersects(AliveInterval(3, 4))

    def test_disjoint(self):
        assert not AliveInterval(0, 10).intersects(AliveInterval(11, 20))

    def test_touching_endpoints_intersect(self):
        """Closed intervals: a shared instant counts — both were alive
        at that moment, which is all the Conflict Detection Basis needs."""
        assert AliveInterval(0, 10).intersects(AliveInterval(10, 20))

    def test_symmetry(self):
        a, b = AliveInterval(0, 5), AliveInterval(6, 9)
        assert a.intersects(b) == b.intersects(a)

    def test_degenerate_intersections(self):
        point = AliveInterval.instant(5.0)
        assert point.intersects(AliveInterval(0, 10))
        assert not point.intersects(AliveInterval(6, 10))


class TestExtension:
    def test_extends_forward(self):
        interval = AliveInterval(1.0, 2.0).extended_to(9.0)
        assert interval == AliveInterval(1.0, 9.0)

    def test_never_shrinks(self):
        interval = AliveInterval(1.0, 5.0).extended_to(3.0)
        assert interval == AliveInterval(1.0, 5.0)

    def test_is_a_new_value(self):
        original = AliveInterval(1.0, 2.0)
        original.extended_to(9.0)
        assert original.end == 2.0

    def test_str(self):
        assert str(AliveInterval(1.0, 2.5)) == "[1, 2.5]"
