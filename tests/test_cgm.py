"""Tests for the Commit Graph Method baseline (repro.baselines.cgm)."""

import pytest

from repro.common.errors import RefusalReason, TransactionAborted
from repro.common.ids import global_txn
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.baselines.cgm import CGMScheduler
from repro.kernel import EventKernel
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.sim.metrics import audit


class TestCommitGraphAdmission:
    def test_disjoint_site_sets_admitted(self):
        scheduler = CGMScheduler(EventKernel())
        first = scheduler.before_prepare(scheduler._kernel, global_txn(1), ["a", "b"])
        second = scheduler.before_prepare(scheduler._kernel, global_txn(2), ["c", "d"])
        assert first.done and second.done

    def test_shared_single_site_admitted(self):
        """One shared site is a path, not a loop."""
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel)
        scheduler.before_prepare(kernel, global_txn(1), ["a", "b"])
        second = scheduler.before_prepare(kernel, global_txn(2), ["b", "c"])
        assert second.done

    def test_two_shared_sites_blocked(self):
        """Both transactions span {a, b}: admitting the second closes a
        loop through the two site nodes — the paper's restrictiveness
        argument at site granularity."""
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel, timeout=50.0)
        scheduler.before_prepare(kernel, global_txn(1), ["a", "b"])
        second = scheduler.before_prepare(kernel, global_txn(2), ["a", "b"])
        assert not second.done
        assert scheduler.waiting_admissions() == 1

    def test_blocked_admission_proceeds_after_edges_removed(self):
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel, timeout=500.0)
        scheduler.before_prepare(kernel, global_txn(1), ["a", "b"])
        second = scheduler.before_prepare(kernel, global_txn(2), ["a", "b"])
        scheduler.note_finalized(global_txn(1), "a")
        scheduler.note_finalized(global_txn(1), "b")
        assert second.done

    def test_blocked_admission_times_out(self):
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel, timeout=30.0)
        scheduler.before_prepare(kernel, global_txn(1), ["a", "b"])
        second = scheduler.before_prepare(kernel, global_txn(2), ["a", "b"])
        kernel.run()
        assert isinstance(second.error, TransactionAborted)
        assert second.error.reason is RefusalReason.COMMIT_GRAPH_CYCLE
        assert scheduler.admission_timeouts == 1

    def test_indirect_loop_via_chain_blocked(self):
        """T1 over {a,b}, T2 over {b,c}: components {a,b,c} merged; T3
        over {a,c} would close a loop through the chain."""
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel, timeout=10.0)
        scheduler.before_prepare(kernel, global_txn(1), ["a", "b"])
        scheduler.before_prepare(kernel, global_txn(2), ["b", "c"])
        third = scheduler.before_prepare(kernel, global_txn(3), ["a", "c"])
        assert not third.done

    def test_single_site_txn_never_blocked(self):
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel)
        scheduler.before_prepare(kernel, global_txn(1), ["a", "b"])
        single = scheduler.before_prepare(kernel, global_txn(2), ["a"])
        assert single.done

    def test_on_end_releases_everything(self):
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel, timeout=500.0)
        scheduler.before_prepare(kernel, global_txn(1), ["a", "b"])
        second = scheduler.before_prepare(kernel, global_txn(2), ["a", "b"])
        scheduler.on_end(global_txn(1), committed=False)
        assert second.done
        assert scheduler.edges().get(global_txn(1)) is None


class TestGlobalLocks:
    def test_read_then_write_conflict_blocks(self):
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel, timeout=1000.0)
        reader = scheduler.before_command(
            kernel, global_txn(1), "a", ReadItem("t", "X")
        )
        writer = scheduler.before_command(
            kernel, global_txn(2), "a", UpdateItem("t", "X", AddValue(1))
        )
        kernel.run(until=10.0)
        assert reader.done
        assert not writer.done  # S vs X on ("gtable", ("a", "t"))
        scheduler.on_end(global_txn(1), committed=True)
        kernel.run(until=20.0)
        assert writer.done

    def test_different_tables_do_not_conflict(self):
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel)
        first = scheduler.before_command(
            kernel, global_txn(1), "a", UpdateItem("t", "X", AddValue(1))
        )
        second = scheduler.before_command(
            kernel, global_txn(2), "a", UpdateItem("u", "X", AddValue(1))
        )
        assert first.done and second.done

    def test_same_table_different_sites_do_not_conflict(self):
        kernel = EventKernel()
        scheduler = CGMScheduler(kernel)
        first = scheduler.before_command(
            kernel, global_txn(1), "a", UpdateItem("t", "X", AddValue(1))
        )
        second = scheduler.before_command(
            kernel, global_txn(2), "b", UpdateItem("t", "X", AddValue(1))
        )
        assert first.done and second.done


class TestEndToEnd:
    def build(self):
        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), n_coordinators=2, method="cgm")
        )
        system.load("a", "t", {"P": 1, "R": 2})
        system.load("b", "t", {"S": 3, "U": 4})
        return system

    def drain(self, system, limit=100_000.0):
        while system.kernel.pending and system.kernel.now <= limit:
            system.run(max_events=50_000)
        assert not system.kernel.pending

    def test_single_transaction_commits(self):
        system = self.build()
        spec = GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("a", UpdateItem("t", "P", AddValue(1))),
                ("b", UpdateItem("t", "S", AddValue(1))),
            ),
        )
        done = system.submit(spec)
        self.drain(system)
        assert done.value.committed
        assert audit(system).ok

    def test_concurrent_same_span_transactions_serialized(self):
        """Two transactions spanning {a, b} with disjoint data: 2CM
        commits them concurrently; CGM's site-granularity graph makes
        the second wait for the first — both commit, serialized."""
        system = self.build()
        t1 = GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("a", UpdateItem("t", "P", AddValue(1))),
                ("b", UpdateItem("t", "S", AddValue(1))),
            ),
            think_time=10.0,
        )
        t2 = GlobalTransactionSpec(
            txn=global_txn(2),
            steps=(
                ("a", UpdateItem("t", "R", AddValue(1))),
                ("b", UpdateItem("t", "U", AddValue(1))),
            ),
            think_time=10.0,
        )
        done1 = system.submit(t1, coordinator=0)
        done2 = system.submit(t2, coordinator=1)
        self.drain(system)
        assert done1.value.committed and done2.value.committed
        assert (
            system.scheduler.admission_waits >= 1
            or system.scheduler.global_locks.waits >= 1
        )
        assert audit(system).ok
