"""Unit tests for the Certifier decisions (repro.core.certifier)."""

import pytest

from repro.common.errors import RefusalReason, SimulationError
from repro.common.ids import SerialNumber, global_txn
from repro.core.certifier import (
    Certifier,
    CertifierConfig,
    CommitOrderPolicy,
)
from repro.core.intervals import AliveInterval


def sn(value, site="c1"):
    return SerialNumber(float(value), site, 0)


@pytest.fixture(params=["naive", "indexed"])
def engine(request):
    """Every decision test runs under both certification engines."""
    return request.param


@pytest.fixture
def certifier(engine):
    return Certifier("a", CertifierConfig(engine=engine))


class TestBasicPrepare:
    """The alive time intersection rule (Appendix B, basic part)."""

    def test_empty_table_always_passes(self, certifier):
        decision = certifier.certify_prepare(
            global_txn(1), sn(1), AliveInterval(0, 5)
        )
        assert decision.ok

    def test_intersecting_intervals_pass(self, certifier):
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        decision = certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(5, 15)
        )
        assert decision.ok

    def test_disjoint_interval_refused(self, certifier):
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        decision = certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(11, 20)
        )
        assert not decision.ok
        assert decision.reason is RefusalReason.ALIVE_INTERSECTION
        assert certifier.prepare_refusals_intersection == 1

    def test_must_intersect_every_entry(self, certifier):
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(2), AliveInterval(8, 30))
        decision = certifier.certify_prepare(
            global_txn(3), sn(3), AliveInterval(12, 20)
        )
        assert not decision.ok  # misses T1's interval

    def test_disabled_basic_accepts_disjoint(self, engine):
        certifier = Certifier(
            "a", CertifierConfig(basic_prepare=False, engine=engine)
        )
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        decision = certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(11, 20)
        )
        assert decision.ok

    def test_duplicate_prepare_rejected(self, certifier):
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        with pytest.raises(SimulationError):
            certifier.certify_prepare(global_txn(1), sn(1), AliveInterval(0, 5))


class TestPrepareExtension:
    """Refuse a PREPARE whose SN is below an already-committed one."""

    def commit_one(self, certifier, number, value):
        certifier.insert(global_txn(number), sn(value), AliveInterval(0, 10))
        certifier.record_local_commit(global_txn(number))
        certifier.remove(global_txn(number))

    def test_out_of_order_prepare_refused(self, certifier):
        self.commit_one(certifier, 8, 50)
        decision = certifier.certify_prepare(
            global_txn(7), sn(40), AliveInterval(0, 100)
        )
        assert not decision.ok
        assert decision.reason is RefusalReason.PREPARE_OUT_OF_ORDER
        assert certifier.prepare_refusals_extension == 1

    def test_in_order_prepare_passes(self, certifier):
        self.commit_one(certifier, 7, 40)
        decision = certifier.certify_prepare(
            global_txn(8), sn(50), AliveInterval(0, 100)
        )
        assert decision.ok

    def test_tracks_maximum_committed(self, certifier):
        self.commit_one(certifier, 1, 60)
        self.commit_one(certifier, 2, 30)  # smaller: must not lower the max
        decision = certifier.certify_prepare(
            global_txn(3), sn(45), AliveInterval(0, 100)
        )
        assert not decision.ok

    def test_disabled_extension_accepts_out_of_order(self, engine):
        certifier = Certifier(
            "a", CertifierConfig(prepare_extension=False, engine=engine)
        )
        certifier.insert(global_txn(8), sn(50), AliveInterval(0, 10))
        certifier.record_local_commit(global_txn(8))
        certifier.remove(global_txn(8))
        decision = certifier.certify_prepare(
            global_txn(7), sn(40), AliveInterval(0, 100)
        )
        assert decision.ok

    def test_no_sn_skips_extension(self, certifier):
        self.commit_one(certifier, 8, 50)
        decision = certifier.certify_prepare(
            global_txn(7), None, AliveInterval(0, 100)
        )
        assert decision.ok


class TestCommitCertification:
    """All other table entries must carry a bigger serial number."""

    def test_smallest_sn_commits(self, certifier):
        certifier.insert(global_txn(1), sn(10), AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(20), AliveInterval(0, 10))
        assert certifier.certify_commit(global_txn(1)).ok

    def test_bigger_sn_waits(self, certifier):
        certifier.insert(global_txn(1), sn(10), AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(20), AliveInterval(0, 10))
        decision = certifier.certify_commit(global_txn(2))
        assert not decision.ok
        assert certifier.commit_delays == 1

    def test_unblocked_after_removal(self, certifier):
        certifier.insert(global_txn(1), sn(10), AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(20), AliveInterval(0, 10))
        certifier.remove(global_txn(1))
        assert certifier.certify_commit(global_txn(2)).ok

    def test_disabled_commit_cert_always_passes(self, engine):
        certifier = Certifier(
            "a", CertifierConfig(commit_certification=False, engine=engine)
        )
        certifier.insert(global_txn(1), sn(10), AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(20), AliveInterval(0, 10))
        assert certifier.certify_commit(global_txn(2)).ok

    def test_unknown_txn_rejected(self, certifier):
        with pytest.raises(SimulationError):
            certifier.certify_commit(global_txn(9))


class TestPrepareOrderPolicy:
    """The rejected alternative: commit in prepared order."""

    def make(self, engine):
        return Certifier(
            "a",
            CertifierConfig(
                prepare_extension=False,
                commit_order=CommitOrderPolicy.PREPARE_ORDER,
                engine=engine,
            ),
        )

    def test_earlier_prepared_commits_first(self, engine):
        certifier = self.make(engine)
        certifier.insert(global_txn(1), None, AliveInterval(0, 10))
        certifier.insert(global_txn(2), None, AliveInterval(0, 10))
        assert certifier.certify_commit(global_txn(1)).ok
        assert not certifier.certify_commit(global_txn(2)).ok

    def test_order_independent_of_sn(self, engine):
        certifier = self.make(engine)
        certifier.insert(global_txn(1), sn(99), AliveInterval(0, 10))
        certifier.insert(global_txn(2), sn(1), AliveInterval(0, 10))
        # T1 prepared first: it goes first despite the bigger SN.
        assert certifier.certify_commit(global_txn(1)).ok
        assert not certifier.certify_commit(global_txn(2)).ok


class TestIntervalMaintenance:
    def test_extend_interval(self, certifier):
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.extend_interval(global_txn(1), 50.0)
        assert certifier.interval_of(global_txn(1)) == AliveInterval(0, 50)

    def test_restart_interval(self, certifier):
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.restart_interval(global_txn(1), 99.0)
        assert certifier.interval_of(global_txn(1)) == AliveInterval.instant(99.0)

    def test_remove_is_idempotent(self, certifier):
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.remove(global_txn(1))
        certifier.remove(global_txn(1))
        assert not certifier.contains(global_txn(1))

    def test_introspection(self, certifier):
        certifier.insert(global_txn(2), sn(2), AliveInterval(0, 10))
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        assert certifier.prepared_txns() == [global_txn(1), global_txn(2)]
        assert certifier.sn_of(global_txn(1)) == sn(1)
        assert certifier.table_size() == 2

    def test_record_commit_of_removed_entry_is_noop(self, certifier):
        certifier.record_local_commit(global_txn(5))
        assert certifier.max_committed_sn is None


class TestMultipleIntervals:
    """The paper's optional optimization: remember several alive
    intervals per prepared subtransaction."""

    def make(self, max_intervals, engine):
        return Certifier(
            "a", CertifierConfig(max_intervals=max_intervals, engine=engine)
        )

    def test_single_interval_forgets_history(self, engine):
        certifier = self.make(1, engine)
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 50))
        certifier.restart_interval(global_txn(1), 80.0)
        # Candidate overlapping only the OLD incarnation's aliveness:
        decision = certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(20, 45)
        )
        assert not decision.ok  # unnecessary refusal

    def test_archived_interval_avoids_unnecessary_refusal(self, engine):
        certifier = self.make(3, engine)
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 50))
        certifier.restart_interval(global_txn(1), 80.0)
        decision = certifier.certify_prepare(
            global_txn(2), sn(2), AliveInterval(20, 45)
        )
        assert decision.ok  # the archive remembers [0, 50]

    def test_archive_bounded(self, engine):
        certifier = self.make(2, engine)  # 1 archived + 1 current
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.restart_interval(global_txn(1), 20.0)
        certifier.restart_interval(global_txn(1), 40.0)
        entry_intervals = certifier._entry(global_txn(1)).all_intervals()
        assert len(entry_intervals) == 2
        # The oldest interval [0, 10] was evicted.
        assert AliveInterval(0, 10) not in entry_intervals

    def test_current_interval_still_extended(self, engine):
        certifier = self.make(3, engine)
        certifier.insert(global_txn(1), sn(1), AliveInterval(0, 10))
        certifier.restart_interval(global_txn(1), 30.0)
        certifier.extend_interval(global_txn(1), 45.0)
        assert certifier.interval_of(global_txn(1)) == AliveInterval(30, 45)
