"""Unit tests for the DML language and decomposition (repro.ldbs.commands)."""

import pytest

from repro.common.errors import ConfigError
from repro.common.ids import DataItemId, SubtxnId, global_txn
from repro.ldbs.commands import (
    AddValue,
    DeleteItem,
    DeleteWhere,
    InsertItem,
    KeyIn,
    ReadItem,
    ScanTable,
    SelectWhere,
    SetValue,
    TrueP,
    UpdateItem,
    UpdateWhere,
    ValueEq,
    ValueGt,
    ValueLt,
    decompose,
    validate_command,
)
from repro.ldbs.storage import VersionedStore


@pytest.fixture
def store():
    s = VersionedStore("a")
    s.load("t", {"A": 5, "B": 15, "C": 25})
    return s


class TestPredicates:
    def test_truep(self):
        assert TrueP().matches("k", 1)

    def test_value_eq(self):
        assert ValueEq(5).matches("k", 5)
        assert not ValueEq(5).matches("k", 6)

    def test_value_gt_and_lt(self):
        assert ValueGt(10).matches("k", 11)
        assert not ValueGt(10).matches("k", 10)
        assert ValueLt(10).matches("k", 9)
        assert not ValueLt(10).matches("k", 10)

    def test_comparison_with_incomparable_type_is_false(self):
        assert not ValueGt(10).matches("k", "text")
        assert not ValueLt(10).matches("k", None)

    def test_key_in(self):
        pred = KeyIn(["A", "B"])
        assert pred.matches("A", 0)
        assert not pred.matches("C", 0)

    def test_key_in_hashable_and_equal(self):
        assert KeyIn(["A"]) == KeyIn(["A"])
        assert hash(KeyIn(["A"])) == hash(KeyIn(["A"]))


class TestUpdateOps:
    def test_set_value(self):
        assert SetValue(9).apply(1) == 9

    def test_add_value(self):
        assert AddValue(3).apply(4) == 7
        assert AddValue(-3).apply(4) == 1


class TestCommandShape:
    def test_update_flags(self):
        assert UpdateItem("t", "A", SetValue(1)).is_update()
        assert InsertItem("t", "A", 1).is_update()
        assert DeleteItem("t", "A").is_update()
        assert not ReadItem("t", "A").is_update()
        assert not ScanTable("t").is_update()

    def test_scan_flags(self):
        assert ScanTable("t").is_scan()
        assert SelectWhere("t", TrueP()).is_scan()
        assert UpdateWhere("t", TrueP(), SetValue(1)).is_scan()
        assert DeleteWhere("t", TrueP()).is_scan()
        assert not ReadItem("t", "A").is_scan()
        assert not UpdateItem("t", "A", SetValue(1)).is_scan()

    def test_commands_are_values(self):
        assert ReadItem("t", "A") == ReadItem("t", "A")
        assert UpdateItem("t", "A", AddValue(1)) == UpdateItem("t", "A", AddValue(1))

    def test_validate_rejects_non_commands(self):
        with pytest.raises(ConfigError):
            validate_command("SELECT * FROM t")

    def test_validate_rejects_empty_table(self):
        with pytest.raises(ConfigError):
            validate_command(ReadItem("", "A"))


class TestDecompose:
    """D(O, S) — the DDF assumption made executable."""

    def shapes(self, ops):
        return [(op.kind, op.item.key) for op in ops]

    def test_read_item(self, store):
        ops = decompose(ReadItem("t", "A"), store)
        assert self.shapes(ops) == [("R", "A")]

    def test_read_missing_item_still_probes(self, store):
        ops = decompose(ReadItem("t", "Z"), store)
        assert self.shapes(ops) == [("R", "Z")]

    def test_scan_reads_all_rows_in_key_order(self, store):
        ops = decompose(ScanTable("t"), store)
        assert self.shapes(ops) == [("R", "A"), ("R", "B"), ("R", "C")]

    def test_select_where_reads_all_rows(self, store):
        ops = decompose(SelectWhere("t", ValueGt(10)), store)
        assert self.shapes(ops) == [("R", "A"), ("R", "B"), ("R", "C")]

    def test_insert_is_blind_write(self, store):
        ops = decompose(InsertItem("t", "Z", 1), store)
        assert self.shapes(ops) == [("W", "Z")]

    def test_update_existing_is_read_write(self, store):
        ops = decompose(UpdateItem("t", "A", AddValue(1)), store)
        assert self.shapes(ops) == [("R", "A"), ("W", "A")]

    def test_update_missing_is_read_only(self, store):
        """The state-dependence that makes H1's resubmission decompose
        differently after T2 deleted the row."""
        ops = decompose(UpdateItem("t", "Z", AddValue(1)), store)
        assert self.shapes(ops) == [("R", "Z")]

    def test_update_where_writes_matching_only(self, store):
        ops = decompose(UpdateWhere("t", ValueGt(10), AddValue(1)), store)
        assert self.shapes(ops) == [
            ("R", "A"),
            ("R", "B"),
            ("W", "B"),
            ("R", "C"),
            ("W", "C"),
        ]

    def test_delete_existing(self, store):
        ops = decompose(DeleteItem("t", "A"), store)
        assert self.shapes(ops) == [("R", "A"), ("D", "A")]

    def test_delete_missing(self, store):
        ops = decompose(DeleteItem("t", "Z"), store)
        assert self.shapes(ops) == [("R", "Z")]

    def test_delete_where(self, store):
        ops = decompose(DeleteWhere("t", ValueLt(10)), store)
        assert self.shapes(ops) == [("R", "A"), ("D", "A"), ("R", "B"), ("R", "C")]

    def test_deterministic_for_same_state(self, store):
        command = UpdateWhere("t", ValueGt(0), AddValue(1))
        first = decompose(command, store)
        second = decompose(command, store)
        assert first == second

    def test_changes_with_state(self, store):
        command = UpdateItem("t", "A", AddValue(1))
        before = decompose(command, store)
        store.delete(SubtxnId(global_txn(9), "a", 0), DataItemId("t", "A"))
        after = decompose(command, store)
        assert len(before) == 2 and len(after) == 1

    def test_unknown_command_rejected(self, store):
        class Fake:
            table = "t"

        with pytest.raises(ConfigError):
            decompose(Fake(), store)
