"""Unit tests for the exception hierarchy (repro.common.errors)."""

import pytest

from repro.common.errors import (
    CertificationRefused,
    ConfigError,
    DLUViolation,
    HistoryError,
    LockTimeout,
    RefusalReason,
    ReproError,
    SimulationError,
    TransactionAborted,
    reason_of,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (
            ConfigError,
            SimulationError,
            HistoryError,
            TransactionAborted,
            LockTimeout,
            DLUViolation,
            CertificationRefused,
        ):
            assert issubclass(exc_type, ReproError)

    def test_lock_timeout_is_a_transaction_abort(self):
        exc = LockTimeout("row X")
        assert isinstance(exc, TransactionAborted)
        assert exc.reason is RefusalReason.LOCK_TIMEOUT

    def test_dlu_violation_reason(self):
        assert DLUViolation().reason is RefusalReason.DLU

    def test_certification_refused_carries_reason(self):
        exc = CertificationRefused(RefusalReason.ALIVE_INTERSECTION, "empty")
        assert exc.reason is RefusalReason.ALIVE_INTERSECTION
        assert "empty" in str(exc)

    def test_message_without_detail(self):
        exc = TransactionAborted(RefusalReason.UNILATERAL)
        assert str(exc) == "unilateral-abort"


class TestReasonOf:
    def test_extracts_reason(self):
        assert (
            reason_of(TransactionAborted(RefusalReason.NOT_ALIVE))
            is RefusalReason.NOT_ALIVE
        )

    def test_none_for_other_exceptions(self):
        assert reason_of(ValueError("x")) is None
        assert reason_of(None) is None


class TestRefusalReason:
    def test_str_is_value(self):
        assert str(RefusalReason.PREPARE_OUT_OF_ORDER) == "prepare-out-of-order"

    def test_all_reasons_distinct(self):
        values = [r.value for r in RefusalReason]
        assert len(values) == len(set(values))
