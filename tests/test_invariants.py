"""Tests for the Correctness Invariant checker (repro.history.invariants)."""

from repro.common.ids import global_txn
from repro.history.invariants import check_correctness_invariant
from repro.workload.scenarios import run_h1, run_h2, run_h3, run_hx

from tests.helpers import HistoryBuilder


class TestPartOne:
    def test_disjoint_prepared_txns_ok(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").p(1, "a")
        h.w(2, "a", "Y").p(2, "a")
        h.c(1).cl(1, "a").c(2).cl(2, "a")
        assert check_correctness_invariant(h.history) == []

    def test_conflicting_simultaneously_prepared_flagged(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").p(1, "a")
        h.w(2, "a", "X").p(2, "a")          # overlap + conflict on X
        h.c(1).cl(1, "a").c(2).cl(2, "a")
        violations = check_correctness_invariant(h.history)
        assert any(v.part == 1 for v in violations)

    def test_sequential_windows_ok(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").p(1, "a").c(1).cl(1, "a")
        h.w(2, "a", "X").p(2, "a").c(2).cl(2, "a")
        assert check_correctness_invariant(h.history) == []

    def test_read_read_overlap_ok(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a")
        h.r(2, "a", "X").p(2, "a")
        h.c(1).cl(1, "a").c(2).cl(2, "a")
        assert check_correctness_invariant(h.history) == []

    def test_requested_rollback_closes_window(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").p(1, "a").al(1, "a", unilateral=False)  # rollback
        h.w(2, "a", "X").p(2, "a").c(2).cl(2, "a")
        assert check_correctness_invariant(h.history) == []

    def test_unilateral_abort_keeps_window_open(self):
        """The agent still simulates the prepared state after a
        unilateral abort, so a conflicting later prepare violates CI."""
        h = HistoryBuilder()
        h.w(1, "a", "X").p(1, "a").al(1, "a", inc=0, unilateral=True)
        h.w(2, "a", "X").p(2, "a").c(2).cl(2, "a")
        h.c(1)
        h.w(1, "a", "X", inc=1).cl(1, "a", inc=1)
        violations = check_correctness_invariant(h.history)
        assert any(v.part == 1 for v in violations)


class TestPartTwo:
    def test_prepare_after_unilateral_abort_flagged(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").al(1, "a", inc=0, unilateral=True)
        h.p(1, "a")
        violations = check_correctness_invariant(h.history)
        assert any(v.part == 2 for v in violations)

    def test_prepare_of_live_incarnation_ok(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").p(1, "a").c(1).cl(1, "a")
        assert check_correctness_invariant(h.history) == []


class TestScenarios:
    def test_2cm_holds_ci_everywhere(self):
        for scenario in (run_h1, run_h2, run_h3, run_hx):
            result = scenario("2cm")
            assert check_correctness_invariant(result.system.history) == []

    def test_naive_h1_violates_ci(self):
        result = run_h1("naive")
        violations = check_correctness_invariant(result.system.history)
        assert any(v.part == 1 and v.site == "a" for v in violations)
