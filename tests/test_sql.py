"""Tests for the miniature SQL front-end (repro.ldbs.sql)."""

import pytest

from repro.ldbs.commands import (
    AddValue,
    DeleteItem,
    DeleteWhere,
    InsertItem,
    ReadItem,
    ScanTable,
    SelectWhere,
    SetValue,
    TrueP,
    UpdateItem,
    UpdateWhere,
    ValueEq,
    ValueGt,
    ValueLt,
)
from repro.ldbs.sql import SqlError, parse_script, parse_sql


class TestSelect:
    def test_scan(self):
        assert parse_sql("SELECT * FROM acct") == ScanTable("acct")

    def test_point_read_string_key(self):
        assert parse_sql("SELECT * FROM acct WHERE KEY = 'X'") == ReadItem(
            "acct", "X"
        )

    def test_point_read_int_key(self):
        assert parse_sql("SELECT * FROM t WHERE KEY = 7") == ReadItem("t", 7)

    def test_value_predicates(self):
        assert parse_sql("SELECT * FROM t WHERE VALUE > 10") == SelectWhere(
            "t", ValueGt(10)
        )
        assert parse_sql("SELECT * FROM t WHERE VALUE < 10") == SelectWhere(
            "t", ValueLt(10)
        )
        assert parse_sql("SELECT * FROM t WHERE VALUE = 10") == SelectWhere(
            "t", ValueEq(10)
        )

    def test_case_insensitive_keywords(self):
        assert parse_sql("select * from acct where key = 'X'") == ReadItem(
            "acct", "X"
        )

    def test_trailing_semicolon(self):
        assert parse_sql("SELECT * FROM acct;") == ScanTable("acct")


class TestInsert:
    def test_insert(self):
        assert parse_sql("INSERT INTO acct VALUES ('X', 100)") == InsertItem(
            "acct", "X", 100
        )

    def test_insert_string_value(self):
        assert parse_sql("INSERT INTO t VALUES (1, 'hello')") == InsertItem(
            "t", 1, "hello"
        )

    def test_quoted_quote(self):
        command = parse_sql("INSERT INTO t VALUES ('o''brien', 1)")
        assert command.key == "o'brien"


class TestUpdate:
    def test_set_literal(self):
        assert parse_sql(
            "UPDATE acct SET VALUE = 5 WHERE KEY = 'X'"
        ) == UpdateItem("acct", "X", SetValue(5))

    def test_increment(self):
        assert parse_sql(
            "UPDATE acct SET VALUE = VALUE + 10 WHERE KEY = 'X'"
        ) == UpdateItem("acct", "X", AddValue(10))

    def test_decrement(self):
        assert parse_sql(
            "UPDATE acct SET VALUE = VALUE - 3 WHERE KEY = 'X'"
        ) == UpdateItem("acct", "X", AddValue(-3))

    def test_update_where_value(self):
        assert parse_sql(
            "UPDATE acct SET VALUE = VALUE + 1 WHERE VALUE > 100"
        ) == UpdateWhere("acct", ValueGt(100), AddValue(1))

    def test_non_integer_delta_rejected(self):
        with pytest.raises(SqlError):
            parse_sql("UPDATE t SET VALUE = VALUE + 'x' WHERE KEY = 1")


class TestDelete:
    def test_delete_by_key(self):
        assert parse_sql("DELETE FROM acct WHERE KEY = 'Y'") == DeleteItem(
            "acct", "Y"
        )

    def test_delete_by_value(self):
        assert parse_sql("DELETE FROM acct WHERE VALUE = 0") == DeleteWhere(
            "acct", ValueEq(0)
        )

    def test_delete_all(self):
        assert parse_sql("DELETE FROM acct") == DeleteWhere("acct", TrueP())


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "DROP TABLE acct",
            "SELECT key FROM acct",
            "SELECT * FROM acct WHERE KEY > 'X'",
            "SELECT * FROM acct WHERE color = 'red'",
            "UPDATE acct SET VALUE = VALUE * 2 WHERE KEY = 'X'",
            "INSERT INTO acct VALUES ('X')",
            "SELECT * FROM acct extra",
            "SELECT * FROM 'acct'",
            "WHERE KEY = 1",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SqlError):
            parse_sql(bad)


class TestScript:
    def test_multiple_statements(self):
        commands = parse_script(
            """
            SELECT * FROM acct WHERE KEY = 'X';
            UPDATE acct SET VALUE = VALUE - 50 WHERE KEY = 'X';
            UPDATE acct SET VALUE = VALUE + 50 WHERE KEY = 'Y';
            """
        )
        assert len(commands) == 3
        assert isinstance(commands[0], ReadItem)
        assert isinstance(commands[1], UpdateItem)

    def test_empty_script(self):
        assert parse_script("  ;  ;  ") == []


class TestEndToEnd:
    def test_sql_through_the_full_stack(self):
        """SQL text in, 2PC + certification out."""
        from repro.common.ids import global_txn
        from repro.core.coordinator import GlobalTransactionSpec
        from repro.core.dtm import MultidatabaseSystem, SystemConfig
        from repro.sim.metrics import audit

        system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
        system.load("a", "acct", {"X": 100})
        system.load("b", "acct", {"Y": 0})
        steps = tuple(
            zip(
                ("a", "b"),
                parse_script(
                    "UPDATE acct SET VALUE = VALUE - 50 WHERE KEY = 'X';"
                    "UPDATE acct SET VALUE = VALUE + 50 WHERE KEY = 'Y';"
                ),
            )
        )
        done = system.submit(GlobalTransactionSpec(txn=global_txn(1), steps=steps))
        system.run()
        assert done.value.committed
        snapshot_a = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        snapshot_b = {k.key: v for k, v in system.ltm("b").store.snapshot().items()}
        assert snapshot_a["X"] == 50 and snapshot_b["Y"] == 50
        assert audit(system).ok


class TestRoundTrip:
    """to_sql(parse_sql(s)) and parse_sql(to_sql(c)) are inverses."""

    CASES = [
        ReadItem("acct", "X"),
        ReadItem("t", 7),
        ScanTable("acct"),
        SelectWhere("t", ValueGt(10)),
        SelectWhere("t", ValueLt(-2)),
        SelectWhere("t", ValueEq("blue")),
        InsertItem("acct", "X", 100),
        InsertItem("t", 1, "o'brien"),
        UpdateItem("acct", "X", SetValue(5)),
        UpdateItem("acct", "X", AddValue(10)),
        UpdateItem("acct", "X", AddValue(-3)),
        UpdateWhere("acct", ValueGt(100), AddValue(1)),
        DeleteItem("acct", "Y"),
        DeleteWhere("acct", ValueEq(0)),
        DeleteWhere("acct", TrueP()),
    ]

    @pytest.mark.parametrize("command", CASES, ids=lambda c: type(c).__name__ + repr(getattr(c, "key", "")))
    def test_parse_of_render(self, command):
        from repro.ldbs.sql import to_sql

        assert parse_sql(to_sql(command)) == command

    def test_render_rejects_exotic_ops(self):
        from repro.ldbs.sql import to_sql

        class Weird:
            pass

        with pytest.raises(SqlError):
            to_sql(Weird())


class TestRoundTripProperty:
    def test_random_commands_round_trip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.ldbs.sql import to_sql

        keys = st.one_of(
            st.integers(min_value=-100, max_value=100),
            st.text(
                alphabet="abcXYZ' _",
                min_size=1,
                max_size=8,
            ),
        )
        values = st.one_of(st.integers(-1000, 1000), st.text(max_size=6))
        tables = st.sampled_from(["t", "acct", "branch_2"])
        # No TrueP for SELECT: "SELECT * FROM t" parses as ScanTable —
        # semantically identical, structurally different.
        predicates = st.one_of(
            st.builds(ValueEq, st.integers(-50, 50)),
            st.builds(ValueGt, st.integers(-50, 50)),
            st.builds(ValueLt, st.integers(-50, 50)),
        )
        ops = st.one_of(
            st.builds(SetValue, st.integers(-50, 50)),
            st.builds(AddValue, st.integers(-50, 50)),
        )
        commands = st.one_of(
            st.builds(ReadItem, tables, keys),
            st.builds(ScanTable, tables),
            st.builds(SelectWhere, tables, predicates),
            st.builds(InsertItem, tables, keys, values),
            st.builds(UpdateItem, tables, keys, ops),
            st.builds(DeleteItem, tables, keys),
            st.builds(DeleteWhere, tables, predicates),
        )

        @settings(max_examples=200, deadline=None)
        @given(commands)
        def check(command):
            assert parse_sql(to_sql(command)) == command

        check()
