"""Tests for site crashes (collective abort) and the Lamport SN source."""

from repro.common.ids import SubtxnId, global_txn
from repro.core.agent import AgentConfig
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.model import OpKind
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.net.network import LatencyModel
from repro.sim.driver import run_schedule
from repro.sim.failures import PeriodicCrashInjector, inject_site_crash
from repro.sim.metrics import audit
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def build(method="2cm", **kwargs):
    kwargs.setdefault("sites", ("a", "b"))
    kwargs.setdefault("latency", LatencyModel(base=5.0))
    system = MultidatabaseSystem(SystemConfig(method=method, **kwargs))
    system.load("a", "t", {"X": 100, "Y": 50})
    system.load("b", "t", {"Z": 10})
    return system


def drain(system, limit=200_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending


class TestLtmCrash:
    def test_crash_aborts_every_active_txn(self):
        system = build()
        ltm = system.ltm("a")
        t1 = ltm.begin(SubtxnId(global_txn(1), "a", 0))
        t2 = ltm.begin(SubtxnId(global_txn(2), "a", 0))
        t1.execute(UpdateItem("t", "X", AddValue(1)))
        t2.execute(UpdateItem("t", "Y", AddValue(1)))
        system.run()
        victims = ltm.crash()
        assert len(victims) == 2
        assert ltm.active_txns() == []
        snapshot = {k.key: v for k, v in ltm.store.snapshot("t").items()}
        assert snapshot == {"X": 100, "Y": 50}  # before-images restored

    def test_crash_fires_uan_per_victim(self):
        system = build()
        ltm = system.ltm("a")
        seen = []
        ltm.on_unilateral_abort(seen.append)
        t1 = ltm.begin(SubtxnId(global_txn(1), "a", 0))
        t1.execute(ReadItem("t", "X"))
        system.run()
        ltm.crash()
        assert len(seen) == 1

    def test_crash_on_idle_site_is_noop(self):
        system = build()
        assert system.ltm("a").crash() == []

    def test_committed_state_survives_crash(self):
        system = build()
        ltm = system.ltm("a")
        t1 = ltm.begin(SubtxnId(global_txn(1), "a", 0))
        t1.execute(UpdateItem("t", "X", AddValue(1)))
        system.run()
        t1.commit()
        system.run()
        ltm.crash()
        snapshot = {k.key: v for k, v in ltm.store.snapshot("t").items()}
        assert snapshot["X"] == 101


class TestCrashDuringProtocol:
    def spec(self):
        return GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("a", UpdateItem("t", "X", AddValue(-5))),
                ("b", UpdateItem("t", "Z", AddValue(5))),
            ),
        )

    def test_crash_of_prepared_site_repaired_by_resubmission(self):
        system = build(
            agent=AgentConfig(alive_check_interval=15.0),
            latency=LatencyModel(
                base=5.0, overrides={("coord:c1", "agent:a"): 70.0}
            ),
        )
        done = system.submit(self.spec())

        def crash_after_decision(op):
            if op.kind is OpKind.GLOBAL_COMMIT:
                system.kernel.schedule(1.0, lambda: system.ltm("a").crash())

        system.history.subscribe(crash_after_decision)
        drain(system)
        assert done.value.committed
        assert system.agent("a").resubmissions == 1
        assert audit(system).ok

    def test_scheduled_crash_helper(self):
        system = build(agent=AgentConfig(alive_check_interval=10_000.0))
        spec = GlobalTransactionSpec(
            txn=global_txn(1),
            steps=self.spec().steps,
            think_time=40.0,
        )
        done = system.submit(spec)
        inject_site_crash(system, "a", at=30.0)  # while active
        drain(system)
        assert not done.value.committed  # refused at PREPARE (not alive)
        assert audit(system).ok

    def test_periodic_crashes_random_workload_stays_correct(self):
        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), n_coordinators=2, method="2cm")
        )
        PeriodicCrashInjector(system, period=60.0, count=4, seed=3)
        schedule = WorkloadGenerator(
            WorkloadConfig(
                sites=("a", "b"), n_global=10, keys_per_site=24, seed=3
            )
        ).generate()
        run_schedule(system, schedule)
        report = audit(system)
        assert report.rigor_violations == 0
        assert not report.distortions.has_global_distortion
        assert report.distortions.commit_graph_cycle is None


class TestLamportSN:
    def test_lamport_system_commits_and_orders(self):
        system = MultidatabaseSystem(
            SystemConfig(
                sites=("a", "b"), n_coordinators=2, sn_source="lamport"
            )
        )
        system.load("a", "t", {"P": 1})
        system.load("b", "t", {"S": 2})
        first = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(
                    ("a", UpdateItem("t", "P", AddValue(1))),
                    ("b", UpdateItem("t", "S", AddValue(1))),
                ),
            ),
            coordinator=0,
        )
        drain(system)
        second = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(2),
                steps=(
                    ("a", UpdateItem("t", "P", AddValue(1))),
                    ("b", UpdateItem("t", "S", AddValue(1))),
                ),
            ),
            coordinator=1,
        )
        drain(system)
        sn1, sn2 = first.value.sn, second.value.sn
        # Causality: c2 witnessed SN(1) through the agents' piggyback
        # (T2 read T1's writes), so SN(2) must exceed SN(1) even though
        # the two coordinators never talked to each other.
        assert sn1 < sn2
        assert audit(system).ok

    def test_agents_piggyback_max_seen_sn(self):
        system = MultidatabaseSystem(
            SystemConfig(sites=("a",), n_coordinators=1, sn_source="lamport")
        )
        system.load("a", "t", {"P": 1})
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1), steps=(("a", ReadItem("t", "P")),)
            )
        )
        drain(system)
        assert done.value.committed
        assert system.agent("a").max_seen_sn == done.value.sn


class TestPausedChannelRace:
    def test_hx_race_via_pause_resume(self):
        """Reproduce the Sec. 5.3 overtake dynamically: hold back only
        the PREPARE leg with pause_channel instead of a static latency
        override, and watch the extension refuse the late PREPARE."""
        from repro.common.errors import RefusalReason

        system = MultidatabaseSystem(
            SystemConfig(sites=("i", "s"), n_coordinators=2, method="2cm")
        )
        system.load("i", "t", {"I1": 1, "I2": 2})
        system.load("s", "t", {"S1": 3, "S2": 4})

        t7 = GlobalTransactionSpec(
            txn=global_txn(7),
            steps=(
                ("s", UpdateItem("t", "S1", AddValue(1))),
                ("i", UpdateItem("t", "I1", AddValue(1))),
            ),
        )
        t8 = GlobalTransactionSpec(
            txn=global_txn(8),
            steps=(
                ("i", UpdateItem("t", "I2", AddValue(2))),
                ("s", UpdateItem("t", "S2", AddValue(2))),
            ),
        )
        done7 = system.submit(t7, coordinator=0)
        # T7's s-commands finish around t=12; freeze its channel to s
        # before the PREPARE goes out, start T8, then release.
        system.kernel.schedule(
            20.0, lambda: system.network.pause_channel("coord:c1", "agent:s")
        )
        holder = {}
        system.kernel.schedule(
            25.0, lambda: holder.setdefault("done8", system.submit(t8, coordinator=1))
        )
        system.kernel.schedule(
            120.0, lambda: system.network.resume_channel("coord:c1", "agent:s")
        )
        drain(system)
        assert holder["done8"].value.committed
        outcome7 = done7.value
        assert not outcome7.committed
        assert outcome7.reason is RefusalReason.PREPARE_OUT_OF_ORDER
        assert audit(system).ok
