"""Unit tests for the multi-granularity lock manager (repro.ldbs.locks)."""

import pytest

from repro.common.errors import LockTimeout
from repro.common.ids import DataItemId, SubtxnId, global_txn
from repro.kernel import EventKernel
from repro.ldbs.locks import (
    LockManager,
    LockMode,
    compatible,
    covers,
    supremum,
)


def sub(n, inc=0):
    return SubtxnId(global_txn(n), "a", inc)


ROW = ("row", DataItemId("t", "X"))
TABLE = ("table", "t")


@pytest.fixture
def kernel():
    return EventKernel()


@pytest.fixture
def lm(kernel):
    return LockManager(kernel, default_timeout=None)


class TestCompatibilityMatrix:
    def test_is_compatible_with_everything_but_x(self):
        for mode in (LockMode.IS, LockMode.IX, LockMode.S, LockMode.SIX):
            assert compatible(LockMode.IS, mode)
        assert not compatible(LockMode.IS, LockMode.X)

    def test_s_conflicts_with_ix(self):
        assert not compatible(LockMode.S, LockMode.IX)
        assert not compatible(LockMode.IX, LockMode.S)

    def test_six_only_with_is(self):
        assert compatible(LockMode.SIX, LockMode.IS)
        for mode in (LockMode.IX, LockMode.S, LockMode.SIX, LockMode.X):
            assert not compatible(LockMode.SIX, mode)

    def test_x_conflicts_with_all(self):
        for mode in LockMode:
            assert not compatible(LockMode.X, mode)

    def test_matrix_symmetric(self):
        for a in LockMode:
            for b in LockMode:
                assert compatible(a, b) == compatible(b, a)


class TestSupremum:
    def test_ix_plus_s_is_six(self):
        assert supremum(LockMode.IX, LockMode.S) is LockMode.SIX
        assert supremum(LockMode.S, LockMode.IX) is LockMode.SIX

    def test_anything_with_x_is_x(self):
        for mode in LockMode:
            assert supremum(mode, LockMode.X) is LockMode.X

    def test_idempotent(self):
        for mode in LockMode:
            assert supremum(mode, mode) is mode

    def test_covers(self):
        assert covers(LockMode.X, LockMode.S)
        assert covers(LockMode.SIX, LockMode.IX)
        assert covers(LockMode.SIX, LockMode.S)
        assert not covers(LockMode.S, LockMode.IX)
        assert not covers(LockMode.IS, LockMode.S)


class TestGrantAndQueue:
    def test_immediate_grant_on_free_resource(self, kernel, lm):
        event = lm.acquire(sub(1), ROW, LockMode.X)
        kernel.run()
        assert event.ok
        assert lm.holders(ROW) == {sub(1): LockMode.X}

    def test_shared_holders_coexist(self, kernel, lm):
        e1 = lm.acquire(sub(1), ROW, LockMode.S)
        e2 = lm.acquire(sub(2), ROW, LockMode.S)
        kernel.run()
        assert e1.ok and e2.ok

    def test_conflicting_request_queues_until_release(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        e2 = lm.acquire(sub(2), ROW, LockMode.X)
        kernel.run()
        assert not e2.done
        lm.release_all(sub(1))
        kernel.run()
        assert e2.ok

    def test_reentrant_covering_request_granted(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        again = lm.acquire(sub(1), ROW, LockMode.S)
        kernel.run()
        assert again.ok

    def test_fifo_order_on_release(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        order = []
        e2 = lm.acquire(sub(2), ROW, LockMode.X)
        e3 = lm.acquire(sub(3), ROW, LockMode.X)
        e2.subscribe(lambda ev: order.append(2))
        e3.subscribe(lambda ev: order.append(3))
        kernel.run()
        lm.release_all(sub(1))
        kernel.run()
        assert order == [2]  # strict FIFO: 3 still behind 2
        lm.release_all(sub(2))
        kernel.run()
        assert order == [2, 3]

    def test_fresh_request_cannot_overtake_queue(self, kernel, lm):
        """Even a compatible newcomer waits behind a queued conflicting
        request — no starvation of writers by a read stream."""
        lm.acquire(sub(1), ROW, LockMode.S)
        writer = lm.acquire(sub(2), ROW, LockMode.X)
        late_reader = lm.acquire(sub(3), ROW, LockMode.S)
        kernel.run()
        assert not writer.done
        assert not late_reader.done

    def test_multiple_compatible_wakeups(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        readers = [lm.acquire(sub(n), ROW, LockMode.S) for n in (2, 3, 4)]
        kernel.run()
        lm.release_all(sub(1))
        kernel.run()
        assert all(r.ok for r in readers)


class TestConversion:
    def test_upgrade_s_to_x_when_alone(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.S)
        upgrade = lm.acquire(sub(1), ROW, LockMode.X)
        kernel.run()
        assert upgrade.ok
        assert lm.holders(ROW)[sub(1)] is LockMode.X

    def test_upgrade_waits_for_other_reader(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.S)
        lm.acquire(sub(2), ROW, LockMode.S)
        upgrade = lm.acquire(sub(1), ROW, LockMode.X)
        kernel.run()
        assert not upgrade.done
        lm.release_all(sub(2))
        kernel.run()
        assert upgrade.ok

    def test_conversion_overtakes_fresh_requests(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.S)
        lm.acquire(sub(2), ROW, LockMode.S)
        fresh = lm.acquire(sub(3), ROW, LockMode.X)
        upgrade = lm.acquire(sub(1), ROW, LockMode.X)
        kernel.run()
        lm.release_all(sub(2))
        kernel.run()
        assert upgrade.ok
        assert not fresh.done

    def test_ix_plus_s_yields_six_holder(self, kernel, lm):
        lm.acquire(sub(1), TABLE, LockMode.IX)
        merge = lm.acquire(sub(1), TABLE, LockMode.S)
        kernel.run()
        assert merge.ok
        assert lm.holders(TABLE)[sub(1)] is LockMode.SIX


class TestTimeouts:
    def test_timeout_fails_request(self, kernel):
        lm = LockManager(kernel, default_timeout=10.0)
        lm.acquire(sub(1), ROW, LockMode.X)
        blocked = lm.acquire(sub(2), ROW, LockMode.X)
        kernel.run()
        assert isinstance(blocked.error, LockTimeout)
        assert lm.timeouts == 1

    def test_explicit_timeout_overrides_default(self, kernel):
        lm = LockManager(kernel, default_timeout=1000.0)
        lm.acquire(sub(1), ROW, LockMode.X)
        blocked = lm.acquire(sub(2), ROW, LockMode.X, timeout=5.0)
        kernel.run(until=6.0)
        assert isinstance(blocked.error, LockTimeout)

    def test_grant_cancels_timeout(self, kernel):
        lm = LockManager(kernel, default_timeout=10.0)
        lm.acquire(sub(1), ROW, LockMode.X)
        blocked = lm.acquire(sub(2), ROW, LockMode.X)
        kernel.run(until=5.0)
        lm.release_all(sub(1))
        kernel.run()
        assert blocked.ok
        assert lm.timeouts == 0

    def test_timeout_unblocks_queue_behind_it(self, kernel):
        lm = LockManager(kernel, default_timeout=None)
        lm.acquire(sub(1), ROW, LockMode.S)
        writer = lm.acquire(sub(2), ROW, LockMode.X, timeout=5.0)
        reader = lm.acquire(sub(3), ROW, LockMode.S, timeout=None)
        kernel.run()
        assert isinstance(writer.error, LockTimeout)
        assert reader.ok


class TestReleaseAll:
    def test_release_all_drops_queued_requests(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        blocked = lm.acquire(sub(2), ROW, LockMode.X)
        lm.release_all(sub(2))  # aborting waiter
        lm.release_all(sub(1))
        kernel.run()
        assert not blocked.done  # its request was silently dropped
        assert lm.holders(ROW) == {}

    def test_release_specific_resource(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.S)
        lm.acquire(sub(1), TABLE, LockMode.IS)
        kernel.run()
        lm.release(sub(1), ROW)
        assert ROW not in lm.held_by(sub(1))
        assert TABLE in lm.held_by(sub(1))


class TestDeadlockDetection:
    def test_wait_for_graph_edges(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        lm.acquire(sub(2), ROW, LockMode.X)
        graph = lm.wait_for_graph()
        assert graph == {sub(2): {sub(1)}}

    def test_find_deadlock_cycle(self, kernel, lm):
        row2 = ("row", DataItemId("t", "Y"))
        lm.acquire(sub(1), ROW, LockMode.X)
        lm.acquire(sub(2), row2, LockMode.X)
        lm.acquire(sub(1), row2, LockMode.X)
        lm.acquire(sub(2), ROW, LockMode.X)
        cycle = lm.find_deadlock()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert {sub(1), sub(2)} == set(cycle[:-1])

    def test_no_deadlock_reported_when_none(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        lm.acquire(sub(2), ROW, LockMode.X)
        assert lm.find_deadlock() is None

    def test_assert_consistent_passes(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.S)
        lm.acquire(sub(2), ROW, LockMode.S)
        lm.assert_consistent()


class TestOwnerAndContentionIndexes:
    """The owner->queued and contended-resource indexes (perf overhaul)."""

    def test_release_all_prunes_queued_only_owner(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        lm.acquire(sub(2), ROW, LockMode.X)  # queued, holds nothing
        kernel.run()
        lm.release_all(sub(2))
        assert sub(2) not in lm._queued_by_owner
        assert not lm.has_waiters
        lm.assert_consistent()

    def test_contended_index_empties_after_grant(self, kernel, lm):
        lm.acquire(sub(1), ROW, LockMode.X)
        lm.acquire(sub(2), ROW, LockMode.X)
        kernel.run()
        assert lm.has_waiters
        lm.release_all(sub(1))
        kernel.run()
        assert not lm.has_waiters
        assert lm.holders(ROW) == {sub(2): LockMode.X}
        lm.assert_consistent()

    def test_same_owner_queued_on_several_resources(self, kernel, lm):
        row2 = ("row", DataItemId("t", "Y"))
        lm.acquire(sub(1), ROW, LockMode.X)
        lm.acquire(sub(2), row2, LockMode.X)
        lm.acquire(sub(3), ROW, LockMode.X)
        lm.acquire(sub(3), row2, LockMode.X)
        kernel.run()
        assert lm.wait_for_graph() == {sub(3): {sub(1), sub(2)}}
        lm.release_all(sub(3))
        assert lm.wait_for_graph() == {}
        lm.assert_consistent()

    def test_timeout_cleans_indexes(self, kernel):
        lm = LockManager(kernel, default_timeout=5.0)
        lm.acquire(sub(1), ROW, LockMode.X)
        blocked = lm.acquire(sub(2), ROW, LockMode.X)
        kernel.run()
        assert isinstance(blocked.error, LockTimeout)
        assert not lm.has_waiters
        assert sub(2) not in lm._queued_by_owner
        lm.assert_consistent()

    def test_wake_order_follows_resource_creation_order(self, kernel, lm):
        """release_all wakes touched queues in resource-creation order,
        reproducing the full-scan order of the unindexed implementation."""
        row2 = ("row", DataItemId("t", "Y"))
        order = []
        lm.acquire(sub(1), ROW, LockMode.X)
        lm.acquire(sub(1), row2, LockMode.X)
        e2 = lm.acquire(sub(2), ROW, LockMode.X)
        e3 = lm.acquire(sub(3), row2, LockMode.X)
        e2.subscribe(lambda ev: order.append("row1"))
        e3.subscribe(lambda ev: order.append("row2"))
        kernel.run()
        lm.release_all(sub(1))
        kernel.run()
        assert order == ["row1", "row2"]
        lm.assert_consistent()

    def test_consistency_after_churn(self, kernel, lm):
        resources = [("row", DataItemId("t", f"k{i}")) for i in range(8)]
        for n in range(1, 7):
            for r in resources[n % 4 :: 2]:
                lm.acquire(sub(n), r, LockMode.X if n % 2 else LockMode.S)
        kernel.run()
        for n in (2, 4, 6):
            lm.release_all(sub(n))
        kernel.run()
        lm.assert_consistent()
        for n in (1, 3, 5):
            lm.release_all(sub(n))
        kernel.run()
        lm.assert_consistent()
        assert not lm.has_waiters
