"""Unit and behaviour tests for the Local Transaction Manager."""

import pytest

from repro.common.errors import RefusalReason, SimulationError, TransactionAborted
from repro.common.ids import DataItemId, SubtxnId, global_txn, local_txn
from repro.history.model import History, OpKind
from repro.history.rigor import check_rigorous
from repro.kernel import EventKernel
from repro.ldbs.commands import (
    AddValue,
    DeleteItem,
    InsertItem,
    ReadItem,
    ScanTable,
    SelectWhere,
    SetValue,
    TrueP,
    UpdateItem,
    UpdateWhere,
    ValueGt,
    decompose,
)
from repro.ldbs.dlu import BoundDataGuard, DLUPolicy
from repro.ldbs.ltm import LTMConfig, LocalTransactionManager, TxnState


def sub(n, inc=0):
    return SubtxnId(global_txn(n), "a", inc)


def lsub(n):
    return SubtxnId(local_txn(n, "a"), "a", 0)


@pytest.fixture
def env():
    kernel = EventKernel()
    history = History()
    ltm = LocalTransactionManager("a", kernel, history)
    ltm.store.load("t", {"X": 10, "Y": 20, "Z": 30})
    return kernel, history, ltm


class TestLifecycle:
    def test_begin_execute_commit(self, env):
        kernel, history, ltm = env
        txn = ltm.begin(sub(1))
        result = txn.execute(ReadItem("t", "X"))
        kernel.run()
        assert result.value.rows == (("X", 10),)
        commit = txn.commit()
        kernel.run()
        assert commit.ok
        assert txn.state is TxnState.COMMITTED
        assert ltm.commits == 1

    def test_duplicate_begin_rejected(self, env):
        _kernel, _history, ltm = env
        ltm.begin(sub(1))
        with pytest.raises(SimulationError):
            ltm.begin(sub(1))

    def test_abort_rolls_back(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.execute(UpdateItem("t", "X", SetValue(99)))
        kernel.run()
        txn.abort()
        kernel.run()
        assert ltm.store.read(DataItemId("t", "X"))[1] == 10
        assert txn.state is TxnState.ABORTED

    def test_commit_after_abort_fails(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.abort()
        commit = txn.commit()
        kernel.run()
        assert isinstance(commit.error, TransactionAborted)

    def test_execute_after_abort_fails(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.abort()
        result = txn.execute(ReadItem("t", "X"))
        kernel.run()
        assert isinstance(result.error, TransactionAborted)

    def test_commit_is_idempotent(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.commit()
        kernel.run()
        second = txn.commit()
        kernel.run()
        assert second.ok

    def test_command_while_executing_rejected(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.execute(ReadItem("t", "X"))
        overlapping = txn.execute(ReadItem("t", "Y"))
        kernel.run()
        assert isinstance(overlapping.error, SimulationError)


class TestAliveness:
    def test_alive_after_commands_done(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.execute(ReadItem("t", "X"))
        kernel.run()
        assert ltm.is_alive(sub(1))

    def test_not_alive_while_executing(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.execute(ReadItem("t", "X"))
        kernel.run(max_events=1)  # command started, not finished
        assert not ltm.is_alive(sub(1))

    def test_not_alive_after_terminal_states(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.commit()
        kernel.run()
        assert not ltm.is_alive(sub(1))
        other = ltm.begin(sub(2))
        other.abort()
        assert not ltm.is_alive(sub(2))


class TestUnilateralAbort:
    def test_uan_callback_fires(self, env):
        kernel, _history, ltm = env
        seen = []
        ltm.on_unilateral_abort(seen.append)
        txn = ltm.begin(sub(1))
        txn.execute(UpdateItem("t", "X", SetValue(1)))
        kernel.run()
        assert ltm.unilaterally_abort(sub(1)) is True
        assert seen == [sub(1)]
        assert ltm.store.read(DataItemId("t", "X"))[1] == 10

    def test_unilateral_abort_of_terminated_txn_refused(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.commit()
        kernel.run()
        assert ltm.unilaterally_abort(sub(1)) is False

    def test_abort_interrupts_blocked_command(self, env):
        kernel, _history, ltm = env
        holder = ltm.begin(sub(1))
        holder.execute(UpdateItem("t", "X", SetValue(1)))
        kernel.run()
        blocked_txn = ltm.begin(sub(2))
        blocked = blocked_txn.execute(UpdateItem("t", "X", SetValue(2)))
        kernel.run(until=kernel.now + 5)
        assert not blocked.done
        ltm.unilaterally_abort(sub(2))
        kernel.run(until=kernel.now + 5)
        assert isinstance(blocked.error, TransactionAborted)
        holder.commit()
        kernel.run()

    def test_history_marks_unilateral(self, env):
        kernel, history, ltm = env
        txn = ltm.begin(sub(1))
        txn.execute(ReadItem("t", "X"))
        kernel.run()
        ltm.unilaterally_abort(sub(1))
        aborts = [op for op in history.ops if op.kind is OpKind.LOCAL_ABORT]
        assert len(aborts) == 1
        assert aborts[0].unilateral


class TestLockInteraction:
    def test_lock_timeout_aborts_and_notifies(self, env):
        kernel, _history, ltm = env
        ltm.config = LTMConfig(lock_timeout=20.0)
        ltm.locks.default_timeout = 20.0
        seen = []
        ltm.on_unilateral_abort(seen.append)
        t1 = ltm.begin(sub(1))
        t1.execute(UpdateItem("t", "X", SetValue(1)))
        kernel.run()
        t2 = ltm.begin(sub(2))
        blocked = t2.execute(UpdateItem("t", "X", SetValue(2)))
        kernel.run()
        assert isinstance(blocked.error, TransactionAborted)
        assert blocked.error.reason is RefusalReason.LOCK_TIMEOUT
        assert t2.state is TxnState.ABORTED
        # A lock-timeout rollback of a global subtransaction is a
        # unilateral abort from the DTM's perspective (UAN fires).
        assert seen == [sub(2)]

    def test_local_txn_lock_timeout_not_uan(self, env):
        kernel, _history, ltm = env
        ltm.locks.default_timeout = 20.0
        seen = []
        ltm.on_unilateral_abort(seen.append)
        t1 = ltm.begin(sub(1))
        t1.execute(UpdateItem("t", "X", SetValue(1)))
        kernel.run()
        t2 = ltm.begin(lsub(4))
        blocked = t2.execute(UpdateItem("t", "X", SetValue(2)))
        kernel.run()
        assert isinstance(blocked.error, TransactionAborted)
        assert seen == []

    def test_scan_blocks_insert(self, env):
        kernel, _history, ltm = env
        scanner = ltm.begin(sub(1))
        scanner.execute(ScanTable("t"))
        kernel.run()
        inserter = ltm.begin(sub(2))
        insert = inserter.execute(InsertItem("t", "NEW", 1))
        kernel.run(until=kernel.now + 5)
        assert not insert.done  # S(table) vs IX(table)
        scanner.commit()
        kernel.run()
        assert insert.ok

    def test_point_ops_on_distinct_rows_run_concurrently(self, env):
        kernel, _history, ltm = env
        t1 = ltm.begin(sub(1))
        t2 = ltm.begin(sub(2))
        r1 = t1.execute(UpdateItem("t", "X", SetValue(1)))
        r2 = t2.execute(UpdateItem("t", "Y", SetValue(2)))
        kernel.run()
        assert r1.ok and r2.ok

    def test_readers_share_a_row(self, env):
        kernel, _history, ltm = env
        t1 = ltm.begin(sub(1))
        t2 = ltm.begin(sub(2))
        r1 = t1.execute(ReadItem("t", "X"))
        r2 = t2.execute(ReadItem("t", "X"))
        kernel.run()
        assert r1.ok and r2.ok


class TestCommandSemantics:
    def test_update_where_applies_to_matches(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        result = txn.execute(UpdateWhere("t", ValueGt(15), AddValue(100)))
        txn.commit()
        kernel.run()
        assert result.value.affected == 2
        assert ltm.store.read(DataItemId("t", "Y"))[1] == 120
        assert ltm.store.read(DataItemId("t", "Z"))[1] == 130
        assert ltm.store.read(DataItemId("t", "X"))[1] == 10

    def test_select_where_filters_but_reads_all(self, env):
        kernel, history, ltm = env
        txn = ltm.begin(sub(1))
        result = txn.execute(SelectWhere("t", ValueGt(15)))
        kernel.run()
        assert result.value.rows == (("Y", 20), ("Z", 30))
        reads = [op for op in history.ops if op.kind is OpKind.READ]
        assert len(reads) == 3

    def test_delete_item(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        result = txn.execute(DeleteItem("t", "X"))
        txn.commit()
        kernel.run()
        assert result.value.affected == 1
        assert not ltm.store.exists(DataItemId("t", "X"))

    def test_update_missing_row_affects_zero(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        result = txn.execute(UpdateItem("t", "NOPE", AddValue(1)))
        kernel.run()
        assert result.value.affected == 0

    def test_execution_matches_decomposition_function(self, env):
        """DDF: the recorded elementary trace equals D(O, S at start)."""
        kernel, history, ltm = env
        command = UpdateWhere("t", ValueGt(15), AddValue(1))
        expected = [
            (op.kind if op.kind != "D" else "W", op.item)
            for op in decompose(command, ltm.store)
        ]
        txn = ltm.begin(sub(1))
        txn.execute(command)
        kernel.run()
        recorded = [
            (op.kind.value, op.item)
            for op in history.ops
            if op.kind in (OpKind.READ, OpKind.WRITE)
        ]
        assert recorded == expected

    def test_access_set_tracks_items(self, env):
        kernel, _history, ltm = env
        txn = ltm.begin(sub(1))
        txn.execute(ReadItem("t", "X"))
        kernel.run()
        txn.execute(UpdateItem("t", "Y", AddValue(1)))
        kernel.run()
        keys = {item.key for item in ltm.access_set_of(sub(1))}
        assert keys == {"X", "Y"}


class TestRigorousness:
    def test_s2pl_histories_are_rigorous(self, env):
        kernel, history, ltm = env
        t1 = ltm.begin(sub(1))
        t1.execute(UpdateItem("t", "X", AddValue(1)))
        kernel.run()
        t2 = ltm.begin(sub(2))
        blocked = t2.execute(ReadItem("t", "X"))
        t1.commit()
        kernel.run()
        t2.commit()
        kernel.run()
        assert blocked.ok
        assert check_rigorous(history.ops) == []

    def test_non_rigorous_config_violates(self):
        """Early read-lock release lets a write slip under an
        uncommitted read — the E12 ablation's mechanism."""
        kernel = EventKernel()
        history = History()
        ltm = LocalTransactionManager(
            "a", kernel, history, config=LTMConfig(rigorous=False)
        )
        ltm.store.load("t", {"X": 10})
        reader = ltm.begin(sub(1))
        reader.execute(ReadItem("t", "X"))
        kernel.run()
        writer = ltm.begin(sub(2))
        write = writer.execute(UpdateItem("t", "X", SetValue(99)))
        kernel.run()
        assert write.ok  # read lock was dropped: write got in
        violations = check_rigorous(history.ops)
        assert violations  # R(T1) ... W(T2) without T1 terminating


class TestDLUIntegration:
    def make_guarded(self, policy):
        kernel = EventKernel()
        history = History()
        guard = BoundDataGuard(kernel, policy=policy, wait_timeout=30.0)
        ltm = LocalTransactionManager("a", kernel, history, dlu_guard=guard)
        ltm.store.load("t", {"X": 10})
        return kernel, ltm, guard

    def test_local_update_of_bound_item_denied(self):
        kernel, ltm, guard = self.make_guarded(DLUPolicy.ABORT)
        guard.bind(global_txn(1), [DataItemId("t", "X")])
        local = ltm.begin(lsub(4))
        result = local.execute(UpdateItem("t", "X", SetValue(0)))
        kernel.run()
        assert isinstance(result.error, TransactionAborted)
        assert result.error.reason is RefusalReason.DLU

    def test_local_read_of_bound_item_allowed(self):
        kernel, ltm, guard = self.make_guarded(DLUPolicy.ABORT)
        guard.bind(global_txn(1), [DataItemId("t", "X")])
        local = ltm.begin(lsub(4))
        result = local.execute(ReadItem("t", "X"))
        kernel.run()
        assert result.ok

    def test_global_subtxn_exempt_from_dlu(self):
        kernel, ltm, guard = self.make_guarded(DLUPolicy.ABORT)
        guard.bind(global_txn(1), [DataItemId("t", "X")])
        other_global = ltm.begin(sub(2))
        result = other_global.execute(UpdateItem("t", "X", SetValue(0)))
        kernel.run()
        assert result.ok


class TestDeadlockDetection:
    def make_detecting(self, period=10.0):
        kernel = EventKernel()
        history = History()
        ltm = LocalTransactionManager(
            "a",
            kernel,
            history,
            config=LTMConfig(
                lock_timeout=10_000.0, deadlock_detection_period=period
            ),
        )
        ltm.store.load("t", {"X": 1, "Y": 2})
        return kernel, ltm

    def test_cycle_detected_and_victim_aborted(self):
        kernel, ltm = self.make_detecting()
        t1 = ltm.begin(sub(1))
        t2 = ltm.begin(sub(2))
        t1.execute(UpdateItem("t", "X", SetValue(1)))
        t2.execute(UpdateItem("t", "Y", SetValue(2)))
        kernel.run()
        # Cross: t1 wants Y (held by t2), t2 wants X (held by t1).
        blocked1 = t1.execute(UpdateItem("t", "Y", SetValue(3)))
        blocked2 = t2.execute(UpdateItem("t", "X", SetValue(4)))
        kernel.run(until=kernel.now + 50)
        assert ltm.deadlocks_broken == 1
        # Deterministic victim: the larger id (T2) dies, T1 proceeds.
        assert isinstance(blocked2.error, TransactionAborted)
        assert blocked2.error.reason is RefusalReason.DEADLOCK_VICTIM
        assert blocked1.ok
        t1.commit()
        kernel.run()

    def test_victim_abort_is_unilateral_for_globals(self):
        kernel, ltm = self.make_detecting()
        seen = []
        ltm.on_unilateral_abort(seen.append)
        t1 = ltm.begin(sub(1))
        t2 = ltm.begin(sub(2))
        t1.execute(UpdateItem("t", "X", SetValue(1)))
        t2.execute(UpdateItem("t", "Y", SetValue(2)))
        kernel.run()
        t1.execute(UpdateItem("t", "Y", SetValue(3)))
        t2.execute(UpdateItem("t", "X", SetValue(4)))
        kernel.run(until=kernel.now + 50)
        assert seen == [sub(2)]

    def test_no_false_positives_without_cycle(self):
        kernel, ltm = self.make_detecting()
        t1 = ltm.begin(sub(1))
        t2 = ltm.begin(sub(2))
        t1.execute(UpdateItem("t", "X", SetValue(1)))
        kernel.run()
        blocked = t2.execute(UpdateItem("t", "X", SetValue(2)))
        kernel.run(until=kernel.now + 30)
        assert ltm.deadlocks_broken == 0
        assert not blocked.done
        t1.commit()
        kernel.run()
        assert blocked.ok
        t2.commit()
        kernel.run()

    def test_system_quiesces_with_detector_enabled(self):
        """The demand-driven timer must not keep the kernel alive."""
        kernel, ltm = self.make_detecting()
        t1 = ltm.begin(sub(1))
        t1.execute(ReadItem("t", "X"))
        kernel.run()
        t1.commit()
        kernel.run()
        assert kernel.pending == 0
