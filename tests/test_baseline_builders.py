"""Tests for the documented baseline constructors (repro.baselines)."""

from repro.baselines import build_naive_system, build_ticket_system
from repro.common.ids import global_txn
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.serial import CentralCounterSN
from repro.ldbs.commands import AddValue, UpdateItem


class TestNaiveBuilder:
    def test_builds_naive_method(self):
        system = build_naive_system(sites=("a", "b"))
        assert system.config.method == "naive"
        config = system.certifier("a").config
        assert not config.basic_prepare
        assert not config.commit_certification

    def test_kwargs_forwarded(self):
        system = build_naive_system(sites=("x",), n_coordinators=3)
        assert len(system.coordinators) == 3

    def test_runs_transactions(self):
        system = build_naive_system(sites=("a",))
        system.load("a", "t", {1: 5})
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(("a", UpdateItem("t", 1, AddValue(1))),),
            )
        )
        system.run()
        assert done.value.committed


class TestTicketBuilder:
    def test_builds_ticket_method(self):
        system = build_ticket_system(sites=("a", "b"))
        assert system.config.method == "ticket"
        assert isinstance(system.sn_generator, CentralCounterSN)
        assert all(c.sn_at_begin for c in system.coordinators)

    def test_certifications_stay_on(self):
        system = build_ticket_system()
        config = system.certifier("a").config
        assert config.basic_prepare
        assert config.commit_certification
