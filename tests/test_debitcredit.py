"""Tests for the debit-credit workload (repro.workload.debitcredit)."""

import pytest

from repro.common.errors import ConfigError
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.sim.driver import run_schedule
from repro.sim.failures import RandomFailureInjector
from repro.sim.metrics import audit
from repro.workload.debitcredit import (
    DebitCreditConfig,
    DebitCreditGenerator,
    verify_invariants,
)


class TestConfig:
    def test_defaults_valid(self):
        DebitCreditConfig()

    def test_remote_fraction_bounds(self):
        with pytest.raises(ConfigError):
            DebitCreditConfig(remote_fraction=1.5)

    def test_remote_needs_two_branches(self):
        with pytest.raises(ConfigError):
            DebitCreditConfig(sites=("solo",), remote_fraction=0.2)

    def test_single_branch_all_local_ok(self):
        DebitCreditConfig(sites=("solo",), remote_fraction=0.0)


class TestGeneration:
    def test_deterministic(self):
        config = DebitCreditConfig(n_transactions=20, seed=5)
        first = DebitCreditGenerator(config).generate()
        second = DebitCreditGenerator(config).generate()
        assert first.deltas == second.deltas

    def test_remote_fraction_shapes_multi_site_txns(self):
        config = DebitCreditConfig(
            n_transactions=200, remote_fraction=0.5, seed=2
        )
        generated = DebitCreditGenerator(config).generate()
        remote = sum(
            1
            for home, acct_site, _d in generated.deltas.values()
            if home != acct_site
        )
        assert 0.3 < remote / 200 < 0.7

    def test_all_local_when_zero_remote(self):
        config = DebitCreditConfig(
            n_transactions=50, remote_fraction=0.0, seed=2
        )
        generated = DebitCreditGenerator(config).generate()
        assert all(
            home == acct for home, acct, _d in generated.deltas.values()
        )

    def test_initial_data_shape(self):
        config = DebitCreditConfig(
            accounts_per_branch=7, tellers_per_branch=3
        )
        generated = DebitCreditGenerator(config).generate()
        tables = generated.schedule.initial_data["branch1"]
        assert len(tables["accounts"]) == 7
        assert len(tables["tellers"]) == 3
        assert tables["branch"] == {"balance": 0}

    def test_inquiries_generated(self):
        config = DebitCreditConfig(n_inquiries=5)
        generated = DebitCreditGenerator(config).generate()
        assert generated.schedule.n_local == 5


class TestInvariants:
    def run_bank(self, method="2cm", failures=0.0, seed=4, n=25):
        config = DebitCreditConfig(
            sites=("branch1", "branch2"),
            n_transactions=n,
            remote_fraction=0.3,
            seed=seed,
        )
        generated = DebitCreditGenerator(config).generate()
        system = MultidatabaseSystem(
            SystemConfig(
                sites=config.sites, n_coordinators=2, method=method, seed=seed
            )
        )
        if failures:
            RandomFailureInjector(system, probability=failures, seed=seed)
        result = run_schedule(system, generated.schedule)
        return system, generated, result

    def test_failure_free_books_balance(self):
        system, generated, result = self.run_bank()
        report = verify_invariants(system, generated, result.committed_globals)
        assert report.ok, report.details

    def test_books_balance_under_failures(self):
        """Exactly-once repair: resubmission never double-applies."""
        system, generated, result = self.run_bank(failures=0.5)
        assert system.agents["branch1"].resubmissions + \
            system.agents["branch2"].resubmissions > 0
        report = verify_invariants(system, generated, result.committed_globals)
        assert report.ok, report.details
        assert audit(system).rigor_violations == 0

    def test_invariant_checker_catches_corruption(self):
        system, generated, result = self.run_bank()
        # Corrupt one branch balance behind the checker's back.
        from repro.common.ids import DataItemId, SubtxnId, global_txn

        store = system.ltm("branch1").store
        store.write(
            SubtxnId(global_txn(999), "branch1", 0),
            DataItemId("branch", "balance"),
            123_456,
        )
        report = verify_invariants(system, generated, result.committed_globals)
        assert not report.ok
        assert any("branch1" in line for line in report.details)
