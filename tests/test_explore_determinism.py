"""Determinism regression: same seed + same choice trace ⇒ the same run.

The replay contract is the foundation under shrinking and ``.schedule``
repro files: any trace, however it was produced (random walk, DFS
deviation, shrink candidate, hand edit), must replay to a
byte-identical history fingerprint — including with the WAL-backed
durability layer on and with a multi-coordinator federation.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.explore import (
    ExploreSpec,
    RandomChooser,
    TraceChooser,
    run_once,
    strip_trailing_defaults,
)

_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def walk_specs(draw):
    seed = draw(st.integers(min_value=0, max_value=50))
    walk = draw(st.integers(min_value=0, max_value=50))
    return seed, walk


class TestReplayDeterminism:
    @_SETTINGS
    @given(walk_specs())
    def test_random_walk_replays_byte_identical(self, case):
        seed, walk = case
        spec = ExploreSpec(seed=seed)
        original = run_once(spec, RandomChooser(random.Random(walk)))
        replay = run_once(spec, TraceChooser(original.trace))
        assert replay.fingerprint == original.fingerprint
        assert replay.trace == original.trace
        assert replay.violation_kinds() == original.violation_kinds()

    @_SETTINGS
    @given(walk_specs())
    def test_stripped_trace_replays_identically(self, case):
        seed, walk = case
        spec = ExploreSpec(seed=seed)
        original = run_once(spec, RandomChooser(random.Random(walk)))
        stripped = strip_trailing_defaults(original.trace)
        replay = run_once(spec, TraceChooser(stripped))
        assert replay.fingerprint == original.fingerprint

    @_SETTINGS
    @given(
        st.integers(min_value=0, max_value=20),
        st.lists(
            st.integers(min_value=0, max_value=4), min_size=0, max_size=60
        ),
    )
    def test_arbitrary_int_lists_are_valid_deterministic_traces(
        self, seed, trace
    ):
        # Out-of-range picks degrade to the default, so *any* int list
        # is a valid schedule — the property shrinking relies on.
        spec = ExploreSpec(seed=seed)
        first = run_once(spec, TraceChooser(trace))
        second = run_once(spec, TraceChooser(trace))
        assert first.fingerprint == second.fingerprint


class TestMatrixDeterminism:
    def test_durability_run_replays_byte_identical(self):
        spec = ExploreSpec(durability=True)
        original = run_once(spec, RandomChooser(random.Random(7)))
        replay = run_once(spec, TraceChooser(original.trace))
        assert replay.fingerprint == original.fingerprint

    def test_federation_run_replays_byte_identical(self):
        spec = ExploreSpec(n_coordinators=2)
        original = run_once(spec, RandomChooser(random.Random(7)))
        replay = run_once(spec, TraceChooser(original.trace))
        assert replay.fingerprint == original.fingerprint

    def test_full_matrix_point_replays_byte_identical(self):
        spec = ExploreSpec(
            certifier_engine="indexed", durability=True, n_coordinators=2
        )
        original = run_once(spec, RandomChooser(random.Random(11)))
        replay = run_once(spec, TraceChooser(original.trace))
        assert replay.fingerprint == original.fingerprint
        assert replay.committed == original.committed
        assert replay.aborted == original.aborted
