"""Soak test: everything at once, audited.

One larger run combining every stressor the reproduction models —
multi-site global transactions, local transactions, random unilateral
aborts, a site crash, clock drift, DLU enforcement — and the full
correctness battery at the end.  This is the closest single test to
"the system works".
"""

from repro.core.agent import AgentConfig
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.invariants import check_correctness_invariant
from repro.sim.driver import run_schedule
from repro.sim.failures import RandomFailureInjector, inject_site_crash
from repro.sim.metrics import audit, collect_metrics
from repro.sim.overload import OverloadDrillConfig, run_overload
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def test_soak_everything_at_once():
    system = MultidatabaseSystem(
        SystemConfig(
            sites=("a", "b", "c"),
            n_coordinators=3,
            method="2cm",
            seed=99,
            clock_offsets={"c2": 15.0, "c3": -10.0},
            agent=AgentConfig(alive_check_interval=30.0),
        )
    )
    RandomFailureInjector(system, probability=0.3, seed=99)
    inject_site_crash(system, "b", at=250.0)
    inject_site_crash(system, "a", at=500.0)
    schedule = WorkloadGenerator(
        WorkloadConfig(
            sites=("a", "b", "c"),
            n_global=40,
            n_local=10,
            n_tables=4,
            keys_per_site=40,
            update_fraction=0.6,
            sites_max=2,
            mean_interarrival=12.0,
            seed=99,
        )
    ).generate()
    result = run_schedule(system, schedule)

    metrics = collect_metrics(system, latencies=result.commit_latencies)
    # The run exercised what it was meant to exercise.
    assert metrics.global_committed + metrics.global_aborted == 40
    assert metrics.global_committed >= 25
    assert len(result.local_outcomes) == 10
    assert metrics.unilateral_aborts > 0

    # The paper's guarantees, in full.
    report = audit(system)
    assert report.rigor_violations == 0
    assert not report.distortions.has_global_distortion
    assert report.distortions.commit_graph_cycle is None
    assert report.view_serializability.serializable in (True, None)
    assert check_correctness_invariant(system.history) == []

    # Bookkeeping is clean: nothing leaked anywhere.
    for site in ("a", "b", "c"):
        assert system.ltm(site).active_txns() == []
        assert system.certifier(site).table_size() == 0
        assert not system.guards[site].bound_items()


def test_soak_is_deterministic():
    def run_once():
        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), n_coordinators=2, seed=7)
        )
        RandomFailureInjector(system, probability=0.4, seed=7)
        schedule = WorkloadGenerator(
            WorkloadConfig(sites=("a", "b"), n_global=15, seed=7)
        ).generate()
        run_schedule(system, schedule)
        return system.history.render()

    assert run_once() == run_once()


def test_soak_with_agent_restarts():
    """Random failures + periodic agent restarts, guarantee intact."""
    system = MultidatabaseSystem(
        SystemConfig(
            sites=("a", "b"),
            n_coordinators=2,
            method="2cm",
            seed=17,
            agent=AgentConfig(alive_check_interval=25.0),
        )
    )
    RandomFailureInjector(system, probability=0.3, seed=17)
    for at, site in ((150.0, "a"), (300.0, "b"), (450.0, "a")):
        system.kernel.schedule_at(
            at, lambda s=site: system.agent(s).simulate_restart()
        )
    schedule = WorkloadGenerator(
        WorkloadConfig(
            sites=("a", "b"),
            n_global=25,
            n_local=5,
            keys_per_site=32,
            seed=17,
            mean_interarrival=20.0,
        )
    ).generate()
    run_schedule(system, schedule)

    restarts = sum(system.agent(s).restarts for s in ("a", "b"))
    assert restarts == 3
    report = audit(system)
    assert report.rigor_violations == 0
    assert not report.distortions.has_global_distortion
    assert report.distortions.commit_graph_cycle is None
    assert check_correctness_invariant(system.history) == []
    for site in ("a", "b"):
        assert system.ltm(site).active_txns() == []
        assert system.certifier(site).table_size() == 0


def test_soak_overload_storm():
    """The overload drill as a soak: a 16x storm with unilateral-abort
    pressure, shed by the full protection stack, drained to quiescence,
    with the complete invariant battery (atomicity, view
    serializability, no orphaned PREPARED, empty certifier tables)
    holding at the end."""
    result = run_overload(OverloadDrillConfig(seed=99))
    assert result.ok, result.violations
    # The storm was real (admission control had to turn arrivals away)
    # and the system survived it (work still finished).
    assert result.counters["shed"] > 0
    assert result.committed > 0
    assert result.committed + result.aborted == result.submitted


def test_soak_overload_storm_unprotected_is_still_safe():
    """The same storm without the overload layer: far less goodput, but
    every safety invariant must still hold — shedding is a liveness
    optimisation, never a correctness crutch."""
    result = run_overload(
        OverloadDrillConfig(seed=99, shed=False, n_global=60, n_local=6)
    )
    assert result.ok, result.violations
    assert result.counters["shed"] == 0
