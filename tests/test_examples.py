"""Smoke tests: the example scripts import and run end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


class TestQuickstart:
    def test_runs_and_reports_a_commit(self, capsys):
        module = load("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "committed: True" in out
        assert "alice" in out and "bob" in out

    def test_import_has_no_side_effects(self, capsys):
        load("quickstart")
        assert capsys.readouterr().out == ""


class TestFailureStorm:
    def test_runs_shrunk_storm(self, capsys, monkeypatch):
        module = load("failure_storm")
        # Shrink the sweep: one resilient and one anomaly-prone method,
        # two seeds — enough to exercise every code path in minutes of
        # simulated (not wall-clock) time.
        monkeypatch.setattr(module, "METHODS", ("2cm", "naive"))
        monkeypatch.setattr(module, "SEEDS", (1, 2))
        module.main()
        out = capsys.readouterr().out
        assert "Failure storm" in out
        assert "2cm" in out and "naive" in out

    def test_run_method_returns_triple(self):
        module = load("failure_storm")
        injector, metrics, report = module.run_method("2cm", seed=1)
        assert metrics.global_committed + metrics.global_aborted > 0
        assert injector.injected >= 0
        assert report.rigor_violations == 0


class TestPartitionStorm:
    def test_storm_holds_every_invariant(self, capsys):
        module = load("partition_storm")
        exit_code = module.main(seed=0)
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "Nemesis schedule" in out
        assert "Every invariant held" in out

    def test_import_has_no_side_effects(self, capsys):
        load("partition_storm")
        assert capsys.readouterr().out == ""


class TestOverloadStorm:
    def test_storm_sheds_cleanly(self, capsys):
        module = load("overload_storm")
        exit_code = module.main(seed=1)
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "16x storm, unprotected" in out
        assert "16x storm, protected" in out
        assert "Both runs shed cleanly" in out

    def test_import_has_no_side_effects(self, capsys):
        load("overload_storm")
        assert capsys.readouterr().out == ""
