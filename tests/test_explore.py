"""The schedule explorer: choice points, search, shrink, replay.

The load-bearing assertions:

* the chooser-less kernel path is untouched (goldens elsewhere);
* traces replay deterministically (same trace ⇒ same fingerprint);
* every seeded mutant is *found* by DFS within a small run budget,
  *shrunk* to ≤ 25% of the failing trace, and the shrunk repro
  *replays* with the same violation kinds and fingerprint;
* a healthy system explored the same way reports nothing (the oracle
  does not cry wolf under budgeted fault menus).
"""

import json
import random

import pytest

from repro.explore import (
    ExploreSpec,
    MUTANTS,
    DefaultChooser,
    RandomChooser,
    TraceChooser,
    explore_coverage,
    explore_dfs,
    explore_random,
    load_schedule,
    replay_schedule,
    run_once,
    save_schedule,
    shrink,
    strip_trailing_defaults,
)
from repro.kernel.events import EventKernel


class TestChoicePointAPI:
    def test_no_chooser_returns_default(self):
        kernel = EventKernel()
        assert kernel.choose("tie", 5) == 0

    def test_single_option_never_consults_chooser(self):
        kernel = EventKernel()
        kernel.chooser = DefaultChooser()
        assert kernel.choose("tie", 1) == 0
        assert kernel.chooser.points == []

    def test_chooser_decides_and_is_recorded(self):
        kernel = EventKernel()
        kernel.chooser = TraceChooser([2, 7])
        assert kernel.choose("tie", 4, context="batch") == 2
        assert kernel.choose("msg:PREPARE", 3) == 0  # 7 out of range -> 0
        points = kernel.chooser.points
        assert [p.choice for p in points] == [2, 0]
        assert points[0].kind == "tie" and points[0].context == "batch"

    def test_out_of_range_chooser_result_is_an_error(self):
        from repro.common.errors import SimulationError

        class Bad:
            def choose(self, kind, n, context=None):
                return n

        kernel = EventKernel()
        kernel.chooser = Bad()
        with pytest.raises(SimulationError):
            kernel.choose("tie", 2)

    def test_tie_choice_reorders_same_time_events(self):
        fired = []
        for pick in (0, 1):
            kernel = EventKernel()
            kernel.chooser = TraceChooser([pick])
            kernel.schedule(10.0, lambda: fired.append("first"))
            kernel.schedule(10.0, lambda: fired.append("second"))
            kernel.run()
        assert fired == ["first", "second", "second", "first"]


class TestTraceHelpers:
    def test_strip_trailing_defaults(self):
        assert strip_trailing_defaults([0, 1, 0, 2, 0, 0]) == [0, 1, 0, 2]
        assert strip_trailing_defaults([0, 0]) == []

    def test_random_chooser_is_seed_deterministic(self):
        spec = ExploreSpec()
        first = run_once(spec, RandomChooser(random.Random(3)))
        second = run_once(spec, RandomChooser(random.Random(3)))
        assert first.trace == second.trace
        assert first.fingerprint == second.fingerprint


class TestHealthyExploration:
    def test_default_run_is_clean_and_stable(self):
        spec = ExploreSpec()
        first = run_once(spec, DefaultChooser())
        second = run_once(spec, DefaultChooser())
        assert first.ok and second.ok
        assert first.fingerprint == second.fingerprint
        assert first.committed + first.aborted == spec.n_global

    def test_random_walks_do_not_cry_wolf(self):
        spec = ExploreSpec()
        exploration = explore_random(spec, seed=1, max_runs=6)
        assert not exploration.found, [
            str(v) for f in exploration.failures for v in f.violations
        ]

    def test_coverage_walker_accumulates_features(self):
        spec = ExploreSpec()
        exploration = explore_coverage(spec, seed=1, max_runs=6)
        assert not exploration.found
        assert len(exploration.coverage) > 3


@pytest.mark.parametrize("mutant", sorted(MUTANTS))
class TestMutantGate:
    """The harness's proof: find, shrink, replay — per seeded bug."""

    def test_found_shrunk_replayed(self, mutant, tmp_path):
        spec = ExploreSpec(mutant=mutant)
        exploration = explore_dfs(spec, max_runs=600)
        assert exploration.found, exploration.summary()

        failing = exploration.failures[0]
        expected = set(MUTANTS[mutant].expected_kinds)
        assert failing.violation_kinds() & expected, (
            f"{mutant}: found {failing.violation_kinds()}, "
            f"expected overlap with {expected}"
        )
        # Structured context rides along on every violation.
        violation = failing.violations[0]
        assert violation.context.get("trace_length") == len(failing.trace)
        assert violation.context.get("deviations")

        shrunk = shrink(failing)
        assert shrunk.kinds & expected
        assert shrunk.ratio <= 0.25, shrunk.summary()

        path = tmp_path / f"{mutant}.schedule"
        save_schedule(str(path), shrunk.minimized, found_by="dfs")
        report = replay_schedule(str(path))
        assert report.kinds_match, report.summary()
        assert report.fingerprint_matches, report.summary()

    def test_mutant_is_silent_without_deviations(self, mutant):
        # The bug is *latent*: the default schedule must stay clean, or
        # the mutant would be a broken build, not a search target.
        result = run_once(ExploreSpec(mutant=mutant), DefaultChooser())
        assert result.ok, [str(v) for v in result.violations]


class TestScheduleFiles:
    def test_roundtrip_and_validation(self, tmp_path):
        spec = ExploreSpec(mutant="refuse-blind")
        exploration = explore_dfs(spec, max_runs=600)
        failing = exploration.failures[0]
        path = tmp_path / "repro.schedule"
        save_schedule(str(path), failing, found_by="dfs")

        data = load_schedule(str(path))
        assert data["found_by"] == "dfs"
        assert data["spec"]["mutant"] == "refuse-blind"
        assert data["deviations"]  # human-readable non-default picks

        rebuilt = ExploreSpec.from_dict(dict(data["spec"]))
        assert rebuilt == spec

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.schedule"
        path.write_text(json.dumps({"version": 99, "spec": {}, "trace": []}))
        with pytest.raises(ValueError):
            load_schedule(str(path))


class TestExploreCLI:
    def test_gate_and_replay_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "schedules"
        code = main(
            [
                "explore",
                "--mutant",
                "refuse-blind",
                "--expect-find",
                "--out",
                str(out),
                "--json",
                str(tmp_path / "summary.json"),
            ]
        )
        assert code == 0, capsys.readouterr().out
        schedules = list(out.glob("*.schedule"))
        assert len(schedules) == 1

        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["found"] is True
        record = summary["explorations"][0]
        assert record["replay_ok"] is True
        assert record["shrink_ratio"] <= 0.25

        code = main(["explore", "--replay", str(schedules[0])])
        assert code == 0

    def test_healthy_exploration_exits_zero(self, capsys):
        from repro.__main__ import main

        code = main(["explore", "--strategy", "random", "--runs", "3"])
        assert code == 0, capsys.readouterr().out

    def test_list_mutants(self, capsys):
        from repro.__main__ import main

        assert main(["explore", "--list-mutants"]) == 0
        out = capsys.readouterr().out
        for name in MUTANTS:
            assert name in out
