"""Unit tests for the history model (repro.history.model)."""

import pytest

from repro.common.errors import HistoryError
from repro.common.ids import DataItemId, SubtxnId, global_txn, local_txn
from repro.history.model import History, OpKind

from tests.helpers import HistoryBuilder


class TestRecording:
    def test_ops_keep_recording_order(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "Y").p(1, "a").c(1).cl(1, "a")
        kinds = [op.kind for op in h.history.ops]
        assert kinds == [
            OpKind.READ,
            OpKind.WRITE,
            OpKind.PREPARE,
            OpKind.GLOBAL_COMMIT,
            OpKind.LOCAL_COMMIT,
        ]

    def test_time_monotonicity_enforced(self):
        history = History()
        sub = SubtxnId(global_txn(1), "a", 0)
        history.record_read(5.0, sub, "a", DataItemId("t", "X"), None)
        with pytest.raises(HistoryError):
            history.record_read(4.0, sub, "a", DataItemId("t", "X"), None)

    def test_observer_sees_every_op(self):
        h = HistoryBuilder()
        seen = []
        h.history.subscribe(seen.append)
        h.r(1, "a", "X").c(1)
        assert len(seen) == 2


class TestLabels:
    """The paper-notation rendering used throughout docs and debugging."""

    def test_read_label(self):
        h = HistoryBuilder()
        h.r(1, "a", "X")
        assert h.history.ops[0].label == "R10[t.'X'^a]"

    def test_resubmitted_read_label(self):
        h = HistoryBuilder()
        h.r(1, "a", "X", inc=1)
        assert h.history.ops[0].label == "R11[t.'X'^a]"

    def test_local_txn_label_has_no_incarnation(self):
        h = HistoryBuilder()
        h.r(4, "a", "Q", local=True)
        assert h.history.ops[0].label == "R4[t.'Q'^a]"

    def test_prepare_and_decision_labels(self):
        h = HistoryBuilder()
        h.p(1, "a").c(1).a(2)
        labels = [op.label for op in h.history.ops]
        assert labels == ["P^a_1", "C_1", "A_2"]

    def test_local_commit_abort_labels(self):
        h = HistoryBuilder()
        h.cl(1, "a", inc=1).al(2, "b")
        labels = [op.label for op in h.history.ops]
        assert labels == ["C^a_11", "A^b_20"]

    def test_render_joins_labels(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1)
        assert h.history.render() == "R10[t.'X'^a] C_1"


class TestConflicts:
    def test_rw_conflict_same_item(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(2, "a", "X")
        first, second = h.history.ops
        assert first.conflicts_with(second)

    def test_rr_no_conflict(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").r(2, "a", "X")
        first, second = h.history.ops
        assert not first.conflicts_with(second)

    def test_same_txn_no_conflict(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "X")
        first, second = h.history.ops
        assert not first.conflicts_with(second)

    def test_different_site_no_conflict(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").w(2, "b", "X")
        first, second = h.history.ops
        assert not first.conflicts_with(second)

    def test_resubmissions_of_one_txn_do_not_conflict(self):
        h = HistoryBuilder()
        h.w(1, "a", "X", inc=0).w(1, "a", "X", inc=1)
        first, second = h.history.ops
        assert not first.conflicts_with(second)


class TestProjections:
    def make(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "b", "Z").p(1, "a").p(1, "b").c(1)
        h.cl(1, "a").cl(1, "b")
        h.r(4, "a", "Q", local=True).cl(4, "a", local=True)
        return h.history

    def test_local_projection(self):
        history = self.make()
        sites = {op.site for op in history.local("a")}
        assert sites == {"a"}
        assert len(history.local("a")) == 5

    def test_txn_projection(self):
        history = self.make()
        assert len(history.of_txn(global_txn(1))) == 7
        assert len(history.of_txn(local_txn(4, "a"))) == 2

    def test_sites_and_txns_in_first_use_order(self):
        history = self.make()
        assert history.sites() == ["a", "b"]
        assert history.txns() == [global_txn(1), local_txn(4, "a")]

    def test_globally_committed(self):
        history = self.make()
        assert history.globally_committed() == {global_txn(1)}

    def test_committed_local_txns(self):
        history = self.make()
        assert history.committed_local_txns() == {local_txn(4, "a")}


class TestCompleteness:
    def test_complete_needs_local_commit_at_every_site(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "b", "Z").c(1).cl(1, "a")
        assert h.history.complete_global_txns() == set()
        h.cl(1, "b")
        assert h.history.complete_global_txns() == {global_txn(1)}

    def test_aborted_global_never_complete(self):
        h = HistoryBuilder()
        h.r(2, "a", "X").a(2)
        assert h.history.complete_global_txns() == set()

    def test_unilaterally_aborted_incarnation_does_not_spoil_completeness(self):
        """The H1 shape: the aborted incarnation at site a is part of a
        complete transaction because incarnation 1 committed there."""
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).al(1, "a", inc=0)
        h.r(1, "a", "X", inc=1).cl(1, "a", inc=1)
        assert h.history.complete_global_txns() == {global_txn(1)}
