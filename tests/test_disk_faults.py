"""Disk-fault injection: FaultingFileOps + WAL recovery (unit level).

The chaos drill's disk leg stands on three promises, pinned here
without any process machinery:

* one-shot faults fire at the exact configured call index, raise a
  genuine ``errno.EIO``-carrying ``OSError``, and drop a marker file
  so the next incarnation of the same WAL directory does not
  crash-loop on the same injected fault;
* a torn append persists a *prefix* of the record — real damage the
  recovery scanner must physically truncate away, never bridge;
* an fsync EIO hits the group-commit point *after* the record bytes
  were written and flushed, so a fail-stop process loses no record it
  acted on (the storm invariants depend on exactly this ordering).
"""

import errno
import os

import pytest

from repro.durability.config import DiskFaultConfig
from repro.durability.records import RecordKind
from repro.durability.segments import DiskFault, FaultingFileOps
from repro.durability.wal import DISK_FAULT_MARKER, WriteAheadLog
from repro.durability.segments import SyncPolicy


def _append_n(wal, n, force=True):
    for i in range(n):
        wal.append(RecordKind.COMMAND, {"i": i}, force=force)


class TestFaultingFileOps:
    def test_fsync_one_shot_fires_at_exact_index_with_eio(self, tmp_path):
        marker = str(tmp_path / DISK_FAULT_MARKER)
        ops = FaultingFileOps(
            DiskFaultConfig(fail_fsync_at=3), marker_path=marker
        )
        with open(tmp_path / "f", "wb") as fh:
            ops.fsync(fh)
            ops.fsync(fh)
            with pytest.raises(DiskFault) as err:
                ops.fsync(fh)
            assert err.value.errno == errno.EIO
            # one-shot: fired once, marker dropped, never again
            assert ops.fired and os.path.exists(marker)
            ops.fsync(fh)
        assert ops.fsync_failures == 1

    def test_marker_disarms_one_shots_for_next_incarnation(self, tmp_path):
        marker = str(tmp_path / DISK_FAULT_MARKER)
        config = DiskFaultConfig(fail_fsync_at=1)
        first = FaultingFileOps(config, marker_path=marker)
        with open(tmp_path / "f", "wb") as fh:
            with pytest.raises(DiskFault):
                first.fsync(fh)
        # the respawned process is handed the *same* config by its
        # supervisor; the marker is what breaks the crash loop
        second = FaultingFileOps(config, marker_path=marker)
        with open(tmp_path / "f", "wb") as fh:
            second.fsync(fh)
        assert second.fsync_failures == 0
        assert second.fired  # remembers the past incarnation's fault

    def test_torn_write_persists_a_prefix_then_raises(self, tmp_path):
        ops = FaultingFileOps(DiskFaultConfig(torn_append_at=1, once=False))
        path = tmp_path / "f"
        with open(path, "wb") as fh:
            with pytest.raises(DiskFault):
                ops.write(fh, b"x" * 100)
        assert 0 < path.stat().st_size < 100

    def test_seeded_rates_are_deterministic(self, tmp_path):
        def failures(seed):
            ops = FaultingFileOps(
                DiskFaultConfig(seed=seed, fsync_eio_rate=0.3, once=False)
            )
            out = []
            with open(tmp_path / "f", "wb") as fh:
                for i in range(50):
                    try:
                        ops.fsync(fh)
                        out.append(False)
                    except DiskFault:
                        out.append(True)
            return out

        assert failures(7) == failures(7)
        assert any(failures(7)) and not all(failures(7))
        assert failures(7) != failures(8)


class TestWalUnderDiskFaults:
    def test_fsync_eio_after_write_keeps_the_record_durable(self, tmp_path):
        """The fail-stop contract: when the injected fsync EIO surfaces,
        the record that triggered it is already written+flushed — a
        process that dies on this exception loses nothing it logged."""
        directory = str(tmp_path / "wal")
        wal = WriteAheadLog(
            directory,
            sync_policy=SyncPolicy.always(),
            disk_faults=DiskFaultConfig(fail_fsync_at=2),
        )
        _append_n(wal, 1)
        with pytest.raises(OSError) as err:
            wal.append(RecordKind.COMMAND, {"i": "fatal"}, force=True)
        assert err.value.errno == errno.EIO
        # abandon the handle as a dead process would; reopen and verify
        reopened = WriteAheadLog(directory, sync_policy=SyncPolicy.always())
        bodies = [record.body for record in reopened.recovery.records]
        assert {"i": "fatal"} in bodies
        reopened.close()

    def test_torn_append_is_truncated_on_reopen_not_bridged(self, tmp_path):
        directory = str(tmp_path / "wal")
        wal = WriteAheadLog(
            directory,
            sync_policy=SyncPolicy.always(),
            disk_faults=DiskFaultConfig(torn_append_at=4),
        )
        _append_n(wal, 3)
        with pytest.raises(OSError):
            wal.append(RecordKind.COMMAND, {"i": "torn"}, force=True)

        reopened = WriteAheadLog(directory, sync_policy=SyncPolicy.always())
        bodies = [record.body for record in reopened.recovery.records]
        assert bodies == [{"i": 0}, {"i": 1}, {"i": 2}]  # tail gone for good
        assert reopened.repaired_files >= 1
        # appending after repair continues cleanly from the cut
        _append_n(reopened, 1)
        reopened.close()
        third = WriteAheadLog(directory, sync_policy=SyncPolicy.always())
        assert [r.body for r in third.recovery.records][-1] == {"i": 0}
        third.close()

    def test_marker_survives_in_wal_directory(self, tmp_path):
        directory = str(tmp_path / "wal")
        wal = WriteAheadLog(
            directory,
            sync_policy=SyncPolicy.always(),
            disk_faults=DiskFaultConfig(fail_fsync_at=1),
        )
        with pytest.raises(OSError):
            _append_n(wal, 1)
        assert os.path.exists(os.path.join(directory, DISK_FAULT_MARKER))
        # same config, fresh incarnation: the one-shot must stay dead
        respawn = WriteAheadLog(
            directory,
            sync_policy=SyncPolicy.always(),
            disk_faults=DiskFaultConfig(fail_fsync_at=1),
        )
        _append_n(respawn, 5)
        respawn.close()
