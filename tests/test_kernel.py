"""Unit tests for the discrete-event kernel (repro.kernel)."""

import pytest

from repro.common.errors import SimulationError
from repro.kernel import Event, EventKernel, Process, Sleep, Timer
from repro.kernel.process import spawn


class TestEventKernel:
    def test_time_starts_at_zero(self):
        assert EventKernel().now == 0.0

    def test_schedule_and_run_in_time_order(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(2.0, lambda: fired.append("b"))
        kernel.schedule(1.0, lambda: fired.append("a"))
        kernel.run()
        assert fired == ["a", "b"]
        assert kernel.now == 2.0

    def test_equal_time_events_fire_in_schedule_order(self):
        kernel = EventKernel()
        fired = []
        for name in "abcde":
            kernel.schedule(1.0, lambda n=name: fired.append(n))
        kernel.run()
        assert fired == list("abcde")

    def test_cancel_prevents_firing(self):
        kernel = EventKernel()
        fired = []
        handle = kernel.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        kernel.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventKernel().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        kernel = EventKernel()
        kernel.schedule(5.0, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule_at(1.0, lambda: None)

    def test_run_until_stops_before_future_events(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(10.0, lambda: fired.append("late"))
        kernel.run(until=5.0)
        assert fired == []
        assert kernel.now == 5.0
        kernel.run()
        assert fired == ["late"]

    def test_run_until_advances_time_when_queue_empty(self):
        kernel = EventKernel()
        kernel.run(until=7.0)
        assert kernel.now == 7.0

    def test_nested_scheduling_from_callback(self):
        kernel = EventKernel()
        fired = []

        def outer():
            fired.append(("outer", kernel.now))
            kernel.schedule(1.0, lambda: fired.append(("inner", kernel.now)))

        kernel.schedule(1.0, outer)
        kernel.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_max_events_bound(self):
        kernel = EventKernel()
        fired = []
        for i in range(5):
            kernel.schedule(float(i), lambda i=i: fired.append(i))
        kernel.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_fires_one_event(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1.0, lambda: fired.append(1))
        assert kernel.step() is True
        assert fired == [1]
        assert kernel.step() is False

    def test_pending_count_ignores_cancelled(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda: None)
        handle = kernel.schedule(2.0, lambda: None)
        handle.cancel()
        assert kernel.pending == 1

    def test_run_not_reentrant(self):
        kernel = EventKernel()
        errors = []

        def reenter():
            try:
                kernel.run()
            except SimulationError as exc:
                errors.append(exc)

        kernel.schedule(1.0, reenter)
        kernel.run()
        assert len(errors) == 1


class TestEvent:
    def test_succeed_delivers_value(self):
        kernel = EventKernel()
        event = Event(kernel)
        seen = []
        event.subscribe(lambda ev: seen.append(ev.value))
        event.succeed(42)
        kernel.run()
        assert seen == [42]

    def test_fail_delivers_exception(self):
        kernel = EventKernel()
        event = Event(kernel)
        seen = []
        event.subscribe(lambda ev: seen.append(ev.error))
        failure = RuntimeError("boom")
        event.fail(failure)
        kernel.run()
        assert seen == [failure]

    def test_value_raises_stored_error(self):
        kernel = EventKernel()
        event = Event(kernel)
        event.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            event.value

    def test_value_before_completion_raises(self):
        event = Event(EventKernel())
        with pytest.raises(SimulationError):
            event.value

    def test_double_completion_rejected(self):
        event = Event(EventKernel())
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_late_subscription_still_fires(self):
        kernel = EventKernel()
        event = Event(kernel)
        event.succeed("v")
        kernel.run()
        seen = []
        event.subscribe(lambda ev: seen.append(ev.value))
        kernel.run()
        assert seen == ["v"]

    def test_callbacks_fire_through_kernel_not_synchronously(self):
        kernel = EventKernel()
        event = Event(kernel)
        seen = []
        event.subscribe(lambda ev: seen.append("cb"))
        event.succeed(None)
        assert seen == []  # not yet: delivery goes through the queue
        kernel.run()
        assert seen == ["cb"]


class TestProcess:
    def test_process_sleeps_and_returns(self):
        kernel = EventKernel()

        def body():
            yield Sleep(3.0)
            return "done"

        process = Process(kernel, body(), name="p")
        kernel.run()
        assert process.done
        assert process.completion.value == "done"
        assert kernel.now == 3.0

    def test_process_waits_on_event_value(self):
        kernel = EventKernel()
        gate = Event(kernel)

        def body():
            value = yield gate
            return value * 2

        process = Process(kernel, body())
        kernel.schedule(5.0, lambda: gate.succeed(21))
        kernel.run()
        assert process.completion.value == 42

    def test_event_failure_is_thrown_into_generator(self):
        kernel = EventKernel()
        gate = Event(kernel)
        caught = []

        def body():
            try:
                yield gate
            except RuntimeError as exc:
                caught.append(exc)
                return "recovered"

        process = Process(kernel, body())
        kernel.schedule(1.0, lambda: gate.fail(RuntimeError("x")))
        kernel.run()
        assert process.completion.value == "recovered"
        assert len(caught) == 1

    def test_uncaught_exception_fails_completion(self):
        kernel = EventKernel()

        def body():
            yield Sleep(1.0)
            raise ValueError("bad")

        process = Process(kernel, body())
        kernel.run()
        assert process.done
        assert isinstance(process.completion.error, ValueError)

    def test_interrupt_while_blocked(self):
        kernel = EventKernel()
        gate = Event(kernel)  # never completed
        caught = []

        def body():
            try:
                yield gate
            except RuntimeError as exc:
                caught.append(exc)
            return "aborted"

        process = Process(kernel, body())
        kernel.schedule(2.0, lambda: process.interrupt(RuntimeError("abort")))
        kernel.run()
        assert process.completion.value == "aborted"
        assert len(caught) == 1

    def test_interrupt_after_done_is_noop(self):
        kernel = EventKernel()

        def body():
            return "ok"
            yield  # pragma: no cover

        process = Process(kernel, body())
        kernel.run()
        process.interrupt(RuntimeError("late"))
        kernel.run()
        assert process.completion.value == "ok"

    def test_process_can_wait_on_process(self):
        kernel = EventKernel()

        def child():
            yield Sleep(2.0)
            return 7

        def parent():
            value = yield Process(kernel, child())
            return value + 1

        process = Process(kernel, parent())
        kernel.run()
        assert process.completion.value == 8

    def test_yielding_garbage_fails_process(self):
        kernel = EventKernel()

        def body():
            yield "not-a-waitable"

        process = Process(kernel, body())
        kernel.run()
        assert isinstance(process.completion.error, SimulationError)

    def test_spawn_on_done_callback(self):
        kernel = EventKernel()
        seen = []

        def body():
            yield Sleep(1.0)
            return "v"

        spawn(kernel, body(), on_done=lambda ev: seen.append(ev.value))
        kernel.run()
        assert seen == ["v"]

    def test_interrupt_race_with_completion_event(self):
        """If the awaited event completes and an interrupt lands before the
        continuation runs, the interrupt wins (the paper's abort path must
        dominate a concurrently arriving grant)."""
        kernel = EventKernel()
        gate = Event(kernel)
        outcome = []

        def body():
            try:
                yield gate
                outcome.append("granted")
            except RuntimeError:
                outcome.append("interrupted")

        process = Process(kernel, body())
        kernel.run(max_events=1)  # start the process; it now waits on gate
        gate.succeed("grant")
        process.interrupt(RuntimeError("abort"))
        kernel.run()
        assert outcome == ["interrupted"]
        assert process.done


class TestTimer:
    def test_timer_fires_after_interval(self):
        kernel = EventKernel()
        fired = []
        timer = Timer(kernel, 5.0, lambda: fired.append(kernel.now))
        timer.start()
        kernel.run()
        assert fired == [5.0]

    def test_timer_restart_resets_deadline(self):
        kernel = EventKernel()
        fired = []
        timer = Timer(kernel, 5.0, lambda: fired.append(kernel.now))
        timer.start()
        kernel.schedule(3.0, timer.restart)
        kernel.run()
        assert fired == [8.0]

    def test_timer_cancel(self):
        kernel = EventKernel()
        fired = []
        timer = Timer(kernel, 5.0, lambda: fired.append(1))
        timer.start()
        timer.cancel()
        kernel.run()
        assert fired == []
        assert not timer.armed

    def test_timer_rejects_nonpositive_interval(self):
        with pytest.raises(SimulationError):
            Timer(EventKernel(), 0.0, lambda: None)

    def test_timer_can_rearm_from_callback(self):
        kernel = EventKernel()
        fired = []

        def on_fire():
            fired.append(kernel.now)
            if len(fired) < 3:
                timer.restart()

        timer = Timer(kernel, 2.0, on_fire)
        timer.start()
        kernel.run()
        assert fired == [2.0, 4.0, 6.0]


class TestKernelAccounting:
    """O(1) ``pending`` and tombstone compaction (perf overhaul)."""

    def test_pending_tracks_schedule_fire_cancel(self):
        kernel = EventKernel()
        handles = [kernel.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert kernel.pending == 10
        for handle in handles[:4]:
            handle.cancel()
        assert kernel.pending == 6
        kernel.run()
        assert kernel.pending == 0

    def test_double_cancel_counted_once(self):
        kernel = EventKernel()
        handle = kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert kernel.pending == 1

    def test_cancel_after_fire_is_noop(self):
        kernel = EventKernel()
        handle = kernel.schedule(1.0, lambda: None)
        kernel.run()
        handle.cancel()
        assert kernel.pending == 0

    def test_compaction_shrinks_heap_and_preserves_order(self):
        kernel = EventKernel()
        fired = []
        keep = []
        doomed = []
        # Interleave survivors and cancellations so compaction has to
        # re-heapify a genuinely mixed queue.
        for i in range(300):
            handle = kernel.schedule(float(i + 1), lambda i=i: fired.append(i))
            (doomed if i % 3 else keep).append((i, handle))
        for _, handle in doomed:
            handle.cancel()
        # Enough tombstones relative to heap size -> compaction ran.
        assert len(kernel._queue) < 300
        assert kernel.pending == len(keep)
        kernel.run()
        assert fired == [i for i, _ in keep]

    def test_no_compaction_below_threshold(self):
        kernel = EventKernel()
        handles = [kernel.schedule(float(i + 1), lambda: None) for i in range(40)]
        for handle in handles[:20]:
            handle.cancel()
        # 20 tombstones is under the compaction floor: lazy deletion only.
        assert len(kernel._queue) == 40
        kernel.run()
        assert kernel.pending == 0
        assert kernel._queue == []

    def test_events_fired_excludes_cancelled(self):
        kernel = EventKernel()
        before = kernel.events_fired
        handles = [kernel.schedule(float(i + 1), lambda: None) for i in range(6)]
        handles[0].cancel()
        handles[3].cancel()
        kernel.run()
        assert kernel.events_fired - before == 4


class TestRunContract:
    """``run(until, max_events, advance)`` clock semantics."""

    def test_max_events_break_leaves_now_at_last_fired(self):
        kernel = EventKernel()
        for i in range(5):
            kernel.schedule(float(i + 1), lambda: None)
        kernel.run(until=10.0, max_events=3)
        # Live events remain at 4.0/5.0 <= until: the clock must NOT
        # jump to `until` past events that still have to fire.
        assert kernel.now == 3.0
        assert kernel.pending == 2
        kernel.run(until=10.0)
        assert kernel.now == 10.0
        assert kernel.pending == 0

    def test_max_events_break_advances_when_drained(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run(until=10.0, max_events=1)
        # Queue drained under the bound: behaves like a normal
        # run-until and fast-forwards to the horizon.
        assert kernel.now == 10.0

    def test_advance_false_keeps_clock_at_last_event(self):
        kernel = EventKernel()
        kernel.schedule(2.0, lambda: None)
        kernel.run(until=100.0, advance=False)
        assert kernel.now == 2.0
        assert kernel.pending == 0

    def test_advance_false_on_empty_queue_keeps_clock(self):
        kernel = EventKernel()
        kernel.run(until=100.0, advance=False)
        assert kernel.now == 0.0

    def test_until_still_bounds_with_advance_false(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(1.0, lambda: fired.append(1))
        kernel.schedule(50.0, lambda: fired.append(50))
        kernel.run(until=10.0, advance=False)
        assert fired == [1]
        assert kernel.now == 1.0
        assert kernel.pending == 1


class TestTimerChurn:
    """Carrier-based ``Timer.restart`` must not grow the heap."""

    def test_heavy_restart_keeps_single_heap_entry(self):
        kernel = EventKernel()
        fired = []
        timer = Timer(kernel, 10.0, lambda: fired.append(kernel.now))
        timer.start()
        # A watchdog being petted 1000 times: the naive implementation
        # left 1000 tombstones; the carrier leaves exactly one entry.
        for i in range(1000):
            kernel.run(until=float(i + 1) * 0.005)
            timer.restart()
        assert len(kernel._queue) <= 2
        assert kernel.pending <= 2
        kernel.run()
        # Last restart happened at t=5.0 -> single firing at 15.0.
        assert fired == [15.0]

    def test_restart_after_fire_rearms(self):
        kernel = EventKernel()
        fired = []
        timer = Timer(kernel, 3.0, lambda: fired.append(kernel.now))
        timer.start()
        kernel.run()
        assert fired == [3.0]
        assert not timer.armed
        timer.restart()
        assert timer.armed
        kernel.run()
        assert fired == [3.0, 6.0]

    def test_cancel_between_restarts(self):
        kernel = EventKernel()
        fired = []
        timer = Timer(kernel, 5.0, lambda: fired.append(kernel.now))
        timer.start()
        kernel.run(until=2.0)
        timer.restart()
        timer.cancel()
        assert not timer.armed
        kernel.run()
        assert fired == []

    def test_restart_churn_then_cancel_then_start(self):
        kernel = EventKernel()
        fired = []
        timer = Timer(kernel, 4.0, lambda: fired.append(kernel.now))
        for _ in range(50):
            timer.start()
            timer.cancel()
        timer.start()
        kernel.run()
        assert fired == [4.0]
        assert len(kernel._queue) == 0
