"""Event-order fingerprinting for determinism tests.

The fingerprint digests everything observable about one driven run:
the full rendered history (every recorded operation in order), every
global/local outcome, and the simulated completion time.  Two runs
with the same seed must produce the same fingerprint; the golden
values in ``test_determinism_golden.py`` were captured on the seed
revision so that substrate optimizations can prove they did not
perturb a single event.
"""

from __future__ import annotations

import hashlib

from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.sim.driver import SimulationResult, run_schedule
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def fingerprint(result: SimulationResult) -> str:
    """SHA-256 over the rendered history, outcomes and finish time."""
    system = result.system
    parts = [system.history.render()]
    for txn in sorted(result.global_outcomes):
        out = result.global_outcomes[txn]
        parts.append(
            f"G {txn.label} committed={out.committed} sn={out.sn} "
            f"reason={out.reason!r} latency={out.latency!r}"
        )
    for txn in sorted(result.local_outcomes):
        out = result.local_outcomes[txn]
        parts.append(f"L {txn.label} committed={out.committed} reason={out.reason!r}")
    parts.append(f"finished_at={result.finished_at!r}")
    blob = "\n".join(parts).encode()
    return hashlib.sha256(blob).hexdigest()


def run_seeded_workload(
    seed: int,
    n_global: int = 20,
    n_local: int = 6,
    method: str = "2cm",
    failures: float = 0.0,
    retry_aborted: int = 1,
    **config_overrides,
) -> SimulationResult:
    """One fully seeded end-to-end run (the determinism workhorse).

    Extra keyword arguments land on :class:`SystemConfig` — used by the
    equivalence tests (e.g. ``certifier_engine="indexed"``).
    """
    sites = ("a", "b", "c")
    system = MultidatabaseSystem(
        SystemConfig(
            sites=sites,
            n_coordinators=2,
            method=method,
            seed=seed,
            **config_overrides,
        )
    )
    if failures > 0:
        from repro.sim.failures import RandomFailureInjector

        RandomFailureInjector(system, probability=failures, seed=seed)
    schedule = WorkloadGenerator(
        WorkloadConfig(
            sites=sites,
            n_global=n_global,
            n_local=n_local,
            update_fraction=0.6,
            seed=seed,
            sites_max=2,
        )
    ).generate()
    return run_schedule(system, schedule, retry_aborted=retry_aborted)
