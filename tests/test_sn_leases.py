"""Property suite for the leased-SN federation invariants.

The paper's clock argument split, machine-checked:

* **Uniqueness is unconditional** — allocator grants are disjoint
  across any interleaving of owners, spans, and crash/restart points
  (the LEASE record is forced before the grant returns), and leased
  draws can never collide with a coordinator's emergency HLC fallback
  draws (``seq 0`` vs ``seq >= 1``).
* **Recovery never re-mints** — a restarted coordinator seeded with
  its decision log's lease high-water mark never produces an SN at or
  below anything a previous incarnation could have drawn.
* **Order is a single-clock oracle at span 1** — with one value per
  lease, certification order over the merged draws equals grant order,
  exactly as if every coordinator shared the paper's one clock.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.durability.config import DurabilityConfig
from repro.federation.leases import (
    HLC_TICKS_PER_SECOND,
    Lease,
    LeasedSN,
    SnAllocator,
    open_allocator,
)

_case_counter = itertools.count()

grant_plans = st.lists(
    st.tuples(st.sampled_from(["c1", "c2", "c3"]), st.integers(1, 40)),
    min_size=1,
    max_size=30,
)


class TestGrantDisjointness:
    @given(plan=grant_plans)
    @settings(max_examples=60, deadline=None)
    def test_grants_never_overlap(self, plan):
        allocator = SnAllocator(span=8)
        leases = [allocator.grant(owner, span) for owner, span in plan]
        for a, b in itertools.combinations(leases, 2):
            assert a.hi <= b.lo or b.hi <= a.lo, f"{a} overlaps {b}"
        assert allocator.high_water == max(lease.hi for lease in leases)

    @given(plan=grant_plans, cut=st.integers(0, 29))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_grants_disjoint_across_wal_restart(self, plan, cut, tmp_path):
        """Crash the allocator after an arbitrary prefix of grants; the
        successor (recovering from the WAL) must stay past every range
        the dead incarnation handed out."""
        cut = min(cut, len(plan))
        root = tmp_path / f"case-{next(_case_counter)}"
        config = DurabilityConfig(root=str(root), sync="always")
        allocator = open_allocator(config, span=8)
        before = [allocator.grant(owner, span) for owner, span in plan[:cut]]
        # close only the file handles, as a SIGKILL would; the WAL on
        # disk is whatever the forced grant records left behind
        allocator.wal.close()
        successor = open_allocator(config, span=8)
        after = [successor.grant(owner, span) for owner, span in plan[cut:]]
        for a, b in itertools.combinations(before + after, 2):
            assert a.hi <= b.lo or b.hi <= a.lo, f"{a} overlaps {b}"
        successor.close()

    @given(
        spans=st.lists(st.integers(1, 20), min_size=1, max_size=10),
        clock_s=st.floats(0.0, 1e6, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_hlc_floor_never_lowers_the_high_water(self, spans, clock_s):
        allocator = SnAllocator(clock=lambda: clock_s, span=4)
        previous_hi = 0
        for span in spans:
            lease = allocator.grant("c1", span)
            assert lease.lo >= previous_hi
            assert lease.lo >= int(clock_s * HLC_TICKS_PER_SECOND)
            previous_hi = lease.hi


class TestRecoveryFloor:
    @given(
        high_water=st.integers(1, 10_000),
        draws=st.integers(1, 30),
    )
    @settings(max_examples=60, deadline=None)
    def test_seeded_generator_never_mints_at_or_below_floor(
        self, high_water, draws
    ):
        """The recovered coordinator's emergency fallback draws must
        land strictly above the logged lease high-water mark even with
        a cold (zero) clock — nothing a previous incarnation minted can
        be re-issued."""
        generator = LeasedSN("c1", clock=lambda: 0.0)
        generator.seed_floor(float(high_water))
        for _ in range(draws):
            sn = generator.generate("c1")
            assert sn.clock > high_water

    @given(
        lo=st.integers(1, 1000),
        span=st.integers(1, 50),
        consumed=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_relesased_generator_respects_floor_via_witness_skip(
        self, lo, span, consumed
    ):
        """A freshly granted lease above the floor is usable; the
        skip-ahead keeps draws above every witnessed SN."""
        consumed = min(consumed, span)
        generator = LeasedSN("c1", clock=lambda: 0.0)
        # the dead incarnation held [lo, lo+span) and logged that hi as
        # the high-water mark: everything it drew is < floor
        floor = lo + span
        generator.seed_floor(float(floor))
        generator.feed(Lease(lo=floor, hi=floor + span, owner="c1"))
        seen = set()
        for _ in range(span + consumed):
            sn = generator.generate("c1")
            # >= floor is safe (floor itself was never drawn); the
            # post-lease fallback draws are strictly above everything
            assert sn.clock >= floor
            assert sn not in seen
            seen.add(sn)


class TestSingleClockOracle:
    @given(
        schedule=st.lists(st.sampled_from(["c1", "c2"]), min_size=1, max_size=40)
    )
    @settings(max_examples=60, deadline=None)
    def test_span_one_serializes_draws_in_grant_order(self, schedule):
        """With one value per lease, the merged certification order of
        all coordinators' SNs equals the order the allocator granted
        them — the single-clock oracle the paper assumes."""
        allocator = SnAllocator(span=1)
        generators = {
            name: LeasedSN(name, request_lease=lambda n=name: allocator.grant(n, 1))
            for name in ("c1", "c2")
        }
        draws = [generators[name].generate(name) for name in schedule]
        assert sorted(draws) == draws
        assert len(set(draws)) == len(draws)

    @given(
        schedule=st.lists(
            st.tuples(st.sampled_from(["c1", "c2"]), st.booleans()),
            min_size=1,
            max_size=40,
        ),
        span=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_fallback_and_leased_draws_never_collide(self, schedule, span):
        """Interleave leased draws with emergency fallback draws (the
        allocator 'down' for that draw) across two coordinators: every
        SerialNumber distinct, unconditionally."""
        allocator = SnAllocator(span=span)
        leased = {
            name: LeasedSN(
                name,
                request_lease=lambda n=name: allocator.grant(n),
                clock=lambda: 0.0,
            )
            for name in ("c1", "c2")
        }
        degraded = {
            name: LeasedSN(name, clock=lambda: 0.0) for name in ("c1", "c2")
        }
        draws = []
        for name, use_lease in schedule:
            source = leased[name] if use_lease else degraded[name]
            draws.append(source.generate(name))
        assert len(set(draws)) == len(draws)
        for (name, use_lease), sn in zip(schedule, draws):
            assert sn.site == name
            assert (sn.seq == 0) == use_lease
