"""Edge-case coverage across modules: protocol errors, renderings,
empty inputs, idempotent paths."""

import pytest

from repro.common.errors import SimulationError
from repro.common.ids import SubtxnId, global_txn
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.committed import committed_projection
from repro.history.model import History, OpKind
from repro.kernel import EventKernel
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.net.messages import Message, MsgType

from tests.helpers import HistoryBuilder


class TestAgentProtocolErrors:
    def build(self):
        system = MultidatabaseSystem(SystemConfig(sites=("a",)))
        system.load("a", "t", {1: 1})
        return system

    def test_duplicate_begin_rejected(self):
        system = self.build()
        agent = system.agent("a")
        msg = Message(
            type=MsgType.BEGIN, src="coord:c1", dst="agent:a", txn=global_txn(1)
        )
        agent._on_message(msg)
        with pytest.raises(SimulationError):
            agent._on_message(msg)

    def test_unexpected_message_type_rejected(self):
        system = self.build()
        agent = system.agent("a")
        msg = Message(
            type=MsgType.READY, src="coord:c1", dst="agent:a", txn=global_txn(1)
        )
        with pytest.raises(SimulationError):
            agent._on_message(msg)

    def test_commit_for_unknown_txn_acked(self):
        """Idempotent: a COMMIT the agent no longer knows (it already
        committed, acked and discarded — e.g. after a crash-recovery
        resend) is re-acknowledged, not treated as a protocol error."""
        system = self.build()
        agent = system.agent("a")
        msg = Message(
            type=MsgType.COMMIT, src="coord:c1", dst="agent:a", txn=global_txn(9)
        )
        agent._on_message(msg)  # must not raise
        system.run()
        assert system.network.messages_delivered >= 1

    def test_rollback_for_unknown_txn_acked(self):
        """Idempotent: late/duplicate ROLLBACKs are acknowledged."""
        system = self.build()
        agent = system.agent("a")
        msg = Message(
            type=MsgType.ROLLBACK, src="coord:c1", dst="agent:a", txn=global_txn(9)
        )
        agent._on_message(msg)  # must not raise
        system.run()
        # The coordinator got an ack (its router creates a done event).
        assert system.network.messages_delivered >= 1


class TestCoordinatorProtocolErrors:
    def test_unexpected_message_type_rejected(self):
        system = MultidatabaseSystem(SystemConfig(sites=("a",)))
        coordinator = system.coordinators[0]
        msg = Message(
            type=MsgType.PREPARE, src="agent:a", dst="coord:c1", txn=global_txn(1)
        )
        with pytest.raises(SimulationError):
            coordinator._on_message(msg)


class TestHistoryRenderings:
    def test_render_subset(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "Y").c(1).cl(1, "a")
        reads = [op for op in h.history.ops if op.kind is OpKind.READ]
        assert h.history.render(reads) == "R10[t.'X'^a]"

    def test_restricted_to(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").r(2, "a", "Y")
        only_one = h.history.restricted_to({global_txn(1)})
        assert len(only_one) == 1

    def test_committed_projection_render(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1).cl(1, "a")
        text = committed_projection(h.history).render()
        assert "R10" in text and "C^a_10" in text

    def test_empty_history_helpers(self):
        history = History()
        assert history.sites() == []
        assert history.txns() == []
        assert history.globally_committed() == set()
        assert history.complete_global_txns() == set()
        assert len(history) == 0
        assert committed_projection(history).txns == set()


class TestLtmIdempotencies:
    def test_double_abort_is_noop(self):
        system = MultidatabaseSystem(SystemConfig(sites=("a",)))
        system.load("a", "t", {1: 1})
        ltm = system.ltm("a")
        txn = ltm.begin(SubtxnId(global_txn(1), "a", 0))
        txn.abort()
        txn.abort()  # second abort: silently ignored
        assert ltm.aborts == 1

    def test_abort_after_commit_is_noop(self):
        system = MultidatabaseSystem(SystemConfig(sites=("a",)))
        system.load("a", "t", {1: 1})
        ltm = system.ltm("a")
        txn = ltm.begin(SubtxnId(global_txn(1), "a", 0))
        txn.commit()
        system.run()
        txn.abort()
        assert ltm.commits == 1 and ltm.aborts == 0

    def test_commit_of_unknown_txn_fails_cleanly(self):
        system = MultidatabaseSystem(SystemConfig(sites=("a",)))
        ltm = system.ltm("a")
        event = ltm._commit(SubtxnId(global_txn(9), "a", 0))
        system.run()
        assert isinstance(event.error, SimulationError)


class TestKernelEdge:
    def test_event_value_of_success(self):
        from repro.kernel import Event

        kernel = EventKernel()
        event = Event(kernel)
        event.succeed({"k": 1})
        assert event.value == {"k": 1}
        assert event.ok

    def test_events_fired_counter(self):
        kernel = EventKernel()
        for _ in range(5):
            kernel.call_soon(lambda: None)
        kernel.run()
        assert kernel.events_fired == 5


class TestMetricsEdges:
    def test_abort_rate_with_only_aborts(self):
        from repro.sim.metrics import SystemMetrics

        metrics = SystemMetrics(method="x", global_aborted=5)
        assert metrics.abort_rate == 1.0

    def test_throughput_zero_time(self):
        from repro.sim.metrics import SystemMetrics

        assert SystemMetrics(method="x").throughput == 0.0


class TestOutcomesThroughSystem:
    def test_rollback_everywhere_after_midstream_failure(self):
        """A command failure rolls back *all* begun sites, including the
        failing one, and leaves no agent state behind."""
        system = MultidatabaseSystem(SystemConfig(sites=("a", "b")))
        system.load("a", "t", {1: 1})
        system.load("b", "t", {1: 1})
        from repro.core.coordinator import GlobalTransactionSpec
        from repro.ldbs.ltm import LTMConfig

        # Block site b's row with another owner to force a timeout.
        system.ltms["b"].locks.default_timeout = 20.0
        blocker = system.ltm("b").begin(SubtxnId(global_txn(99), "b", 0))
        blocker.execute(UpdateItem("t", 1, AddValue(1)))
        system.run(until=5.0)
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(
                    ("a", UpdateItem("t", 1, AddValue(5))),
                    ("b", UpdateItem("t", 1, AddValue(5))),
                ),
            )
        )
        system.run(until=100.0)
        assert done.done and not done.value.committed
        blocker.abort()
        system.run()
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        assert snapshot[1] == 1  # site a's tentative update undone
        assert system.ltm("a").active_txns() == []


class TestLockIntrospection:
    def test_waiting_and_held_by(self):
        from repro.ldbs.locks import LockManager, LockMode

        kernel = EventKernel()
        lm = LockManager(kernel)
        a = SubtxnId(global_txn(1), "a", 0)
        b = SubtxnId(global_txn(2), "a", 0)
        resource = ("row", 1)
        lm.acquire(a, resource, LockMode.X)
        lm.acquire(b, resource, LockMode.X)
        assert lm.waiting(resource) == [b]
        assert lm.held_by(a) == {resource: LockMode.X}
        assert lm.held_by(b) == {}
        assert lm.waiting(("row", 2)) == []
        assert lm.has_waiters

    def test_release_of_unheld_resource_is_noop(self):
        from repro.ldbs.locks import LockManager

        kernel = EventKernel()
        lm = LockManager(kernel)
        lm.release(SubtxnId(global_txn(1), "a", 0), ("row", 1))  # no raise


class TestAgentLogRecoveryFields:
    def test_entries_in_order_with_coordinator(self):
        from repro.core.agent_log import AgentLog

        log = AgentLog("a")
        log.open(global_txn(2), coordinator="coord:c2")
        log.open(global_txn(1), coordinator="coord:c1")
        entries = log.entries()
        assert [e.txn for e in entries] == [global_txn(1), global_txn(2)]
        assert entries[0].coordinator == "coord:c1"

    def test_note_resubmission_persists_count(self):
        from repro.core.agent_log import AgentLog

        log = AgentLog("a")
        log.open(global_txn(1))
        log.note_resubmission(global_txn(1))
        log.note_resubmission(global_txn(1))
        assert log.entry(global_txn(1)).incarnations == 3

    def test_committed_sn_register_monotone(self):
        from repro.common.ids import SerialNumber
        from repro.core.agent_log import AgentLog

        log = AgentLog("a")
        log.record_committed_sn(SerialNumber(5.0, "c1"))
        log.record_committed_sn(SerialNumber(3.0, "c1"))
        log.record_committed_sn(None)
        assert log.max_committed_sn == SerialNumber(5.0, "c1")


class TestTimelineSitesParameter:
    def test_explicit_lanes(self):
        from repro.sim.timeline import render_timeline

        h = HistoryBuilder()
        h.r(1, "a", "X").r(1, "b", "Y")
        text = render_timeline(h.history, sites=["b"])
        header = text.splitlines()[0]
        assert "b" in header and "@global" in header


class TestAdversaryConfig:
    def test_describe_mentions_all_fields(self):
        import random

        from repro.sim.adversary import draw_config

        config = draw_config(random.Random(1))
        text = config.describe()
        assert "t2@C1+" in text and "local@C1+" in text and "abort@" in text

    def test_clean_template_run_under_2cm(self):
        import random

        from repro.sim.adversary import draw_config, run_template

        config = draw_config(random.Random(5))
        assert run_template("2cm", config) is True
