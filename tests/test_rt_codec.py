"""Wire codec coverage: every message type round-trips; damage is refused.

Satellite of the runtime PR: the codec carries the *existing*
``net/messages.py`` envelopes — including the session layer's
``(epoch, seq)`` stamp and the overload layer's ``deadline`` — so
every field of every message kind must survive the wire byte-exactly,
and a truncated, corrupt, or foreign-version frame must be rejected
rather than half-decoded.
"""

import struct

import pytest

from repro.common.errors import RefusalReason
from repro.common.ids import SerialNumber, global_txn
from repro.ldbs.commands import AddValue, UpdateItem
from repro.net.messages import Message, MsgType
from repro.rt.codec import (
    FRAME_CONTROL,
    FRAME_HELLO,
    FRAME_MESSAGE,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    CorruptFrame,
    FrameDecoder,
    TruncatedFrame,
    WireError,
    WireVersionMismatch,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)

_HEADER = struct.Struct("<II")


def _sample_message(msg_type: MsgType) -> Message:
    """A representative envelope for ``msg_type`` with every field set
    the way the protocol actually sets it."""
    transport_internal = msg_type in (MsgType.ACK, MsgType.PING, MsgType.PONG)
    return Message(
        type=msg_type,
        src="coord:c1",
        dst="agent:branch1",
        txn=None if transport_internal else global_txn(7),
        payload=(
            (0, 3)
            if msg_type is MsgType.ACK
            else UpdateItem("accounts", 42, AddValue(-50))
        ),
        sn=SerialNumber(12.5, "c1", 3) if msg_type is MsgType.PREPARE else None,
        reason=(
            RefusalReason.ALIVE_INTERSECTION
            if msg_type is MsgType.REFUSE
            else None
        ),
        session=None if transport_internal else (2, 9),
        deadline=1234.5 if msg_type in (MsgType.BEGIN, MsgType.PREPARE) else None,
    )


@pytest.mark.parametrize("msg_type", list(MsgType), ids=lambda t: t.value)
def test_round_trip_every_message_type(msg_type):
    original = _sample_message(msg_type)
    decoded = decode_message(encode_message(original))
    assert decoded.type is original.type
    assert decoded.src == original.src
    assert decoded.dst == original.dst
    assert decoded.txn == original.txn
    assert decoded.payload == original.payload
    assert decoded.sn == original.sn
    assert decoded.reason is original.reason
    assert decoded.seq == original.seq
    assert decoded.session == original.session
    assert decoded.deadline == original.deadline


def test_deadline_stamped_envelope_survives():
    message = _sample_message(MsgType.PREPARE)
    assert message.deadline is not None and message.sn is not None
    decoded = decode_message(encode_message(message))
    assert decoded.deadline == message.deadline
    assert decoded.sn == message.sn
    assert decoded.session == (2, 9)


def test_hello_and_control_frames_round_trip():
    hello = encode_frame(FRAME_HELLO, {"name": "agent-branch1", "boot": "abc"})
    kind, body, end = decode_frame(hello)
    assert (kind, end) == (FRAME_HELLO, len(hello))
    assert body == {"name": "agent-branch1", "boot": "abc"}

    control = encode_frame(
        FRAME_CONTROL, {"dst": "ctl:agent:branch1", "op": "stats"}
    )
    kind, body, _ = decode_frame(control)
    assert kind == FRAME_CONTROL
    assert body["op"] == "stats"


def test_truncated_frames_ask_for_more_bytes():
    frame = encode_message(_sample_message(MsgType.COMMIT))
    for cut in (0, 1, _HEADER.size - 1, _HEADER.size, len(frame) - 1):
        with pytest.raises(TruncatedFrame):
            decode_frame(frame[:cut])


def test_corrupt_crc_rejected():
    frame = bytearray(encode_message(_sample_message(MsgType.READY)))
    frame[-1] ^= 0xFF  # damage the payload, keep the declared CRC
    with pytest.raises(CorruptFrame):
        decode_frame(bytes(frame))


def test_cross_version_refused():
    frame = bytearray(encode_message(_sample_message(MsgType.BEGIN)))
    # rewrite the version byte and re-seal the CRC so only the version
    # check can object.
    length, _crc = _HEADER.unpack_from(frame, 0)
    frame[_HEADER.size] = WIRE_VERSION + 1
    import zlib

    payload = bytes(frame[_HEADER.size : _HEADER.size + length])
    _HEADER.pack_into(frame, 0, length, zlib.crc32(payload))
    with pytest.raises(WireVersionMismatch):
        decode_frame(bytes(frame))


def test_unknown_kind_rejected():
    frame = bytearray(encode_frame(FRAME_HELLO, {"name": "x", "boot": "y"}))
    length, _crc = _HEADER.unpack_from(frame, 0)
    frame[_HEADER.size + 1] = 250  # not a registered frame kind
    import zlib

    payload = bytes(frame[_HEADER.size : _HEADER.size + length])
    _HEADER.pack_into(frame, 0, length, zlib.crc32(payload))
    with pytest.raises(CorruptFrame):
        decode_frame(bytes(frame))


def test_oversized_declared_length_is_corruption_not_buffering():
    bogus = _HEADER.pack(MAX_FRAME_BYTES + 1, 0) + b"x"
    with pytest.raises(CorruptFrame):
        decode_frame(bogus)


def test_encode_rejects_unknown_kind():
    with pytest.raises(WireError):
        encode_frame(99, {})


def test_streaming_decoder_reassembles_byte_by_byte():
    messages = [
        _sample_message(MsgType.PREPARE),
        _sample_message(MsgType.COMMIT),
        _sample_message(MsgType.ROLLBACK_ACK),
    ]
    stream = b"".join(encode_message(m) for m in messages)
    decoder = FrameDecoder()
    received = []
    for i in range(len(stream)):
        received.extend(decoder.feed(stream[i : i + 1]))
    assert [kind for kind, _ in received] == [FRAME_MESSAGE] * 3
    decoded = [
        __import__("repro.rt.codec", fromlist=["message_from_body"])
        .message_from_body(body)
        for _, body in received
    ]
    assert [m.type for m in decoded] == [m.type for m in messages]
    assert decoder.pending_bytes == 0


def test_streaming_decoder_surfaces_corruption():
    good = encode_message(_sample_message(MsgType.COMMAND))
    bad = bytearray(encode_message(_sample_message(MsgType.COMMAND_RESULT)))
    bad[-2] ^= 0x55
    decoder = FrameDecoder()
    with pytest.raises(CorruptFrame):
        decoder.feed(good + bytes(bad))
