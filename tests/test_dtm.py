"""Tests for the system façade (repro.core.dtm)."""

import pytest

from repro.common.errors import ConfigError, RefusalReason
from repro.common.ids import global_txn
from repro.core.certifier import CommitOrderPolicy
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import (
    METHODS,
    MultidatabaseSystem,
    SystemConfig,
    certifier_config_for,
)
from repro.core.serial import CentralCounterSN, RealTimeClockSN
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.ldbs.dlu import DLUPolicy


class TestSystemConfig:
    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(method="3pc")

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(sites=("a", "a"))

    def test_zero_coordinators_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(n_coordinators=0)

    def test_all_methods_buildable(self):
        for method in METHODS:
            system = MultidatabaseSystem(SystemConfig(method=method))
            assert system.config.method == method


class TestMethodPresets:
    def test_2cm_everything_on(self):
        config = certifier_config_for("2cm")
        assert config.basic_prepare
        assert config.prepare_extension
        assert config.commit_certification
        assert config.commit_order is CommitOrderPolicy.SERIAL_NUMBER

    def test_noext_disables_only_extension(self):
        config = certifier_config_for("2cm-noext")
        assert config.basic_prepare and config.commit_certification
        assert not config.prepare_extension

    def test_nocommitcert(self):
        config = certifier_config_for("2cm-nocommitcert")
        assert not config.commit_certification
        assert config.basic_prepare

    def test_prepare_order_policy(self):
        config = certifier_config_for("2cm-prepare-order")
        assert config.commit_order is CommitOrderPolicy.PREPARE_ORDER

    def test_naive_everything_off(self):
        config = certifier_config_for("naive")
        assert not (
            config.basic_prepare
            or config.prepare_extension
            or config.commit_certification
        )

    def test_cgm_uses_naive_certifiers(self):
        config = certifier_config_for("cgm")
        assert not config.basic_prepare

    def test_unknown_method_raises(self):
        with pytest.raises(ConfigError):
            certifier_config_for("nope")


class TestWiring:
    def test_one_agent_certifier_ltm_per_site(self):
        system = MultidatabaseSystem(SystemConfig(sites=("a", "b", "c")))
        for site in ("a", "b", "c"):
            assert system.agent(site).site == site
            assert system.certifier(site).site == site
            assert system.ltm(site).site == site

    def test_ticket_forces_central_counter_and_sn_at_begin(self):
        system = MultidatabaseSystem(SystemConfig(method="ticket"))
        assert isinstance(system.sn_generator, CentralCounterSN)
        assert all(c.sn_at_begin for c in system.coordinators)

    def test_clock_generator_by_default(self):
        system = MultidatabaseSystem(SystemConfig())
        assert isinstance(system.sn_generator, RealTimeClockSN)

    def test_cgm_attaches_scheduler_and_observers(self):
        system = MultidatabaseSystem(SystemConfig(method="cgm"))
        assert system.scheduler is not None
        for site in system.config.sites:
            assert system.agent(site).on_ready_observers

    def test_non_cgm_has_no_scheduler(self):
        assert MultidatabaseSystem(SystemConfig()).scheduler is None

    def test_dlu_policy_propagates(self):
        system = MultidatabaseSystem(
            SystemConfig(dlu_policy=DLUPolicy.VIOLATE)
        )
        assert system.guards["a"].policy is DLUPolicy.VIOLATE

    def test_unknown_site_access_rejected(self):
        system = MultidatabaseSystem(SystemConfig())
        with pytest.raises(ConfigError):
            system.ltm("zz")

    def test_submit_rejects_unknown_site(self):
        system = MultidatabaseSystem(SystemConfig())
        spec = GlobalTransactionSpec(
            txn=global_txn(1), steps=(("zz", ReadItem("t", "X")),)
        )
        with pytest.raises(ConfigError):
            system.submit(spec)

    def test_round_robin_coordinators(self):
        system = MultidatabaseSystem(SystemConfig(n_coordinators=2))
        system.load("a", "t", {"X": 1})
        spec1 = GlobalTransactionSpec(
            txn=global_txn(1), steps=(("a", ReadItem("t", "X")),)
        )
        spec2 = GlobalTransactionSpec(
            txn=global_txn(2), steps=(("a", ReadItem("t", "X")),)
        )
        system.submit(spec1)
        system.submit(spec2)
        system.run()
        assert system.coordinators[0].committed == 1
        assert system.coordinators[1].committed == 1


class TestLocalSubmission:
    def test_local_transaction_commits(self):
        system = MultidatabaseSystem(SystemConfig())
        system.load("a", "t", {"X": 1})
        done = system.submit_local("a", [UpdateItem("t", "X", AddValue(5))])
        system.run()
        outcome = done.value
        assert outcome.committed
        assert outcome.txn.is_local
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot("t").items()}
        assert snapshot["X"] == 6

    def test_local_numbers_auto_assigned_unique(self):
        system = MultidatabaseSystem(SystemConfig())
        system.load("a", "t", {"X": 1})
        first = system.submit_local("a", [ReadItem("t", "X")])
        second = system.submit_local("a", [ReadItem("t", "X")])
        system.run()
        assert first.value.txn != second.value.txn

    def test_local_abort_reported(self):
        system = MultidatabaseSystem(SystemConfig())
        system.load("a", "t", {"X": 1})
        # Hold an X lock with a global subtransaction, then time out.
        from repro.common.ids import SubtxnId

        system.ltms["a"].locks.default_timeout = 20.0
        holder = system.ltm("a").begin(SubtxnId(global_txn(9), "a", 0))
        holder.execute(UpdateItem("t", "X", AddValue(1)))
        system.run(until=5.0)
        done = system.submit_local("a", [UpdateItem("t", "X", AddValue(1))])
        system.run(until=50.0)
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.LOCK_TIMEOUT
        holder.abort()
        system.run()


class TestClockDrift:
    def test_offsets_applied_to_coordinator_clocks(self):
        system = MultidatabaseSystem(
            SystemConfig(n_coordinators=2, clock_offsets={"c2": 100.0})
        )
        sn1 = system.sn_generator.generate("c1")
        sn2 = system.sn_generator.generate("c2")
        assert sn2.clock - sn1.clock == 100.0


class TestHeterogeneity:
    """Per-site LDBS characteristics (the paper's D-autonomy)."""

    def test_ltm_overrides_apply_per_site(self):
        from repro.ldbs.ltm import LTMConfig

        system = MultidatabaseSystem(
            SystemConfig(
                sites=("ingres", "sybase"),
                ltm=LTMConfig(op_duration=1.0),
                ltm_overrides={"ingres": LTMConfig(op_duration=4.0)},
            )
        )
        assert system.ltm("ingres").config.op_duration == 4.0
        assert system.ltm("sybase").config.op_duration == 1.0

    def test_agent_overrides_apply_per_site(self):
        from repro.core.agent import AgentConfig

        system = MultidatabaseSystem(
            SystemConfig(
                sites=("a", "b"),
                agent=AgentConfig(alive_check_interval=50.0),
                agent_overrides={"b": AgentConfig(alive_check_interval=5.0)},
            )
        )
        assert system.agent("a").config.alive_check_interval == 50.0
        assert system.agent("b").config.alive_check_interval == 5.0

    def test_unknown_override_site_rejected(self):
        from repro.ldbs.ltm import LTMConfig

        with pytest.raises(ConfigError):
            SystemConfig(
                sites=("a",), ltm_overrides={"zz": LTMConfig()}
            )

    def test_heterogeneous_sites_interoperate(self):
        """A slow LDBS with active deadlock detection federates with a
        fast timeout-based one; a cross-site transaction still commits
        and audits clean."""
        from repro.ldbs.ltm import LTMConfig
        from repro.core.coordinator import GlobalTransactionSpec
        from repro.sim.metrics import audit as _audit

        system = MultidatabaseSystem(
            SystemConfig(
                sites=("ingres", "sybase"),
                ltm_overrides={
                    "ingres": LTMConfig(
                        op_duration=3.0,
                        lock_timeout=500.0,
                        deadlock_detection_period=20.0,
                    ),
                    "sybase": LTMConfig(op_duration=0.5, lock_timeout=60.0),
                },
            )
        )
        system.load("ingres", "t", {1: 10})
        system.load("sybase", "t", {1: 20})
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(
                    ("ingres", UpdateItem("t", 1, AddValue(1))),
                    ("sybase", UpdateItem("t", 1, AddValue(-1))),
                ),
            )
        )
        system.run()
        assert done.value.committed
        assert _audit(system).ok
