"""Focused tests for the Coordinator and transaction specs."""

import pytest

from repro.common.errors import SimulationError
from repro.common.ids import global_txn, local_txn
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.net.network import LatencyModel
from repro.sim.metrics import audit


class TestSpec:
    def test_sites_in_first_use_order(self):
        spec = GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("b", ReadItem("t", 1)),
                ("a", ReadItem("t", 2)),
                ("b", ReadItem("t", 3)),
            ),
        )
        assert spec.sites == ["b", "a"]

    def test_local_txn_id_rejected(self):
        with pytest.raises(SimulationError):
            GlobalTransactionSpec(
                txn=local_txn(1, "a"), steps=(("a", ReadItem("t", 1)),)
            )

    def test_empty_steps_rejected(self):
        with pytest.raises(SimulationError):
            GlobalTransactionSpec(txn=global_txn(1), steps=())

    def test_from_site_commands_orders_by_site(self):
        spec = GlobalTransactionSpec.from_site_commands(
            global_txn(1),
            {
                "b": [ReadItem("t", 1), ReadItem("t", 2)],
                "a": [ReadItem("t", 3)],
            },
        )
        assert [site for site, _ in spec.steps] == ["a", "b", "b"]

    def test_think_time_propagates(self):
        spec = GlobalTransactionSpec.from_site_commands(
            global_txn(1), {"a": [ReadItem("t", 1)]}, think_time=5.0
        )
        assert spec.think_time == 5.0


class TestOutcome:
    def build(self):
        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), latency=LatencyModel(base=5.0))
        )
        system.load("a", "t", {1: 10})
        system.load("b", "t", {2: 20})
        return system

    def test_latency_measured_from_submission(self):
        system = self.build()
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(("a", ReadItem("t", 1)),),
                think_time=13.0,
            )
        )
        system.run()
        outcome = done.value
        assert outcome.latency >= 13.0
        assert outcome.finished_at > outcome.started_at

    def test_results_align_with_steps(self):
        system = self.build()
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1),
                steps=(
                    ("a", ReadItem("t", 1)),
                    ("b", UpdateItem("t", 2, AddValue(1))),
                ),
            )
        )
        system.run()
        results = done.value.results
        assert len(results) == 2
        assert results[0].rows == ((1, 10),)
        assert results[1].affected == 1

    def test_decisions_logged_counter(self):
        system = self.build()
        system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1), steps=(("a", ReadItem("t", 1)),)
            )
        )
        system.run()
        assert system.coordinators[0].decisions_logged == 1

    def test_single_site_transaction_still_runs_full_2pc(self):
        """The paper's protocol does not special-case one participant."""
        system = self.build()
        done = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1), steps=(("a", ReadItem("t", 1)),)
            )
        )
        system.run()
        assert done.value.committed
        kinds = [op.kind.value for op in system.history.ops]
        assert "P" in kinds  # prepared even with one participant
        assert audit(system).ok

    def test_many_sequential_transactions_one_coordinator(self):
        system = self.build()
        for number in range(1, 11):
            done = system.submit(
                GlobalTransactionSpec(
                    txn=global_txn(number),
                    steps=(("a", UpdateItem("t", 1, AddValue(1))),),
                ),
                coordinator=0,
            )
            system.run()
            assert done.value.committed
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        assert snapshot[1] == 20
        assert system.coordinators[0].committed == 10

    def test_sn_uniqueness_across_transactions(self):
        system = self.build()
        sns = []
        for number in range(1, 6):
            done = system.submit(
                GlobalTransactionSpec(
                    txn=global_txn(number), steps=(("a", ReadItem("t", 1)),)
                )
            )
            system.run()
            sns.append(done.value.sn)
        assert len(set(sns)) == 5
        assert sns == sorted(sns)  # drawn later -> bigger


class TestClockRates:
    def test_rate_skewed_clock_accelerates_sns(self):
        system = MultidatabaseSystem(
            SystemConfig(
                sites=("a",),
                n_coordinators=2,
                clock_rates={"c2": 1.0},  # c2's clock runs 2x
            )
        )
        system.load("a", "t", {1: 1})
        first = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(1), steps=(("a", ReadItem("t", 1)),)
            ),
            coordinator=0,
        )
        system.run()
        second = system.submit(
            GlobalTransactionSpec(
                txn=global_txn(2), steps=(("a", ReadItem("t", 1)),)
            ),
            coordinator=1,
        )
        system.run()
        # c2's reading is roughly double the simulated time.
        assert second.value.sn.clock > 1.5 * first.value.sn.clock
