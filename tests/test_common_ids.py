"""Unit tests for identifier types (repro.common.ids)."""

import pytest

from repro.common.ids import (
    DataItemId,
    SerialNumber,
    SubtxnId,
    TxnId,
    global_txn,
    local_txn,
    qualified_item,
)


class TestTxnId:
    def test_global_label(self):
        assert global_txn(1).label == "T1"

    def test_local_label(self):
        assert local_txn(4, "a").label == "L4"

    def test_local_requires_site(self):
        with pytest.raises(ValueError):
            TxnId(number=4, is_local=True)

    def test_global_rejects_site(self):
        with pytest.raises(ValueError):
            TxnId(number=1, is_local=False, site="a")

    def test_equality_and_hash(self):
        assert global_txn(3) == global_txn(3)
        assert hash(global_txn(3)) == hash(global_txn(3))
        assert global_txn(3) != local_txn(3, "a")

    def test_ordering_is_deterministic(self):
        ids = [local_txn(1, "b"), global_txn(2), global_txn(1), local_txn(1, "a")]
        ordered = sorted(ids)
        # Sorted by number first, locals after globals within a number.
        assert ordered == [
            global_txn(1),
            local_txn(1, "a"),
            local_txn(1, "b"),
            global_txn(2),
        ]

    def test_str_matches_label(self):
        assert str(global_txn(7)) == "T7"


class TestSubtxnId:
    def test_label_matches_paper_notation(self):
        sub = SubtxnId(global_txn(1), "a", 0)
        assert sub.label == "T10^a"

    def test_local_subtxn_label_has_no_incarnation(self):
        sub = SubtxnId(local_txn(4, "a"), "a")
        assert sub.label == "L4^a"

    def test_resubmitted_increments_incarnation(self):
        sub = SubtxnId(global_txn(1), "a", 0)
        nxt = sub.resubmitted()
        assert nxt.incarnation == 1
        assert nxt.txn == sub.txn
        assert nxt.site == sub.site

    def test_ordering_by_incarnation(self):
        s0 = SubtxnId(global_txn(1), "a", 0)
        s1 = s0.resubmitted()
        assert s0 < s1


class TestSerialNumber:
    def test_orders_by_clock_first(self):
        assert SerialNumber(1.0, "z") < SerialNumber(2.0, "a")

    def test_site_breaks_clock_ties(self):
        assert SerialNumber(1.0, "a") < SerialNumber(1.0, "b")

    def test_seq_breaks_full_ties(self):
        assert SerialNumber(1.0, "a", 0) < SerialNumber(1.0, "a", 1)

    def test_uniqueness_under_equality(self):
        assert SerialNumber(1.0, "a", 0) == SerialNumber(1.0, "a", 0)


class TestDataItemId:
    def test_label(self):
        assert DataItemId("acct", "X").label == "acct['X']"

    def test_hashable_with_heterogeneous_keys(self):
        items = {DataItemId("t", 1), DataItemId("t", "1"), DataItemId("t", (1, 2))}
        assert len(items) == 3

    def test_equality(self):
        assert DataItemId("t", 1) == DataItemId("t", 1)
        assert DataItemId("t", 1) != DataItemId("u", 1)

    def test_deterministic_ordering_across_key_types(self):
        a = DataItemId("t", 1)
        b = DataItemId("t", "x")
        assert (a < b) != (b < a)

    def test_qualified_item(self):
        item = DataItemId("t", "X")
        assert qualified_item("a", item) == ("a", item)


class TestPickleBoundary:
    """Ids cache their hash; the cache must never cross a pickle boundary.

    ``hash(str)`` (and ``hash(None)`` before 3.12) is salted per
    process, so an id pickled by one process and unpickled by another —
    a WAL replay or a wire transfer — would otherwise carry the dead
    process's hash and silently fail set/dict lookups against fresh
    ids.  That exact failure made a recovered agent treat its
    locally-committed subtransactions as aborted and re-apply them.
    """

    def test_unpickled_under_foreign_hash_seed_matches_fresh(self, tmp_path):
        import os
        import pickle
        import subprocess
        import sys
        import textwrap

        blob_path = tmp_path / "ids.pickle"
        script = textwrap.dedent(
            """
            import pickle, sys
            sys.path.insert(0, sys.argv[1])
            from repro.common.ids import (
                DataItemId, SubtxnId, global_txn, local_txn,
            )
            ids = [
                global_txn(2),
                local_txn(3, "branch1"),
                SubtxnId(global_txn(2), "branch1", 0),
                DataItemId("accounts", 17),
            ]
            with open(sys.argv[2], "wb") as fh:
                pickle.dump(ids, fh)
            """
        )
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        )
        # Two foreign seeds: at least one differs from this process's.
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            subprocess.run(
                [sys.executable, "-c", script, repo_src, str(blob_path)],
                check=True,
                env=env,
            )
            restored = pickle.loads(blob_path.read_bytes())
            fresh = [
                global_txn(2),
                local_txn(3, "branch1"),
                SubtxnId(global_txn(2), "branch1", 0),
                DataItemId("accounts", 17),
            ]
            assert restored == fresh
            for got, want in zip(restored, fresh):
                assert hash(got) == hash(want)
                assert got in {want}  # membership exercises the hash
