"""Wire-level robustness under the nemesis (satellite regression).

Two promises the chaos drill leans on, pinned at the smallest scale
that exercises them over real sockets:

1. A hard connection reset that cuts a frame mid-stream never yields a
   phantom dispatch — the codec's ``TruncatedFrame`` is "feed me more
   bytes", and a connection that dies before the rest arrives simply
   drops the partial buffer with the connection.
2. The session layer's go-back-N retransmission redelivers the window
   lost to a nemesis reset **exactly once** — no lost messages, no
   duplicate dispatches — once the link heals.
"""

import asyncio

import pytest

from repro.common.ids import global_txn
from repro.net.messages import Message, MsgType
from repro.net.reliable import ReliableConfig
from repro.rt.codec import (
    FRAME_MESSAGE,
    FrameDecoder,
    encode_frame,
    encode_message,
)
from repro.rt.host import ProtocolHost
from repro.rt.nemesis import NemesisProxy, link_key

FAST = ReliableConfig(
    rto=0.2, backoff=2.0, max_rto=1.0, jitter=0.0, max_retries=200
)


def _msg(n: int, payload: str) -> Message:
    return Message(
        MsgType.COMMAND,
        src="ep:a",
        dst="ep:b",
        txn=global_txn(n),
        payload=payload,
    )


async def _wait_for(cond, timeout: float = 15.0, what: str = "condition"):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not cond():
        if loop.time() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.02)


def test_decoder_buffers_partial_frames_and_never_dispatches_them():
    frame = encode_message(_msg(1, "whole"))
    decoder = FrameDecoder()
    # every proper prefix is silence, not a dispatch and not an error
    for cut in range(1, len(frame)):
        assert FrameDecoder().feed(frame[:cut]) == []
    # byte-at-a-time delivery yields exactly one frame at the last byte
    dispatched = []
    for index in range(len(frame)):
        dispatched += decoder.feed(frame[index : index + 1])
        if index < len(frame) - 1:
            assert dispatched == []
    assert len(dispatched) == 1
    kind, body = dispatched[0]
    assert kind == FRAME_MESSAGE and body["payload"] == "whole"
    assert decoder.pending_bytes == 0


def test_partial_frame_then_raw_disconnect_never_reaches_handler():
    """A connection that dies mid-frame leaves no trace in the handler."""

    async def scenario():
        b = ProtocolHost("b", reliable=FAST, boot_id="boot-b")
        bhost, bport = await b.start()
        got = []
        b.transport.register("ep:b", lambda m: got.append(m.payload))

        frame = encode_message(_msg(1, "phantom"))
        _reader, writer = await asyncio.open_connection(bhost, bport)
        writer.write(frame[: len(frame) // 2])
        await writer.drain()
        await asyncio.sleep(0.3)  # let the half-frame soak in b's decoder
        writer.transport.abort()  # nemesis-style hard reset, no FIN
        await asyncio.sleep(0.3)
        assert got == []
        await b.close()

    asyncio.run(scenario())


def test_reset_mid_window_redelivers_exactly_once():
    """Nemesis reset between two hosts: go-back-N refills the gap, the
    receiver dispatches every payload exactly once, in order."""

    async def scenario():
        upstream_b = ProtocolHost("b", reliable=FAST, boot_id="boot-b")
        bhost, bport = await upstream_b.start()
        got = []
        upstream_b.transport.register("ep:b", lambda m: got.append(m.payload))

        proxy = NemesisProxy()
        relay = await proxy.add_link("a", "b", bhost, bport)

        a = ProtocolHost("a", reliable=FAST, boot_id="boot-a")
        ahost, aport = await a.start()
        a.transport.register("ep:a", lambda m: None)
        a.add_peer("b", relay[0], relay[1], ["ep:b"])
        upstream_b.add_peer("a", ahost, aport, ["ep:a"])

        a.transport.send(_msg(1, "m1"))
        await _wait_for(lambda: got == ["m1"], what="first delivery")

        # cut the link, then send into the void: the frames die with
        # the aborted connection (or inside the refused window)
        proxy.apply({"op": "partition", "a": "a", "b": "b", "duration": 0.6})
        a.transport.send(_msg(2, "m2"))
        a.transport.send(_msg(3, "m3"))
        await asyncio.sleep(0.2)
        assert got == ["m1"]

        # heal: retransmission must deliver m2 and m3 exactly once
        await _wait_for(lambda: len(got) >= 3, what="redelivery after heal")
        await asyncio.sleep(0.5)  # any duplicate would land here
        assert got == ["m1", "m2", "m3"]

        state = a.session._send_states[("ep:a", "ep:b")]
        await _wait_for(lambda: not state.unacked, what="window drain")
        assert a.session.retransmits >= 1

        await a.close()
        await upstream_b.close()
        await proxy.close()

    asyncio.run(scenario())


def test_corrupt_frame_closes_connection_but_session_recovers():
    """A CRC-corrupt frame is rejected with the connection — and the
    session layer re-sends the real traffic over the next one."""

    async def scenario():
        b = ProtocolHost("b", reliable=FAST, boot_id="boot-b")
        bhost, bport = await b.start()
        got = []
        b.transport.register("ep:b", lambda m: got.append(m.payload))

        # a raw client feeding garbage: the connection must be closed on it
        reader, writer = await asyncio.open_connection(bhost, bport)
        frame = bytearray(encode_frame(FRAME_MESSAGE, {"bogus": True}))
        frame[-1] ^= 0xFF  # break the CRC
        writer.write(bytes(frame))
        await writer.drain()
        # drain b's HELLO, then require EOF: the connection was dropped
        await asyncio.wait_for(reader.read(), 10.0)
        assert reader.at_eof()
        assert got == []

        # real traffic still flows on a fresh, clean connection
        a = ProtocolHost("a", reliable=FAST, boot_id="boot-a")
        ahost, aport = await a.start()
        a.transport.register("ep:a", lambda m: None)
        a.add_peer("b", bhost, bport, ["ep:b"])
        b.add_peer("a", ahost, aport, ["ep:a"])
        a.transport.send(_msg(1, "clean"))
        await _wait_for(lambda: got == ["clean"], what="clean delivery")

        await a.close()
        await b.close()

    asyncio.run(scenario())
