"""Shared test helpers: hand-building histories in paper notation."""

from typing import Optional

from repro.common.ids import DataItemId, SubtxnId, TxnId, global_txn, local_txn
from repro.history.model import History


class HistoryBuilder:
    """Builds a :class:`History` op by op with auto-advancing time.

    The fluent methods mirror the paper's notation::

        h = HistoryBuilder()
        h.r(1, "a", "X")          # R10[X^a]
        h.w(1, "a", "Y")          # W10[Y^a]
        h.p(1, "a")               # P^a_1
        h.c(1)                    # C_1
        h.cl(1, "a")              # C^a_10
        h.al(1, "a", inc=0)       # A^a_10 (unilateral)

    Reads-from is positional by default: a read observes the most
    recent *non-undone* write on the item, tracked by a tiny writer-tag
    replay (exactly what physical storage would report).  Pass
    ``frm=...`` to override.
    """

    def __init__(self) -> None:
        self.history = History()
        self._time = 0.0
        self._tags = {}
        self._undo = {}

    def _next_time(self) -> float:
        self._time += 1.0
        return self._time

    @staticmethod
    def txn(number, site: Optional[str] = None) -> TxnId:
        if site is None:
            return global_txn(number)
        return local_txn(number, site)

    def _sub(self, number, site, inc, local) -> SubtxnId:
        txn = local_txn(number, site) if local else global_txn(number)
        return SubtxnId(txn, site, 0 if local else inc)

    def r(self, number, site, key, inc=0, local=False, frm="auto"):
        sub = self._sub(number, site, inc, local)
        item = DataItemId("t", key)
        if frm == "auto":
            frm = self._tags.get((site, key))
        self.history.record_read(self._next_time(), sub, site, item, read_from=frm)
        return self

    def w(self, number, site, key, inc=0, local=False):
        sub = self._sub(number, site, inc, local)
        item = DataItemId("t", key)
        self._undo.setdefault(sub, []).append(
            ((site, key), self._tags.get((site, key)))
        )
        self._tags[(site, key)] = sub
        self.history.record_write(self._next_time(), sub, site, item)
        return self

    def p(self, number, site, sn=None):
        self.history.record_prepare(self._next_time(), global_txn(number), site, sn)
        return self

    def c(self, number):
        self.history.record_global_commit(self._next_time(), global_txn(number))
        return self

    def a(self, number):
        self.history.record_global_abort(self._next_time(), global_txn(number))
        return self

    def cl(self, number, site, inc=0, local=False):
        sub = self._sub(number, site, inc, local)
        self._undo.pop(sub, None)
        self.history.record_local_commit(self._next_time(), sub, site)
        return self

    def al(self, number, site, inc=0, local=False, unilateral=True):
        sub = self._sub(number, site, inc, local)
        for key, previous in reversed(self._undo.pop(sub, [])):
            self._tags[key] = previous
        self.history.record_local_abort(
            self._next_time(), sub, site, unilateral=unilateral
        )
        return self
