"""Unit tests for SG(H) and CG(H) (repro.history.graphs)."""

from repro.common.ids import global_txn, local_txn
from repro.history.graphs import (
    commit_order_graph,
    find_cycle,
    is_acyclic,
    serialization_graph,
    topological_order,
)

from tests.helpers import HistoryBuilder


class TestSerializationGraph:
    def test_rw_conflict_edge_direction(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").r(2, "a", "X")
        sg = serialization_graph(h.history.ops)
        assert sg.has_edge(global_txn(1), global_txn(2))
        assert not sg.has_edge(global_txn(2), global_txn(1))

    def test_no_edge_for_read_read(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").r(2, "a", "X")
        sg = serialization_graph(h.history.ops)
        assert sg.number_of_edges() == 0

    def test_cross_site_ops_no_edge(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").w(2, "b", "X")
        sg = serialization_graph(h.history.ops)
        assert sg.number_of_edges() == 0

    def test_incarnations_merge_into_one_node(self):
        h = HistoryBuilder()
        h.w(1, "a", "X", inc=0).al(1, "a", inc=0)
        h.w(2, "a", "X")
        h.w(1, "a", "X", inc=1)
        sg = serialization_graph(h.history.ops)
        assert set(sg.nodes) == {global_txn(1), global_txn(2)}
        # Both directions exist: inc0 before T2, T2 before inc1 -> cycle.
        assert sg.has_edge(global_txn(1), global_txn(2))
        assert sg.has_edge(global_txn(2), global_txn(1))
        assert find_cycle(sg) is not None

    def test_local_txns_participate(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").r(4, "a", "X", local=True)
        sg = serialization_graph(h.history.ops)
        assert sg.has_edge(global_txn(1), local_txn(4, "a"))

    def test_acyclic_chain_topological_order(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").r(2, "a", "X").w(2, "a", "Y").r(3, "a", "Y")
        sg = serialization_graph(h.history.ops)
        order = topological_order(sg)
        assert order == [global_txn(1), global_txn(2), global_txn(3)]


class TestCommitOrderGraph:
    def test_arc_follows_local_commit_order_per_site(self):
        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "a")
        cg = commit_order_graph(h.history.ops)
        assert cg.has_edge(global_txn(1), global_txn(2))
        assert not cg.has_edge(global_txn(2), global_txn(1))

    def test_no_arc_across_sites(self):
        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "b")
        cg = commit_order_graph(h.history.ops)
        assert cg.number_of_edges() == 0

    def test_reversed_orders_make_cycle(self):
        """The H2/H3 signature: C^a_1 < C^a_2 but C^b_2 < C^b_1."""
        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "a").cl(2, "b").cl(1, "b")
        cg = commit_order_graph(h.history.ops)
        cycle = find_cycle(cg)
        assert cycle is not None
        assert set(cycle[:-1]) == {global_txn(1), global_txn(2)}

    def test_nodes_require_a_local_commit(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1)  # decided but never locally committed
        cg = commit_order_graph(h.history.ops)
        assert cg.number_of_nodes() == 0

    def test_local_transactions_are_nodes_too(self):
        h = HistoryBuilder()
        h.cl(1, "a").cl(4, "a", local=True)
        cg = commit_order_graph(h.history.ops)
        assert cg.has_edge(global_txn(1), local_txn(4, "a"))

    def test_topological_order_is_serialization_order(self):
        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "a").cl(1, "b").cl(2, "b")
        cg = commit_order_graph(h.history.ops)
        assert is_acyclic(cg)
        assert topological_order(cg) == [global_txn(1), global_txn(2)]


class TestCycleHelpers:
    def test_find_cycle_none_on_dag(self):
        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "a")
        cg = commit_order_graph(h.history.ops)
        assert find_cycle(cg) is None

    def test_topological_order_none_on_cycle(self):
        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "a").cl(2, "b").cl(1, "b")
        cg = commit_order_graph(h.history.ops)
        assert topological_order(cg) is None


class TestDotExport:
    def test_dot_contains_nodes_and_edges(self):
        from repro.history.graphs import to_dot

        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "a").cl(4, "a", local=True)
        cg = commit_order_graph(h.history.ops)
        dot = to_dot(cg, "CG")
        assert dot.startswith("digraph CG {")
        assert '"T1" -> "T2";' in dot
        assert '"L4" [shape=box];' in dot
        assert dot.endswith("}")

    def test_dot_of_empty_graph(self):
        from repro.history.graphs import to_dot

        h = HistoryBuilder()
        assert to_dot(serialization_graph(h.history.ops)) == "digraph G {\n}"
