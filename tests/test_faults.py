"""Unit tests for the fault-injection transport (repro.net.faults)."""

import pytest

from repro.common.errors import SimulationError
from repro.common.ids import global_txn
from repro.kernel import EventKernel
from repro.net.faults import FaultPlan, FaultyNetwork, LossBurst, Partition
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network


def make(plan=None, seed=0, latency=None, fault_seed=None):
    kernel = EventKernel()
    net = FaultyNetwork(
        kernel,
        latency=latency or LatencyModel(base=5.0),
        seed=seed,
        plan=plan,
        fault_seed=fault_seed,
    )
    return kernel, net


def msg(src, dst, type_=MsgType.BEGIN):
    return Message(type=type_, src=src, dst=dst, txn=global_txn(1))


class TestPerfectDefault:
    def test_empty_plan_is_the_perfect_wire(self):
        """FaultPlan() all-zeros must not perturb anything — this is
        what keeps the determinism goldens byte-identical."""
        kernel_a = EventKernel()
        plain = Network(kernel_a, latency=LatencyModel(base=2.0, jitter=9.0), seed=7)
        kernel_b = EventKernel()
        faulty = FaultyNetwork(
            kernel_b, latency=LatencyModel(base=2.0, jitter=9.0), seed=7
        )
        got_a, got_b = [], []
        plain.register("b", got_a.append)
        faulty.register("b", got_b.append)
        for _ in range(10):
            plain.send(msg("a", "b"))
            faulty.send(msg("a", "b"))
        kernel_a.run()
        kernel_b.run()
        assert len(got_a) == len(got_b) == 10
        # Identical latency draws: the fault RNG is separate and the
        # zero plan never consumes from the latency stream.
        assert [t for _, t, _ in plain.trace] == [t for _, t, _ in faulty.trace]
        assert faulty.messages_lost == 0
        assert faulty.messages_duplicated == 0
        assert faulty.messages_spiked == 0
        assert faulty.partition_drops == 0


class TestLoss:
    def test_total_loss_drops_everything(self):
        kernel, net = make(plan=FaultPlan(loss=1.0))
        got = []
        net.register("b", got.append)
        for _ in range(5):
            assert net.send(msg("a", "b")) == float("inf")
        kernel.run()
        assert got == []
        assert net.messages_lost == 5
        assert net.messages_sent == 5
        assert net.in_flight == 0  # drops are accounted for

    def test_loss_is_seed_deterministic(self):
        def run(seed):
            kernel, net = make(plan=FaultPlan(loss=0.4), fault_seed=seed)
            net.register("b", lambda m: None)
            for _ in range(50):
                net.send(msg("a", "b"))
            kernel.run()
            return net.messages_lost

        assert run(11) == run(11)
        assert 0 < run(11) < 50

    def test_loss_to_unregistered_endpoint_still_raises(self):
        _kernel, net = make(plan=FaultPlan(loss=1.0))
        with pytest.raises(SimulationError):
            net.send(msg("a", "nowhere"))

    def test_loss_burst_elevates_baseline(self):
        plan = FaultPlan(loss=0.0, bursts=(LossBurst(start=0.0, end=100.0, loss=1.0),))
        kernel, net = make(plan=plan)
        got = []
        net.register("b", got.append)
        net.send(msg("a", "b"))  # inside the burst: dropped
        kernel.run(until=200.0, advance=True)
        net.send(msg("a", "b"))  # after the burst: delivered
        kernel.run()
        assert len(got) == 1
        assert net.messages_lost == 1

    def test_per_channel_loss_override(self):
        plan = FaultPlan(loss=0.0, loss_overrides={("a", "b"): 1.0})
        kernel, net = make(plan=plan)
        got_b, got_c = [], []
        net.register("b", got_b.append)
        net.register("c", got_c.append)
        net.send(msg("a", "b"))
        net.send(msg("a", "c"))
        kernel.run()
        assert got_b == []
        assert len(got_c) == 1


class TestPartitions:
    def test_partition_severs_both_directions_then_heals(self):
        plan = FaultPlan(
            partitions=(Partition(isolated=frozenset({"b"}), start=0.0, end=50.0),)
        )
        kernel, net = make(plan=plan)
        got = []
        net.register("agent:b", got.append)
        net.register("coord:c1", got.append)
        # Suffix matching: "agent:b" is inside the isolated group {"b"}.
        assert net.send(msg("coord:c1", "agent:b")) == float("inf")
        assert net.send(msg("agent:b", "coord:c1")) == float("inf")
        assert net.partition_drops == 2
        kernel.run(until=60.0, advance=True)
        net.send(msg("coord:c1", "agent:b"))  # healed
        kernel.run()
        assert len(got) == 1

    def test_messages_inside_the_island_survive(self):
        plan = FaultPlan(
            partitions=(Partition(isolated=frozenset({"b", "c"}), start=0.0, end=50.0),)
        )
        kernel, net = make(plan=plan)
        got = []
        net.register("agent:c", got.append)
        net.send(msg("agent:b", "agent:c"))  # both isolated: not severed
        kernel.run()
        assert len(got) == 1
        assert net.partition_drops == 0


class TestDuplicationAndSpikes:
    def test_duplication_delivers_two_copies(self):
        kernel, net = make(plan=FaultPlan(duplication=1.0))
        got = []
        net.register("b", got.append)
        net.send(msg("a", "b"))
        kernel.run()
        assert len(got) == 2
        assert net.messages_duplicated == 1
        assert net.in_flight == 0

    def test_duplicates_bypass_fifo(self):
        """The out-of-band copy takes an independent latency draw, so
        with jitter it can overtake later FIFO traffic."""
        kernel, net = make(
            plan=FaultPlan(duplication=1.0),
            latency=LatencyModel(base=1.0, jitter=30.0),
            seed=3,
        )
        got = []
        net.register("b", lambda m: got.append(m.seq))
        sent = [msg("a", "b") for _ in range(10)]
        for m in sent:
            net.send(m)
        kernel.run()
        assert len(got) == 20
        # Every original seq appears exactly twice.
        assert sorted(got) == sorted([m.seq for m in sent] * 2)

    def test_spike_delays_but_delivers(self):
        kernel, net = make(
            plan=FaultPlan(spike_probability=1.0, spike_delay=100.0)
        )
        got = []
        net.register("b", got.append)
        net.send(msg("a", "b"))
        kernel.run()
        assert len(got) == 1
        assert net.messages_spiked == 1


class TestHealAt:
    def test_heal_at_disables_every_fault(self):
        plan = FaultPlan(loss=1.0, duplication=1.0, heal_at=10.0)
        kernel, net = make(plan=plan)
        got = []
        net.register("b", got.append)
        net.send(msg("a", "b"))  # t=0: lost
        kernel.run(until=20.0, advance=True)
        net.send(msg("a", "b"))  # t=20 >= heal_at: perfect wire
        kernel.run()
        assert len(got) == 1
        assert net.messages_lost == 1
        assert net.messages_duplicated == 0


class TestFaultLog:
    def test_fault_log_records_injections(self):
        kernel, net = make(plan=FaultPlan(loss=1.0))
        net.register("b", lambda m: None)
        net.send(msg("a", "b"))
        assert [(kind) for _, kind, _ in net.fault_log] == ["loss"]

    def test_describe_mentions_schedule(self):
        plan = FaultPlan(
            loss=0.1,
            partitions=(Partition(isolated=frozenset({"b"}), start=1.0, end=2.0),),
            bursts=(LossBurst(start=3.0, end=4.0, loss=0.5),),
        )
        text = plan.describe()
        assert "partition" in text
        assert "burst" in text
