"""``python -m repro wal`` — the offline WAL tooling."""

import os
import subprocess
import sys

import pytest

from repro.__main__ import main as repro_main
from repro.durability import DurabilityConfig, DurableAgentLog, scan_wal
from repro.durability.cli import wal_directories
from repro.durability.segments import segment_name
from repro.common.ids import global_txn


@pytest.fixture
def durability_root(tmp_path):
    """A root with one agent WAL holding a prepared transaction."""
    config = DurabilityConfig(root=str(tmp_path), sync="simulated")
    log = DurableAgentLog.open_site("a", config)
    txn = global_txn(1)
    log.open(txn, coordinator="coord:c1")
    log.write_prepare(txn, None, time=3.0)
    log.close()
    return tmp_path


def wal_dir(durability_root):
    (directory,) = wal_directories(str(durability_root))
    return directory


def damage(directory):
    path = os.path.join(directory, segment_name(1))
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 3)


class TestResolution:
    def test_root_fans_out_to_wal_dirs(self, durability_root):
        dirs = wal_directories(str(durability_root))
        assert [os.path.basename(d) for d in dirs] == ["agent-a"]

    def test_wal_dir_resolves_to_itself(self, durability_root):
        directory = wal_dir(durability_root)
        assert wal_directories(directory) == [directory]

    def test_empty_dir_errors(self, tmp_path, capsys):
        assert repro_main(["wal", "stats", str(tmp_path)]) == 1
        assert "no WAL segments" in capsys.readouterr().out


class TestInspect:
    def test_dumps_records(self, durability_root, capsys):
        assert repro_main(["wal", "inspect", str(durability_root)]) == 0
        out = capsys.readouterr().out
        assert "open" in out and "prepare" in out and "agent-a" in out


class TestVerify:
    def test_clean_exits_zero(self, durability_root, capsys):
        assert repro_main(["wal", "verify", str(durability_root)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_damage_exits_one(self, durability_root, capsys):
        damage(wal_dir(durability_root))
        assert repro_main(["wal", "verify", str(durability_root)]) == 1
        assert "DAMAGED" in capsys.readouterr().out

    def test_repair_truncates(self, durability_root, capsys):
        directory = wal_dir(durability_root)
        damage(directory)
        assert repro_main(
            ["wal", "verify", str(durability_root), "--repair"]
        ) == 1
        assert "repaired" in capsys.readouterr().out
        assert scan_wal(directory).clean
        assert repro_main(["wal", "verify", str(durability_root)]) == 0


class TestStats:
    def test_counts_by_kind(self, durability_root, capsys):
        assert repro_main(["wal", "stats", str(durability_root)]) == 0
        out = capsys.readouterr().out
        assert "kind OPEN" in out and "kind PREPARE" in out
        assert "clean:          True" in out


class TestModuleEntryPoint:
    def test_python_dash_m_repro_wal(self, durability_root):
        """The subcommand is reachable via the real module entry point."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "wal", "stats", str(durability_root)],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "replayable" in proc.stdout
