"""Property-based differential test: naive vs indexed certifier.

Drives random streams of prepare / extend / restart / commit / remove
operations through a naive linear-scan certifier and an indexed one
built from the same :class:`CertifierConfig`, asserting after every
operation that both engines produce the *identical* certification
decision — same ``ok``, same :class:`RefusalReason` — and that the
decision counters and table membership never diverge.

The ``detail`` witness string is deliberately *not* compared: the
naive scan reports the first conflicting entry in insertion order
while the index reports an extremal witness.  Both are valid
witnesses for the same refusal; the paper's certification rules only
constrain the verdict.

Interleaved ``collect_garbage`` calls on the indexed side prove that
epoch compaction can never change an answer (it drops only records
the lazy heaps had already invalidated).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.common.errors import SimulationError
from repro.common.ids import SerialNumber, global_txn
from repro.core.certifier import Certifier, CertifierConfig, CommitOrderPolicy
from repro.core.intervals import AliveInterval

# ----------------------------------------------------------------------
# Operation-stream strategy
# ----------------------------------------------------------------------

# Small discrete time domain so that intervals collide, touch and nest
# often; floats drawn from here are exact, so ordering is deterministic.
_times = st.integers(min_value=0, max_value=24).map(float)

_maybe_sn = st.one_of(
    st.none(),
    st.builds(
        SerialNumber,
        clock=st.integers(min_value=0, max_value=9).map(float),
        site=st.just("c1"),
        seq=st.integers(min_value=0, max_value=5),
    ),
)


def _op():
    return st.one_of(
        st.tuples(
            st.just("prepare"),
            st.integers(min_value=0, max_value=11),
            _times,
            _times,
            _maybe_sn,
        ),
        st.tuples(st.just("extend"), st.integers(0, 11), _times),
        st.tuples(st.just("restart"), st.integers(0, 11), _times),
        st.tuples(st.just("commit"), st.integers(0, 11)),
        st.tuples(st.just("remove"), st.integers(0, 11)),
        st.tuples(st.just("gc")),
    )


_streams = st.lists(_op(), min_size=1, max_size=60)

_configs = st.builds(
    dict,
    max_intervals=st.integers(min_value=1, max_value=3),
    commit_order=st.sampled_from(list(CommitOrderPolicy)),
    prepare_extension=st.booleans(),
)


def _pair(config_kwargs):
    naive = Certifier("s", CertifierConfig(engine="naive", **config_kwargs))
    indexed = Certifier(
        "s",
        CertifierConfig(
            engine="indexed",
            # Tiny thresholds so compaction actually fires inside the
            # short streams Hypothesis generates.
            gc_min_entries=4,
            gc_stale_factor=1.5,
            **config_kwargs,
        ),
    )
    return naive, indexed


def _assert_same_decision(op, left, right):
    assert (left.ok, left.reason) == (right.ok, right.reason), (
        f"engines diverged on {op}: naive={left} indexed={right}"
    )


def _assert_same_counters(naive, indexed):
    for counter in (
        "prepare_checks",
        "prepare_refusals_extension",
        "prepare_refusals_intersection",
        "commit_checks",
        "commit_delays",
    ):
        assert getattr(naive, counter) == getattr(indexed, counter), counter
    assert sorted(naive.prepared_txns()) == sorted(indexed.prepared_txns())
    assert naive.max_committed_sn == indexed.max_committed_sn


def _run_stream(config_kwargs, ops):
    naive, indexed = _pair(config_kwargs)
    for op in ops:
        kind = op[0]
        if kind == "prepare":
            _, n, a, b, sn = op
            txn = global_txn(n)
            if naive.contains(txn):
                continue
            candidate = AliveInterval(min(a, b), max(a, b))
            left = naive.certify_prepare(txn, sn, candidate)
            right = indexed.certify_prepare(txn, sn, candidate)
            _assert_same_decision(op, left, right)
            if left.ok:
                naive.insert(txn, sn, candidate)
                indexed.insert(txn, sn, candidate)
        elif kind == "extend":
            _, n, now = op
            txn = global_txn(n)
            if not naive.contains(txn):
                continue
            naive.extend_interval(txn, now)
            indexed.extend_interval(txn, now)
        elif kind == "restart":
            _, n, now = op
            txn = global_txn(n)
            if not naive.contains(txn):
                continue
            naive.restart_interval(txn, now)
            indexed.restart_interval(txn, now)
        elif kind == "commit":
            _, n = op
            txn = global_txn(n)
            if not naive.contains(txn):
                continue
            left = naive.certify_commit(txn)
            right = indexed.certify_commit(txn)
            _assert_same_decision(op, left, right)
            if left.ok:
                naive.record_local_commit(txn)
                indexed.record_local_commit(txn)
                naive.remove(txn)
                indexed.remove(txn)
        elif kind == "remove":
            _, n = op
            txn = global_txn(n)
            if not naive.contains(txn):
                continue
            naive.remove(txn)
            indexed.remove(txn)
        elif kind == "gc":
            # Only the indexed engine has anything to compact; the
            # point is that forcing it mid-stream never changes any
            # subsequent answer relative to the naive oracle.
            indexed.collect_garbage()
        _assert_same_counters(naive, indexed)
    return naive, indexed


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(config_kwargs=_configs, ops=_streams)
def test_engines_agree_on_random_streams(config_kwargs, ops):
    """Every decision and counter is identical, op for op."""
    _run_stream(config_kwargs, ops)


@settings(max_examples=60, deadline=None)
@given(
    config_kwargs=_configs,
    ops=_streams,
    probe_start=_times,
    probe_len=st.integers(min_value=0, max_value=10),
)
def test_final_tables_answer_probes_identically(
    config_kwargs, ops, probe_start, probe_len
):
    """After an arbitrary stream, fresh probe certifications agree."""
    naive, indexed = _run_stream(config_kwargs, ops)
    probe = global_txn(999)
    candidate = AliveInterval(probe_start, probe_start + probe_len)
    left = naive.certify_prepare(probe, None, candidate)
    right = indexed.certify_prepare(probe, None, candidate)
    _assert_same_decision(("probe", candidate), left, right)


@settings(max_examples=60, deadline=None)
@given(
    config_kwargs=_configs,
    ops=_streams,
    members=st.lists(
        st.tuples(
            st.integers(min_value=20, max_value=27), _times, _times, _maybe_sn
        ),
        min_size=1,
        max_size=6,
        unique_by=lambda m: m[0],
    ),
)
def test_batched_prepares_match_sequential_naive(config_kwargs, ops, members):
    """A PrepareBatch on the indexed engine equals the naive sequence.

    The batch snapshots the index bounds once and folds admitted
    members into running bounds; the naive oracle certifies the same
    members one by one.  Decisions must match member for member.
    """
    naive, indexed = _run_stream(config_kwargs, ops)
    batch = indexed.begin_prepare_batch()
    for n, a, b, sn in members:
        txn = global_txn(n)
        candidate = AliveInterval(min(a, b), max(a, b))
        left = naive.certify_prepare(txn, sn, candidate)
        right = batch.certify(txn, sn, candidate)
        _assert_same_decision(("batch-member", n), left, right)
        if left.ok:
            naive.insert(txn, sn, candidate)
            batch.admit(txn, sn, candidate)
    _assert_same_counters(naive, indexed)


@settings(max_examples=30, deadline=None)
@given(config_kwargs=_configs, ops=_streams)
def test_duplicate_prepare_raises_on_both(config_kwargs, ops):
    """Both engines reject re-preparing a live transaction."""
    naive, indexed = _run_stream(config_kwargs, ops)
    live = naive.prepared_txns()
    if not live:
        return
    txn = sorted(live)[0]
    candidate = AliveInterval(0.0, 1.0)
    for certifier in (naive, indexed):
        with pytest.raises(SimulationError):
            certifier.certify_prepare(txn, None, candidate)
