"""Tests for the timeline renderer and the CLI (repro.sim.timeline,
repro.__main__)."""

import pytest

from repro.__main__ import main
from repro.history.model import History
from repro.sim.timeline import render_timeline
from repro.workload.scenarios import run_hx

from tests.helpers import HistoryBuilder


class TestTimeline:
    def test_empty_history(self):
        assert render_timeline(History()) == "(empty history)"

    def test_lanes_per_site_plus_global(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "b", "Z").c(1).cl(1, "a").cl(1, "b")
        text = render_timeline(h.history)
        header = text.splitlines()[0]
        assert "a" in header and "b" in header and "@global" in header

    def test_events_in_time_order(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(2, "a", "X").cl(1, "a")
        text = render_timeline(h.history)
        lines = text.splitlines()[2:]
        times = [float(line.split("|")[0]) for line in lines]
        assert times == sorted(times)

    def test_coalesce_groups_near_events(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").r(1, "a", "Y").r(1, "a", "Z")
        dense = render_timeline(h.history, coalesce=10.0)
        sparse = render_timeline(h.history, coalesce=0.0)
        assert len(dense.splitlines()) < len(sparse.splitlines())

    def test_hx_overtake_visible(self):
        result = run_hx("2cm-noext")
        text = render_timeline(result.system.history, coalesce=2.0)
        lines = text.splitlines()
        lanes = [line.split("|") for line in lines if "|" in line]
        commit_t8_at_s = next(
            i for i, cells in enumerate(lanes) if "C(T80)" in cells[1]
        )
        prepare_t7_at_s = next(
            i for i, cells in enumerate(lanes) if "P(T7)" in cells[1]
        )
        assert commit_t8_at_s < prepare_t7_at_s


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "committed: True" in out
        assert "view serializable: True" in out

    def test_methods(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "2cm" in out and "cgm" in out

    def test_scenario_h1_naive(self, capsys):
        assert main(["scenario", "H1", "--method", "naive"]) == 0
        out = capsys.readouterr().out
        assert "view serializable: False" in out
        assert "view split" in out

    def test_scenario_with_timeline_and_trees(self, capsys):
        assert main(["scenario", "Hx", "--method", "2cm", "--timeline", "--trees"]) == 0
        out = capsys.readouterr().out
        assert "@global" in out       # timeline header
        assert "2PCA" in out          # tree rendering

    def test_experiment_table(self, capsys):
        assert main(["experiment", "E1"]) == 0
        out = capsys.readouterr().out
        assert "H1" in out and "2cm" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "E99"]) == 2

    def test_workload(self, capsys):
        assert (
            main(
                [
                    "workload",
                    "--method",
                    "2cm",
                    "--globals",
                    "6",
                    "--sites",
                    "a,b",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "committed:" in out
        assert "view serializable: True" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestReportGeneration:
    def test_report_contains_every_experiment(self, tmp_path):
        from repro.sim.reportgen import REPORT_EXPERIMENTS, write_report

        path = tmp_path / "report.md"
        write_report(str(path))
        content = path.read_text()
        for exp_id, _title, _headers, _fn in REPORT_EXPERIMENTS:
            assert f"## {exp_id} — " in content
        assert "H1" in content and "2cm" in content

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.__main__ import main

        target = str(tmp_path / "r.md")
        assert main(["report", target]) == 0
        assert "wrote" in capsys.readouterr().out
