"""Property-based tests (hypothesis) for the core data structures and
the end-to-end correctness guarantee."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.ids import DataItemId, SubtxnId, global_txn
from repro.core.intervals import AliveInterval
from repro.history.committed import committed_projection
from repro.history.invariants import check_correctness_invariant
from repro.history.rigor import check_rigorous
from repro.history.viewser import check_view_serializable
from repro.kernel import EventKernel
from repro.ldbs.locks import LockManager, LockMode, compatible, covers, supremum
from repro.ldbs.storage import VersionedStore

from tests.helpers import HistoryBuilder

# ----------------------------------------------------------------------
# Alive intervals
# ----------------------------------------------------------------------

intervals = st.tuples(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
).map(lambda pair: AliveInterval(min(pair), max(pair)))


class TestIntervalProperties:
    @given(intervals, intervals)
    def test_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(intervals)
    def test_self_intersection(self, a):
        assert a.intersects(a)

    @given(intervals, st.floats(min_value=0, max_value=2000, allow_nan=False))
    def test_extension_monotone(self, a, end):
        extended = a.extended_to(end)
        assert extended.start == a.start
        assert extended.end >= a.end
        assert a.intersects(extended)

    @given(intervals, intervals, st.floats(min_value=0, max_value=2000))
    def test_extension_preserves_intersection(self, a, b, end):
        if a.intersects(b):
            assert a.extended_to(end).intersects(b)


# ----------------------------------------------------------------------
# Lock mode algebra
# ----------------------------------------------------------------------

modes = st.sampled_from(list(LockMode))


class TestLockModeProperties:
    @given(modes, modes)
    def test_supremum_commutative(self, a, b):
        assert supremum(a, b) is supremum(b, a)

    @given(modes, modes)
    def test_supremum_covers_both(self, a, b):
        sup = supremum(a, b)
        assert covers(sup, a) and covers(sup, b)

    @given(modes, modes, modes)
    def test_supremum_associative(self, a, b, c):
        assert supremum(supremum(a, b), c) is supremum(a, supremum(b, c))

    @given(modes, modes, modes)
    def test_stronger_mode_conflicts_more(self, held, a, b):
        """If sup(a,b) is compatible with a held mode, so are a and b."""
        if compatible(held, supremum(a, b)):
            assert compatible(held, a) and compatible(held, b)


# ----------------------------------------------------------------------
# Lock manager: random schedules keep holder sets compatible
# ----------------------------------------------------------------------


class TestLockManagerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 6))
    def test_random_schedule_invariants(self, seed, n_owners):
        rng = random.Random(seed)
        kernel = EventKernel()
        lm = LockManager(kernel, default_timeout=50.0)
        owners = [SubtxnId(global_txn(n), "a", 0) for n in range(1, n_owners + 1)]
        resources = [("row", DataItemId("t", k)) for k in "XYZ"]
        for _step in range(30):
            action = rng.random()
            owner = rng.choice(owners)
            if action < 0.7:
                lm.acquire(
                    owner, rng.choice(resources), rng.choice(list(LockMode))
                )
            else:
                lm.release_all(owner)
            kernel.run(until=kernel.now + rng.uniform(0, 5))
            lm.assert_consistent()
        for owner in owners:
            lm.release_all(owner)
        kernel.run()
        lm.assert_consistent()
        # Everything released: all resources free.
        for resource in resources:
            assert lm.holders(resource) == {}


# ----------------------------------------------------------------------
# Versioned store: model-based undo correctness
# ----------------------------------------------------------------------


class TestStoreProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_undo_restores_model_snapshot(self, seed):
        rng = random.Random(seed)
        store = VersionedStore("a")
        store.load("t", {k: rng.randint(0, 9) for k in range(4)})
        committed_model = {
            item.key: value for item, value in store.snapshot("t").items()
        }
        txn = SubtxnId(global_txn(1), "a", 0)
        for _ in range(rng.randint(1, 10)):
            key = rng.randrange(6)
            if rng.random() < 0.6:
                store.write(txn, DataItemId("t", key), rng.randint(0, 9))
            else:
                store.delete(txn, DataItemId("t", key))
        store.undo(txn)
        after = {item.key: value for item, value in store.snapshot("t").items()}
        assert after == committed_model

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_commit_makes_changes_permanent(self, seed):
        rng = random.Random(seed)
        store = VersionedStore("a")
        store.load("t", {k: 0 for k in range(3)})
        model = {item.key: value for item, value in store.snapshot("t").items()}
        txn = SubtxnId(global_txn(1), "a", 0)
        for _ in range(rng.randint(1, 8)):
            key = rng.randrange(5)
            if rng.random() < 0.6:
                value = rng.randint(0, 9)
                store.write(txn, DataItemId("t", key), value)
                model[key] = value
            else:
                store.delete(txn, DataItemId("t", key))
                model.pop(key, None)
        store.commit(txn)
        store.undo(txn)  # no-op after commit
        after = {item.key: value for item, value in store.snapshot("t").items()}
        assert after == model


# ----------------------------------------------------------------------
# View-serializability checker: serial histories always accepted
# ----------------------------------------------------------------------


class TestViewserProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 5))
    def test_serial_histories_accepted(self, seed, n_txns):
        rng = random.Random(seed)
        h = HistoryBuilder()
        for number in range(1, n_txns + 1):
            for _ in range(rng.randint(1, 4)):
                key = rng.choice("WXYZ")
                if rng.random() < 0.5:
                    h.r(number, "a", key)
                else:
                    h.w(number, "a", key)
            h.c(number).cl(number, "a")
        result = check_view_serializable(committed_projection(h.history))
        assert result.serializable is True

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 4))
    def test_serial_with_failed_incarnations_accepted(self, seed, n_txns):
        """Serial execution where each transaction may first run an
        incarnation that unilaterally aborts, then a committing one —
        the replay semantics must accept these."""
        rng = random.Random(seed)
        h = HistoryBuilder()
        for number in range(1, n_txns + 1):
            if rng.random() < 0.5:
                for _ in range(rng.randint(1, 3)):
                    key = rng.choice("WXYZ")
                    if rng.random() < 0.5:
                        h.r(number, "a", key)
                    else:
                        h.w(number, "a", key)
                h.p(number, "a").al(number, "a", inc=0, unilateral=True)
                inc = 1
            else:
                h.p(number, "a")
                inc = 0
            for _ in range(rng.randint(1, 3)):
                key = rng.choice("WXYZ")
                if rng.random() < 0.5:
                    h.r(number, "a", key, inc=inc)
                else:
                    h.w(number, "a", key, inc=inc)
            h.c(number).cl(number, "a", inc=inc)
        result = check_view_serializable(committed_projection(h.history))
        assert result.serializable is True


# ----------------------------------------------------------------------
# End-to-end: the paper's guarantee under random failures
# ----------------------------------------------------------------------


class TestEndToEndGuarantee:
    @settings(max_examples=12, deadline=None, suppress_health_check=list(HealthCheck))
    @given(st.integers(min_value=0, max_value=10_000))
    def test_2cm_audit_holds_under_random_failures(self, seed):
        """For random workloads with random unilateral aborts, a 2CM
        system always yields a rigorous substrate, an intact CI, no
        distortions, an acyclic CG and a view-serializable C(H)."""
        from repro.core.dtm import MultidatabaseSystem, SystemConfig
        from repro.sim.driver import run_schedule
        from repro.sim.failures import RandomFailureInjector
        from repro.sim.metrics import audit
        from repro.workload.generator import WorkloadConfig, WorkloadGenerator

        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), n_coordinators=2, seed=seed)
        )
        RandomFailureInjector(system, probability=0.4, seed=seed)
        schedule = WorkloadGenerator(
            WorkloadConfig(
                sites=("a", "b"),
                n_global=6,
                n_local=2,
                keys_per_site=16,
                seed=seed,
                update_fraction=0.6,
            )
        ).generate()
        run_schedule(system, schedule)
        report = audit(system, max_txns=9)
        assert report.rigor_violations == 0
        assert not report.distortions.has_global_distortion
        assert report.distortions.commit_graph_cycle is None
        assert report.view_serializability.serializable is True
        assert check_correctness_invariant(system.history) == []

    @settings(max_examples=8, deadline=None, suppress_health_check=list(HealthCheck))
    @given(st.integers(min_value=0, max_value=10_000))
    def test_substrate_rigorous_under_any_method(self, seed):
        from repro.core.dtm import MultidatabaseSystem, SystemConfig
        from repro.sim.driver import run_schedule
        from repro.workload.generator import WorkloadConfig, WorkloadGenerator

        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), n_coordinators=2, method="naive")
        )
        schedule = WorkloadGenerator(
            WorkloadConfig(sites=("a", "b"), n_global=8, seed=seed)
        ).generate()
        run_schedule(system, schedule)
        assert check_rigorous(system.history.ops) == []


class TestScanPhantomGuarantee:
    @settings(max_examples=10, deadline=None, suppress_health_check=list(HealthCheck))
    @given(st.integers(min_value=0, max_value=5_000))
    def test_scans_with_local_inserts_and_failures_stay_clean(self, seed):
        """End-to-end phantom protection: global scans + local inserts
        + unilateral aborts.  The table-level binding must keep every
        resubmitted decomposition stable."""
        from repro.core.dtm import MultidatabaseSystem, SystemConfig
        from repro.sim.driver import run_schedule
        from repro.sim.failures import RandomFailureInjector
        from repro.sim.metrics import audit
        from repro.sim.experiments import guarantee_holds
        from repro.workload.generator import WorkloadConfig, WorkloadGenerator

        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), n_coordinators=2, seed=seed)
        )
        RandomFailureInjector(system, probability=0.5, seed=seed)
        schedule = WorkloadGenerator(
            WorkloadConfig(
                sites=("a", "b"),
                n_global=6,
                n_local=6,
                n_tables=2,
                keys_per_site=10,
                scan_fraction=0.3,
                update_fraction=0.5,
                local_update_fraction=0.8,
                local_insert_fraction=0.6,
                seed=seed,
            )
        ).generate()
        run_schedule(system, schedule)
        report = audit(system)
        assert report.rigor_violations == 0
        assert not report.distortions.has_global_distortion
        assert guarantee_holds(report)


class TestAdversarialSearch:
    def test_search_is_deterministic(self):
        from repro.sim.adversary import search

        first = search(n_configs=10, seed=4, verify_2cm=False)
        second = search(n_configs=10, seed=4, verify_2cm=False)
        assert [c.describe() for c in first.corrupting] == [
            c.describe() for c in second.corrupting
        ]

    def test_failure_free_configs_never_corrupt(self):
        """The paper's lemma, fuzz-checked: without unilateral aborts of
        prepared subtransactions, no anomalies occur — so every
        corrupting configuration must carry an injected abort."""
        from repro.sim.adversary import search

        result = search(n_configs=30, seed=9, verify_2cm=False)
        assert all(
            config.abort_delay is not None for config in result.corrupting
        )

    def test_discovered_anomalies_fixed_by_2cm(self):
        from repro.sim.adversary import search

        result = search(n_configs=30, seed=2, verify_2cm=True)
        assert result.corrupting  # found some
        assert result.defeats_2cm == []
