"""Unit tests for the versioned row store (repro.ldbs.storage)."""

import pytest

from repro.common.ids import DataItemId, SubtxnId, global_txn
from repro.ldbs.storage import VersionedStore


def sub(n, site="a", inc=0):
    return SubtxnId(global_txn(n), site, inc)


@pytest.fixture
def store():
    s = VersionedStore("a")
    s.load("t", {"X": 10, "Y": 20})
    return s


class TestReads:
    def test_initial_rows_have_no_writer(self, store):
        existed, value, writer = store.read(DataItemId("t", "X"))
        assert existed and value == 10 and writer is None

    def test_missing_row(self, store):
        existed, value, writer = store.read(DataItemId("t", "Z"))
        assert not existed and value is None and writer is None

    def test_scan_returns_sorted_existing(self, store):
        items = store.scan("t")
        assert [item.key for item in items] == ["X", "Y"]

    def test_scan_other_table_empty(self, store):
        assert store.scan("u") == []

    def test_snapshot(self, store):
        snap = store.snapshot("t")
        assert {item.key: v for item, v in snap.items()} == {"X": 10, "Y": 20}


class TestWritesAndWriterTags:
    def test_write_updates_value_and_writer(self, store):
        writer = sub(1)
        store.write(writer, DataItemId("t", "X"), 99)
        existed, value, tag = store.read(DataItemId("t", "X"))
        assert existed and value == 99 and tag == writer

    def test_insert_new_row(self, store):
        store.write(sub(1), DataItemId("t", "Z"), 5)
        assert store.exists(DataItemId("t", "Z"))
        assert [item.key for item in store.scan("t")] == ["X", "Y", "Z"]

    def test_delete_leaves_attributing_tombstone(self, store):
        """After T deletes X, a read attributes the absence to T — the
        mechanism behind H1's 'Y was deleted by T2' observation."""
        writer = sub(2)
        assert store.delete(writer, DataItemId("t", "X")) is True
        existed, value, tag = store.read(DataItemId("t", "X"))
        assert not existed and tag == writer

    def test_delete_missing_row_reports_false(self, store):
        assert store.delete(sub(2), DataItemId("t", "Z")) is False

    def test_deleted_rows_not_scanned(self, store):
        store.delete(sub(2), DataItemId("t", "X"))
        assert [item.key for item in store.scan("t")] == ["Y"]


class TestUndo:
    def test_undo_restores_value_and_writer(self, store):
        t1, t2 = sub(1), sub(2)
        store.write(t1, DataItemId("t", "X"), 50)
        store.commit(t1)
        store.write(t2, DataItemId("t", "X"), 99)
        store.undo(t2)
        existed, value, tag = store.read(DataItemId("t", "X"))
        assert existed and value == 50 and tag == t1

    def test_undo_removes_inserted_row(self, store):
        t1 = sub(1)
        store.write(t1, DataItemId("t", "Z"), 5)
        store.undo(t1)
        assert not store.exists(DataItemId("t", "Z"))

    def test_undo_restores_deleted_row(self, store):
        t1 = sub(1)
        store.delete(t1, DataItemId("t", "X"))
        store.undo(t1)
        existed, value, tag = store.read(DataItemId("t", "X"))
        assert existed and value == 10 and tag is None

    def test_undo_uses_first_touch_image(self, store):
        """Multiple writes by one txn roll back to the pre-txn state."""
        t1 = sub(1)
        item = DataItemId("t", "X")
        store.write(t1, item, 11)
        store.write(t1, item, 12)
        store.delete(t1, item)
        count = store.undo(t1)
        assert count == 1
        existed, value, _writer = store.read(item)
        assert existed and value == 10

    def test_undo_restores_tombstone(self, store):
        """Undoing a write over a deleted row re-deletes it and keeps
        the original deleter attribution."""
        t1, t2 = sub(1), sub(2)
        item = DataItemId("t", "X")
        store.delete(t1, item)
        store.commit(t1)
        store.write(t2, item, 77)
        store.undo(t2)
        existed, _value, tag = store.read(item)
        assert not existed and tag == t1

    def test_undo_in_reverse_order_across_items(self, store):
        t1 = sub(1)
        store.write(t1, DataItemId("t", "X"), 1)
        store.write(t1, DataItemId("t", "Y"), 2)
        store.undo(t1)
        assert store.read(DataItemId("t", "X"))[1] == 10
        assert store.read(DataItemId("t", "Y"))[1] == 20

    def test_commit_then_undo_is_noop(self, store):
        t1 = sub(1)
        store.write(t1, DataItemId("t", "X"), 50)
        store.commit(t1)
        assert store.undo(t1) == 0
        assert store.read(DataItemId("t", "X"))[1] == 50

    def test_touched_by_lists_write_set(self, store):
        t1 = sub(1)
        store.write(t1, DataItemId("t", "X"), 1)
        store.delete(t1, DataItemId("t", "Y"))
        touched = store.touched_by(t1)
        assert {item.key for item in touched} == {"X", "Y"}


class TestCounters:
    def test_read_write_counters(self, store):
        store.read(DataItemId("t", "X"))
        store.write(sub(1), DataItemId("t", "X"), 1)
        store.delete(sub(1), DataItemId("t", "Y"))
        assert store.reads == 1
        assert store.writes == 2
