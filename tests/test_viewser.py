"""Tests for the exact view-serializability checker (repro.history.viewser).

The builder's writer-tag replay gives every read its physical source,
so hand-built histories carry exactly the reads-from information the
live system records.
"""

from repro.common.ids import global_txn
from repro.history.committed import committed_projection
from repro.history.viewser import check_view_serializable

from tests.helpers import HistoryBuilder


def check(h, **kwargs):
    return check_view_serializable(committed_projection(h.history), **kwargs)


class TestTrivial:
    def test_empty_history(self):
        h = HistoryBuilder()
        result = check(h)
        assert result.serializable is True
        assert result.order == []

    def test_single_transaction(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "Y").c(1).cl(1, "a")
        result = check(h)
        assert result.serializable is True
        assert result.order == [global_txn(1)]


class TestSerialAndSerializable:
    def test_serial_execution_accepted(self):
        h = HistoryBuilder()
        h.w(1, "a", "X").c(1).cl(1, "a")
        h.r(2, "a", "X").w(2, "a", "Y").c(2).cl(2, "a")
        result = check(h)
        assert result.serializable is True
        assert result.order == [global_txn(1), global_txn(2)]

    def test_interleaved_but_conflict_serializable(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").r(2, "a", "Y")
        h.w(1, "a", "X").cl(1, "a")
        h.w(2, "a", "Y")
        h.c(1)
        h.c(2).cl(2, "a")
        result = check(h)
        assert result.serializable is True
        assert result.reason == "SG acyclic"


class TestClassicAnomalies:
    def test_lost_update_style_cycle_rejected(self):
        """r1[X] r2[X] w1[X] w2[X] — not view serializable."""
        h = HistoryBuilder()
        h.r(1, "a", "X").r(2, "a", "X")
        h.w(1, "a", "X").cl(1, "a").c(1)
        h.w(2, "a", "X").cl(2, "a").c(2)
        result = check(h)
        assert result.serializable is False

    def test_write_skew_between_two_items(self):
        """r1[X] r2[Y] w1[Y] w2[X] with both reading initial values —
        serializable is impossible (each must precede the other)."""
        h = HistoryBuilder()
        h.r(1, "a", "X").r(2, "a", "Y")
        h.w(1, "a", "Y").w(2, "a", "X")
        h.cl(1, "a").cl(2, "a").c(1).c(2)
        result = check(h)
        assert result.serializable is False

    def test_view_serializable_but_not_conflict_serializable(self):
        """The textbook blind-write case: H = w1[X] w2[X] w2[Y] w1[Y]
        w3[X] w3[Y] ... with T3 writing last.  SG is cyclic (T1→T2 on X,
        T2→T1 on Y) yet the history is view equivalent to T1 T2 T3 or
        T2 T1 T3 because T3 overwrites everything and nobody reads."""
        h = HistoryBuilder()
        h.w(1, "a", "X")
        h.w(2, "a", "X").w(2, "a", "Y")
        h.w(1, "a", "Y")
        h.cl(1, "a").cl(2, "a").c(1).c(2)
        h.w(3, "a", "X").w(3, "a", "Y").cl(3, "a").c(3)
        result = check(h)
        assert result.serializable is True
        assert result.order is not None
        assert result.order[-1] == global_txn(3)


class TestResubmissionSemantics:
    def test_global_view_distortion_rejected(self):
        """H1's essence: T1's two incarnations read X from different
        sources — no serial arrangement can reproduce that."""
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).al(1, "a", inc=0)
        h.w(2, "a", "X").c(2).cl(2, "a")
        h.r(1, "a", "X", inc=1).cl(1, "a", inc=1)
        result = check(h)
        assert result.serializable is False

    def test_aborted_incarnation_write_is_undone_in_replay(self):
        """T1's aborted incarnation wrote X; T2 read X afterwards and
        must see the initial value, not the undone write."""
        h = HistoryBuilder()
        h.w(1, "a", "X", inc=0).p(1, "a").c(1).al(1, "a", inc=0)
        h.r(2, "a", "X").c(2).cl(2, "a")   # reads X from T0 (undone write)
        h.w(1, "a", "X", inc=1).cl(1, "a", inc=1)
        result = check(h)
        # Serializable: T2 before T1 (T2 saw initial X, T1's surviving
        # write lands after).
        assert result.serializable is True
        order = result.order
        assert order.index(global_txn(2)) < order.index(global_txn(1))

    def test_dirty_read_from_excluded_txn_rejected(self):
        """A read sourced from a transaction outside C(H) (a dirty read
        under a non-rigorous LTM) can never be matched."""
        h = HistoryBuilder()
        h.w(2, "a", "X")                      # T2 writes, never commits globally
        h.r(1, "a", "X").c(1).cl(1, "a")      # T1 read T2's dirty write
        result = check(h)
        assert result.serializable is False
        assert "dirty read" in result.reason


class TestFinalWrites:
    def test_final_write_mismatch_rejected(self):
        """T1 and T2 blind-write X; physical final writer is T2; an
        order putting T1 last would flip the final write.  The checker
        must find T1 < T2 (both orders match reads trivially — no reads
        — so only the final-write condition selects)."""
        h = HistoryBuilder()
        h.w(1, "a", "X").w(2, "a", "X")
        h.cl(1, "a").cl(2, "a").c(1).c(2)
        result = check(h)
        assert result.serializable is True
        assert result.order.index(global_txn(2)) > result.order.index(global_txn(1))


class TestSearchBounds:
    def test_undecided_beyond_bound_with_cyclic_sg(self):
        h = HistoryBuilder()
        # Three pairwise write-write cycles -> cyclic SG, 4 txns, bound 3.
        h.r(1, "a", "X").r(2, "a", "X").r(3, "a", "X").r(4, "a", "X")
        h.w(1, "a", "X").w(2, "a", "X").w(3, "a", "X").w(4, "a", "X")
        h.cl(1, "a").cl(2, "a").cl(3, "a").cl(4, "a")
        h.c(1).c(2).c(3).c(4)
        result = check(h, max_txns=3)
        assert result.serializable is None
        assert "exceed" in result.reason

    def test_permutation_counter_reported(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").r(2, "a", "X")
        h.w(1, "a", "X").cl(1, "a").c(1)
        h.w(2, "a", "X").cl(2, "a").c(2)
        result = check(h)
        assert result.permutations_tried >= 1
