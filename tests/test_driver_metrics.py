"""Tests for the simulation driver and the metrics/audit layer."""

import pytest

from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.sim.driver import run_schedule
from repro.sim.failures import RandomFailureInjector
from repro.sim.metrics import audit, collect_metrics
from repro.sim.report import render_table
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


def small_workload(n_global=10, n_local=0, seed=1, **kwargs):
    return WorkloadGenerator(
        WorkloadConfig(
            sites=("a", "b"),
            n_global=n_global,
            n_local=n_local,
            keys_per_site=32,
            seed=seed,
            **kwargs,
        )
    ).generate()


def build(method="2cm", **kwargs):
    return MultidatabaseSystem(
        SystemConfig(sites=("a", "b"), n_coordinators=2, method=method, **kwargs)
    )


class TestDriver:
    def test_all_outcomes_collected(self):
        system = build()
        schedule = small_workload()
        result = run_schedule(system, schedule)
        assert len(result.global_outcomes) == 10
        assert result.finished_at > 0

    def test_failure_free_2cm_never_aborts_via_certification(self):
        """Sec. 6: failure-free 2CM aborts nothing *through its
        certifications*.  (Lock-wait timeouts — S2PL deadlock
        resolution — can still abort under any method.)"""
        system = build()
        result = run_schedule(system, small_workload(n_global=20, seed=3))
        metrics = collect_metrics(system)
        assert metrics.refusals_by_reason.get("alive-intersection", 0) == 0
        assert metrics.refusals_by_reason.get("prepare-out-of-order", 0) == 0
        assert metrics.commit_delays >= 0  # delays allowed, aborts not
        non_lock_aborts = [
            txn
            for txn in result.aborted_globals
            if result.global_outcomes[txn].reason.value != "lock-timeout"
        ]
        assert non_lock_aborts == []
        assert len(result.committed_globals) + len(result.aborted_globals) == 20

    def test_local_outcomes_collected(self):
        system = build()
        schedule = small_workload(n_global=5, n_local=4, seed=2)
        result = run_schedule(system, schedule)
        assert len(result.local_outcomes) == 4

    def test_latencies_positive(self):
        system = build()
        result = run_schedule(system, small_workload())
        assert all(lat > 0 for lat in result.commit_latencies)

    def test_retry_resubmits_aborted(self):
        system = build(method="ticket")
        injector = RandomFailureInjector(
            system, probability=0.5, seed=5, max_aborts_per_subtxn=1
        )
        schedule = small_workload(n_global=15, seed=4, update_fraction=1.0)
        result = run_schedule(system, schedule, retry_aborted=3)
        assert injector.injected > 0
        # Every original either committed directly or via a retry chain.
        assert result.logical_commit_fraction() == 1.0

    def test_deterministic_runs(self):
        first = run_schedule(build(seed=9), small_workload(seed=9))
        second = run_schedule(build(seed=9), small_workload(seed=9))
        assert (
            first.system.history.render() == second.system.history.render()
        )


class TestMetrics:
    def test_collect_counts_commits(self):
        system = build()
        result = run_schedule(system, small_workload(n_global=12, seed=6))
        metrics = collect_metrics(system, latencies=result.commit_latencies)
        assert metrics.global_committed == 12
        assert metrics.global_aborted == 0
        assert metrics.abort_rate == 0.0
        assert metrics.mean_latency > 0
        assert metrics.throughput > 0
        assert metrics.messages > 0
        assert metrics.force_writes > 0

    def test_refusals_bucketed_by_reason(self):
        from repro.workload.scenarios import run_h1

        result = run_h1("2cm")
        metrics = collect_metrics(result.system)
        assert metrics.refusals_by_reason.get("alive-intersection") == 1
        assert metrics.resubmissions == 1
        assert metrics.unilateral_aborts == 1

    def test_empty_metrics(self):
        metrics = collect_metrics(build())
        assert metrics.abort_rate == 0.0
        assert metrics.mean_latency == 0.0
        assert metrics.throughput == 0.0


class TestAudit:
    def test_clean_run_audits_ok(self):
        system = build()
        run_schedule(system, small_workload(n_global=15, seed=7))
        report = audit(system, max_txns=6)
        assert report.ok
        assert report.rigor_violations == 0
        assert not report.distortions.has_global_distortion

    def test_summary_renders(self):
        system = build()
        run_schedule(system, small_workload(n_global=3, seed=8))
        text = audit(system).summary()
        assert "view serializable: True" in text


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(
            "My table",
            ["method", "aborts", "ok"],
            [["2cm", 0, True], ["cgm", 12, False]],
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "method" in lines[2]
        assert "yes" in text and "no" in text

    def test_floats_formatted(self):
        text = render_table("t", ["x"], [[1.23456]])
        assert "1.235" in text
