"""End-to-end chaos nemesis tests (repro.sim.failures chaos harness)."""

import pytest

from repro.sim.failures import ChaosConfig, build_fault_plan, run_chaos


class TestInvariantsUnderChaos:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_nemesis_seeds_hold_every_invariant(self, seed):
        result = run_chaos(ChaosConfig(seed=seed, duration=2000, n_global=16))
        assert result.ok, "\n".join(map(str, result.violations))
        # Something actually finished despite the nemesis.
        assert result.committed + result.aborted > 0

    def test_one_seed_exercises_every_fault_class(self):
        """The acceptance bar: loss, duplication, a partition and an
        agent crash all demonstrably occur in a single run — asserted
        through the counters, not hoped for."""
        result = run_chaos(ChaosConfig(seed=0))
        assert result.ok, "\n".join(map(str, result.violations))
        counters = result.counters
        assert counters["messages_lost"] > 0
        assert counters["messages_duplicated"] > 0
        assert counters["partition_drops"] > 0
        assert counters["agent_crashes"] > 0
        # And the session layer visibly repaired the damage.
        assert counters["retransmits"] > 0

    def test_chaos_is_seed_deterministic(self):
        first = run_chaos(ChaosConfig(seed=4, duration=1500, n_global=12))
        second = run_chaos(ChaosConfig(seed=4, duration=1500, n_global=12))
        assert first.ok and second.ok
        assert first.counters == second.counters
        assert first.committed == second.committed
        assert first.aborted == second.aborted
        assert first.sim_time == second.sim_time

    def test_chaos_with_durable_wal_recovers_clean(self, tmp_path):
        result = run_chaos(
            ChaosConfig(
                seed=3,
                duration=1500,
                n_global=12,
                durability_root=tmp_path,
            )
        )
        assert result.ok, "\n".join(map(str, result.violations))


class TestFaultPlanConstruction:
    def test_plan_heals_at_duration(self):
        config = ChaosConfig(seed=9, duration=1234)
        plan = build_fault_plan(config)
        assert plan.heal_at == 1234
        assert len(plan.partitions) == config.n_partitions
        assert len(plan.bursts) == config.n_bursts
        for partition in plan.partitions:
            assert 0 < partition.start < partition.end <= 1234

    def test_plan_is_deterministic_per_seed(self):
        a = build_fault_plan(ChaosConfig(seed=6))
        b = build_fault_plan(ChaosConfig(seed=6))
        assert a == b
        c = build_fault_plan(ChaosConfig(seed=7))
        assert a != c
