"""Federation layer: shard routing, epoch fencing, live handoff.

The tentpole promise under test: with ``SystemConfig.federation`` set,
BEGINs route by key hash to the owning coordinator, a wrong-shard BEGIN
is *refused* (with a redirect hint) rather than run, ownership moves
live via drain → epoch bump → adopt, and agents fence BEGINs from
deposed owners so a coordinator that missed a handoff cannot start
fresh globals it has no authority over.  Also the satellite regression:
two coordinators restarting concurrently must not cross-contaminate
each other's session-layer retransmission windows.
"""

import asyncio

import pytest

from repro.common.errors import ConfigError, RefusalReason
from repro.common.ids import global_txn
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.federation.shard import FederationConfig, ShardMap, shard_of_key
from repro.kernel.events import EventKernel
from repro.ldbs.commands import AddValue, UpdateItem
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel, Network
from repro.net.reliable import ReliableConfig, SessionLayer
from repro.rt.codec import decode_message, encode_message
from repro.rt.host import ProtocolHost
from repro.sim.metrics import collect_metrics

from tests.fingerprint_util import fingerprint, run_seeded_workload

N_SHARDS = 8


def _system(n_coordinators=3, **federation_overrides):
    config = SystemConfig(
        sites=("a", "b"),
        n_coordinators=n_coordinators,
        federation=FederationConfig(n_shards=N_SHARDS, **federation_overrides),
        seed=11,
    )
    system = MultidatabaseSystem(config)
    system.load("a", "t", {k: 0 for k in range(64)})
    system.load("b", "t", {k: 0 for k in range(64)})
    return system


def _spec(n, sites=("a",)):
    return GlobalTransactionSpec(
        txn=global_txn(n),
        steps=tuple(
            (site, UpdateItem("t", n % 64, AddValue(1))) for site in sites
        ),
    )


class TestShardMap:
    def test_initial_round_robin_covers_every_coordinator(self):
        shard_map = ShardMap.initial(8, ["c1", "c2", "c3"])
        assert shard_map.n_shards == 8
        assert set(shard_map.coordinators()) == {"c1", "c2", "c3"}
        for shard in shard_map.shards():
            assert shard_map.epoch(shard) == 1

    def test_shard_of_key_is_stable_and_in_range(self):
        for key in range(200):
            shard = shard_of_key(key, N_SHARDS)
            assert 0 <= shard < N_SHARDS
            assert shard == shard_of_key(key, N_SHARDS)
        # keys actually spread across buckets
        assert len({shard_of_key(k, N_SHARDS) for k in range(200)}) == N_SHARDS

    def test_reassign_bumps_epoch(self):
        shard_map = ShardMap.initial(4, ["c1", "c2"])
        assert shard_map.reassign(0, "c2") == 2
        assert shard_map.owner(0) == "c2"
        assert shard_map.epoch(0) == 2

    def test_adopt_never_regresses(self):
        shard_map = ShardMap.initial(4, ["c1", "c2"])
        assert shard_map.adopt(0, "c2", 3)
        # a stale echo from before the handoff must be ignored
        assert not shard_map.adopt(0, "c1", 2)
        assert shard_map.owner(0) == "c2"
        assert shard_map.epoch(0) == 3
        with pytest.raises(ConfigError):
            shard_map.adopt(99, "c1", 1)

    def test_install_never_regresses(self):
        live = ShardMap.initial(4, ["c1", "c2"])
        live.reassign(0, "c2")  # epoch 2
        stale = ShardMap.initial(4, ["c1", "c2"])  # still epoch 1 at shard 0
        live.install(stale)
        assert live.owner(0) == "c2"
        assert live.epoch(0) == 2
        newer = ShardMap.initial(4, ["c1", "c2"])
        newer.adopt(1, "c1", 7)
        live.install(newer)
        assert live.owner(1) == "c1"
        assert live.epoch(1) == 7

    def test_dict_round_trip(self):
        shard_map = ShardMap.initial(6, ["c1", "c2", "c3"])
        shard_map.reassign(2, "c1")
        restored = ShardMap.from_dict(shard_map.to_dict())
        for shard in shard_map.shards():
            assert restored.owner(shard) == shard_map.owner(shard)
            assert restored.epoch(shard) == shard_map.epoch(shard)


class TestFederatedRouting:
    def test_routed_submission_commits_across_all_coordinators(self):
        system = _system()
        events = [system.submit(_spec(n, sites=("a", "b"))) for n in range(1, 25)]
        system.kernel.run()
        assert all(event.value.committed for event in events)
        per_coordinator = [c.committed for c in system.coordinators]
        assert sum(per_coordinator) == 24
        # round-robin shard assignment puts work on every coordinator
        assert all(count > 0 for count in per_coordinator)
        system.close()

    def test_wrong_shard_begin_refused_with_redirect(self):
        system = _system()
        spec = _spec(1)
        owner = system.shard_map.owner_of(spec.txn)
        wrong = next(
            i
            for i, coordinator in enumerate(system.coordinators)
            if coordinator.name != owner
        )
        event = system.submit(spec, coordinator=wrong)
        system.kernel.run()
        outcome = event.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.WRONG_SHARD
        assert outcome.redirect == owner
        assert system.coordinators[wrong].wrong_shard_refusals == 1
        # the refusal never opened protocol state anywhere
        assert system.coordinators[wrong].committed == 0
        system.close()

    def test_router_follows_redirect_after_handoff(self):
        system = _system()
        spec = _spec(1)
        shard = system.shard_map.shard_of(spec.txn)
        old_owner = system.shard_map.owner(shard)
        new_owner = next(
            c.name for c in system.coordinators if c.name != old_owner
        )
        done = system.handoff(shard, new_owner)
        system.kernel.run()
        assert done.value["epoch"] == 2
        event = system.submit(spec)
        system.kernel.run()
        assert event.value.committed
        index = {c.name: i for i, c in enumerate(system.coordinators)}
        assert system.coordinators[index[new_owner]].committed == 1
        assert system.coordinators[index[old_owner]].committed == 0
        system.close()

    def test_handoff_under_traffic_keeps_every_outcome_decided(self):
        system = _system()
        events = [system.submit(_spec(n, sites=("a", "b"))) for n in range(1, 41)]
        shard = 0
        target = next(
            c.name
            for c in system.coordinators
            if c.name != system.shard_map.owner(shard)
        )
        handoff_done = system.handoff(shard, target)
        system.kernel.run()
        assert handoff_done.value["to"] == target
        assert handoff_done.value["epoch"] == 2
        assert system.handoffs == 1
        # every submission decided; a drain-window straggler may abort
        # with WRONG_SHARD ("unnecessary aborts, only") but none hang
        for event in events:
            assert event.value.committed or event.value.reason is not None
        metrics = collect_metrics(system)
        assert metrics.handoffs == 1
        committed = sum(1 for event in events if event.value.committed)
        assert metrics.global_committed == committed
        # the refusal side of each forwarded hop is also counted as an
        # abort at the refusing coordinator, so >= rather than ==
        assert metrics.global_aborted >= 40 - committed
        assert metrics.lease_grants >= 1
        assert metrics.lease_refills >= 1
        system.close()

    def test_leases_power_federated_sns(self):
        system = _system(lease_span=4)
        events = [system.submit(_spec(n)) for n in range(1, 21)]
        system.kernel.run()
        assert all(event.value.committed for event in events)
        metrics = collect_metrics(system)
        # span 4 forces several refills; the synchronous sim grant path
        # means the fallback never fires
        assert metrics.lease_grants >= 3
        assert metrics.lease_fallback_draws == 0
        sns = [event.value.sn for event in events]
        assert len(set(sns)) == len(sns)
        system.close()

    def test_same_seed_federated_runs_are_identical(self):
        results = [
            run_seeded_workload(
                seed=5,
                n_global=16,
                n_local=4,
                federation=FederationConfig(n_shards=N_SHARDS),
            )
            for _ in range(2)
        ]
        assert fingerprint(results[0]) == fingerprint(results[1])
        for result in results:
            result.system.close()


class TestAgentEpochFence:
    def _begin(self, agent, n, epoch, src="coord:c1"):
        return Message(
            MsgType.BEGIN,
            src=src,
            dst=agent.address,
            txn=global_txn(n),
            shard=0,
            shard_epoch=epoch,
        )

    def test_stale_epoch_begin_fenced(self):
        system = _system()
        agent = system.agent("a")
        # the new owner's BEGIN establishes epoch 2 for shard 0
        agent._on_begin(self._begin(agent, 1, epoch=2, src="coord:c2"))
        assert agent.fenced_begins == 0
        # the deposed owner, unaware of the handoff, tries to open a
        # fresh global at the old epoch: fenced, no state opened
        agent._on_begin(self._begin(agent, 2, epoch=1, src="coord:c1"))
        assert agent.fenced_begins == 1
        assert agent.refusals.get(RefusalReason.WRONG_SHARD) == 1
        assert global_txn(2) not in agent._txns
        # equal or newer epochs pass
        agent._on_begin(self._begin(agent, 3, epoch=2, src="coord:c2"))
        assert agent.fenced_begins == 1
        assert global_txn(3) in agent._txns
        system.close()

    def test_fenced_txn_command_fails_wrong_shard(self):
        system = _system()
        agent = system.agent("a")
        agent._on_begin(self._begin(agent, 1, epoch=5, src="coord:c2"))
        agent._on_begin(self._begin(agent, 2, epoch=1, src="coord:ghost"))
        replies = []
        system.transport.register("coord:ghost", replies.append)
        agent._on_command(
            Message(
                MsgType.COMMAND,
                src="coord:ghost",
                dst=agent.address,
                txn=global_txn(2),
                payload=UpdateItem("t", 1, AddValue(1)),
            )
        )
        system.kernel.run()
        assert len(replies) == 1
        assert replies[0].payload.reason is RefusalReason.WRONG_SHARD
        system.close()

    def test_unstamped_begin_unaffected(self):
        # classic (non-federated) BEGINs carry no shard stamp and are
        # never fenced — the fence is invisible outside the federation
        system = _system()
        agent = system.agent("a")
        agent._on_begin(
            Message(
                MsgType.BEGIN,
                src="coord:c1",
                dst=agent.address,
                txn=global_txn(9),
            )
        )
        assert agent.fenced_begins == 0
        assert global_txn(9) in agent._txns
        system.close()


def test_codec_round_trips_shard_stamp():
    original = Message(
        MsgType.BEGIN,
        src="coord:c2",
        dst="agent:a",
        txn=global_txn(3),
        session=(0, 1),
        shard=5,
        shard_epoch=4,
    )
    decoded = decode_message(encode_message(original))
    assert decoded.shard == 5
    assert decoded.shard_epoch == 4
    plain = decode_message(
        encode_message(
            Message(
                MsgType.BEGIN, src="coord:c1", dst="agent:a", txn=global_txn(4)
            )
        )
    )
    assert plain.shard is None and plain.shard_epoch is None


class TestConcurrentCoordinatorRestarts:
    """Satellite regression: per-peer session resets stay per-peer."""

    def _msg(self, dst, payload):
        return Message(
            MsgType.COMMAND,
            src="ep:storm",
            dst=dst,
            txn=global_txn(1),
            payload=payload,
        )

    def test_reset_peer_touches_only_that_peers_channels(self):
        kernel = EventKernel()
        network = Network(kernel, latency=LatencyModel(base=0.01))
        session = SessionLayer(kernel, network, ReliableConfig(jitter=0.0))
        session.register("ep:storm", lambda m: None)
        got = {"ep:c1": [], "ep:c2": []}
        session.register("ep:c1", lambda m: got["ep:c1"].append(m.payload))
        session.register("ep:c2", lambda m: got["ep:c2"].append(m.payload))

        session.send(self._msg("ep:c1", "c1-m1"))
        session.send(self._msg("ep:c2", "c2-m1"))
        kernel.run(until=1.0)

        # both coordinators die mid-window
        session.note_endpoint_down("ep:c1")
        session.note_endpoint_down("ep:c2")
        session.send(self._msg("ep:c1", "c1-m2"))
        session.send(self._msg("ep:c2", "c2-m2"))
        kernel.run(until=2.0)
        c1_state = session._send_states[("ep:storm", "ep:c1")]
        c2_state = session._send_states[("ep:storm", "ep:c2")]
        assert c1_state.unacked and c2_state.unacked

        # c1's restart is detected first: only c1's channel may reset
        session.note_endpoint_up("ep:c1")
        assert session.reset_peer("ep:c1") == 1
        assert c1_state.epoch == 1
        assert c2_state.epoch == 0, "c2's window was cross-contaminated"
        c2_pending = list(c2_state.unacked)

        kernel.run(until=3.0)
        assert got["ep:c1"] == ["c1-m1", "c1-m2"]
        # c2 is still down; its window must be exactly as it was
        assert list(c2_state.unacked) == c2_pending

        # now c2's restart lands: its channel resets independently
        session.note_endpoint_up("ep:c2")
        assert session.reset_peer("ep:c2") == 1
        assert c2_state.epoch == 1
        assert c1_state.epoch == 1
        kernel.run(until=4.0)
        assert got["ep:c2"] == ["c2-m1", "c2-m2"]
        assert session.session_resets == 2

    def test_two_live_coordinators_restarting_concurrently(self):
        """ProtocolHost end-to-end: both coordinator peers SIGKILL and
        respawn with new boot ids; each surviving channel resets exactly
        once and redelivers only its own pending window."""
        fast = ReliableConfig(
            rto=0.2, backoff=2.0, max_rto=1.0, jitter=0.0, max_retries=200
        )

        async def scenario():
            client = ProtocolHost("storm", reliable=fast, boot_id="boot-s")
            await client.start()
            client.transport.register("ep:storm", lambda m: None)

            coords = {}
            got = {"c1": [], "c2": []}
            ports = {}
            for name in ("c1", "c2"):
                host = ProtocolHost(name, reliable=fast, boot_id=f"{name}-b1")
                addr, port = await host.start()
                host.transport.register(
                    f"ep:{name}", lambda m, n=name: got[n].append(m.payload)
                )
                client.add_peer(name, addr, port, [f"ep:{name}"])
                host.add_peer("storm", *client.bound, ["ep:storm"])
                coords[name] = host
                ports[name] = (addr, port)

            async def wait_for(cond, what):
                deadline = asyncio.get_running_loop().time() + 10.0
                while not cond():
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError(f"timed out waiting for {what}")
                    await asyncio.sleep(0.02)

            client.transport.send(self._msg("ep:c1", "c1-m1"))
            client.transport.send(self._msg("ep:c2", "c2-m1"))
            await wait_for(
                lambda: got["c1"] == ["c1-m1"] and got["c2"] == ["c2-m1"],
                "initial delivery",
            )
            s1 = client.session._send_states[("ep:storm", "ep:c1")]
            s2 = client.session._send_states[("ep:storm", "ep:c2")]
            await wait_for(
                lambda: not s1.unacked and not s2.unacked, "initial acks"
            )

            # both incarnations vanish mid-window
            await coords["c1"].close()
            await coords["c2"].close()
            client.transport.send(self._msg("ep:c1", "c1-m2"))
            client.transport.send(self._msg("ep:c2", "c2-m2"))

            # both respawn concurrently on their old ports, new boots
            got2 = {"c1": [], "c2": []}
            respawned = {}
            for name in ("c1", "c2"):
                host = ProtocolHost(name, reliable=fast, boot_id=f"{name}-b2")
                await host.start(*ports[name])
                host.transport.register(
                    f"ep:{name}", lambda m, n=name: got2[n].append(m.payload)
                )
                host.add_peer("storm", *client.bound, ["ep:storm"])
                respawned[name] = host

            await wait_for(
                lambda: got2["c1"] == ["c1-m2"] and got2["c2"] == ["c2-m2"],
                "window redelivery to both successors",
            )
            # exactly one reset per restarted peer, and each channel's
            # epoch bumped exactly once — no cross-contamination
            assert client.peer_resets == 2
            assert s1.epoch == 1
            assert s2.epoch == 1
            await wait_for(
                lambda: not s1.unacked and not s2.unacked, "window drain"
            )
            # nothing leaked across channels
            assert got2["c1"] == ["c1-m2"]
            assert got2["c2"] == ["c2-m2"]

            await client.close()
            for host in respawned.values():
                await host.close()

        asyncio.run(scenario())
