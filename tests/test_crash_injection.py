"""Crash-injection: kill the 2PC Agent at any protocol point and
recover it purely from its durable log.

The acceptance property of the durability subsystem: for every crash
point, after recovery the global outcome is atomic — a globally
committed transaction locally commits at *every* participant and a
globally aborted one aborts at every participant — and the recorded
history still passes the full correctness audit.

Set ``REPRO_WAL_KEEP_DIR`` to keep the WAL directories on disk (the CI
crash-recovery job uploads them as artifacts when a test fails).
"""

import os
import re
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.ids import global_txn
from repro.core.agent import CRASH_POINTS
from repro.core.coordinator import CoordinatorTimeouts, GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.durability import DurabilityConfig, scan_wal
from repro.history.model import OpKind
from repro.ldbs.commands import AddValue, UpdateItem
from repro.net.network import LatencyModel
from repro.sim.driver import run_schedule
from repro.sim.failures import (
    AgentCrashInjector,
    RandomAgentCrashInjector,
    RandomFailureInjector,
)
from repro.sim.metrics import audit
from repro.workload.generator import WorkloadConfig, WorkloadGenerator

TIMEOUTS = CoordinatorTimeouts(
    result_timeout=200.0, vote_timeout=150.0, ack_timeout=25.0
)


@pytest.fixture
def wal_root(tmp_path, request):
    """A per-test WAL directory, kept on disk for CI artifact upload
    when ``REPRO_WAL_KEEP_DIR`` is set."""
    keep = os.environ.get("REPRO_WAL_KEEP_DIR")
    if not keep:
        return tmp_path
    slug = re.sub(r"[^\w.-]+", "_", request.node.nodeid)
    root = Path(keep) / slug
    root.mkdir(parents=True, exist_ok=True)
    return root


def build(wal_root, **kwargs):
    kwargs.setdefault("sites", ("a", "b"))
    kwargs.setdefault("latency", LatencyModel(base=5.0))
    kwargs.setdefault(
        "durability", DurabilityConfig(root=str(wal_root), sync="simulated")
    )
    kwargs.setdefault("coordinator_timeouts", TIMEOUTS)
    system = MultidatabaseSystem(SystemConfig(**kwargs))
    system.load("a", "t", {"X": 100})
    system.load("b", "t", {"Z": 10})
    return system


def spec(i=1):
    return GlobalTransactionSpec(
        txn=global_txn(i),
        steps=(
            ("a", UpdateItem("t", "X", AddValue(5))),
            ("b", UpdateItem("t", "Z", AddValue(5))),
        ),
    )


def drain(system, limit=5_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=100_000)
    assert not system.kernel.pending, "simulation did not quiesce"


def snapshot(system, site):
    return {k.key: v for k, v in system.ltm(site).store.snapshot("t").items()}


def assert_atomic(system):
    """Globally committed ⇒ locally committed everywhere it ran;
    globally aborted ⇒ locally committed nowhere."""
    history = system.history
    committed = history.globally_committed()
    aborted = {
        op.txn for op in history.ops if op.kind is OpKind.GLOBAL_ABORT
    }
    local_commits = {
        (op.txn, op.site)
        for op in history.ops
        if op.kind is OpKind.LOCAL_COMMIT
    }
    touched = {}
    for op in history.ops:
        if op.site is not None and op.txn is not None:
            touched.setdefault(op.txn, set()).add(op.site)
    for txn in committed:
        for site in touched.get(txn, set()):
            assert (txn, site) in local_commits, (
                f"{txn} globally committed but not locally at {site}"
            )
    for txn in aborted:
        assert not any(t == txn for t, _ in local_commits), (
            f"{txn} globally aborted but locally committed somewhere"
        )


def assert_clean_wals(system, wal_root):
    system.close()
    for child in sorted(Path(wal_root).iterdir()):
        if child.is_dir():
            report = scan_wal(str(child))
            assert report.clean, f"{child}: {report.summary()}"


class TestKillAtEveryPoint:
    """The acceptance matrix: one scripted kill per protocol point."""

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_and_recover_is_atomic(self, wal_root, point):
        system = build(wal_root)
        injector = AgentCrashInjector(
            system, "a", point, restart_after=40.0
        )
        done = system.submit(spec())
        drain(system)

        assert injector.fired is not None, f"probe never hit {point}"
        assert system.agent("a").crashes == 1
        assert system.agent("a").restarts == 1
        assert done.done
        state_a, state_b = snapshot(system, "a"), snapshot(system, "b")
        if done.value.committed:
            assert state_a["X"] == 105 and state_b["Z"] == 15
        else:
            assert state_a["X"] == 100 and state_b["Z"] == 10
        assert_atomic(system)
        assert audit(system).ok
        assert_clean_wals(system, wal_root)

    @pytest.mark.parametrize(
        "point", ("post-ready", "post-commit-decision", "post-commit-record")
    )
    def test_post_promise_crashes_still_commit(self, wal_root, point):
        """Once the prepare record is forced and READY sent, the
        participant has promised: a crash after that point must not
        cost the global commit."""
        system = build(wal_root)
        AgentCrashInjector(system, "a", point, restart_after=40.0)
        done = system.submit(spec())
        drain(system)
        assert done.value.committed
        assert snapshot(system, "a")["X"] == 105
        assert snapshot(system, "b")["Z"] == 15
        assert audit(system).ok
        assert_clean_wals(system, wal_root)

    def test_pre_prepare_crash_aborts_globally(self, wal_root):
        """A silent voter is counted as REFUSE: the transaction aborts
        at every site, including the crashed one after it recovers."""
        system = build(wal_root)
        injector = AgentCrashInjector(
            system, "a", "pre-prepare", restart_after=40.0
        )
        system.submit(spec())
        drain(system)
        coordinator = system.coordinators[0]
        assert coordinator.aborted == 1
        assert coordinator.vote_timeouts == 1
        assert injector.fired is not None
        assert snapshot(system, "a")["X"] == 100
        assert snapshot(system, "b")["Z"] == 10
        assert_atomic(system)
        assert_clean_wals(system, wal_root)

    def test_crash_without_restart_fails_loudly(self, wal_root):
        """A site that never comes back exhausts the bounded resends:
        the run raises instead of hanging forever."""
        from repro.common.errors import SimulationError

        system = build(wal_root)
        injector = AgentCrashInjector(
            system, "a", "post-prepare", restart_after=None
        )
        done = system.submit(spec())
        drain(system)
        assert isinstance(done.error, SimulationError)
        assert "no rollback-ack" in str(done.error)
        assert system.agent("a").crashed
        assert injector.recovered_txns is None
        # Site b obeyed the rollback before delivery to a gave up.
        assert snapshot(system, "b")["Z"] == 10

    def test_unknown_point_rejected(self, wal_root):
        system = build(wal_root)
        with pytest.raises(ConfigError):
            AgentCrashInjector(system, "a", "mid-quantum")


class TestCrashUnderLoad:
    def test_random_agent_crashes_stay_atomic(self, wal_root):
        system = build(
            wal_root,
            n_coordinators=2,
            latency=LatencyModel(base=2.0),
        )
        injector = RandomAgentCrashInjector(
            system,
            probability=0.08,
            min_downtime=10.0,
            max_downtime=40.0,
            seed=7,
        )
        schedule = WorkloadGenerator(
            WorkloadConfig(
                sites=("a", "b"), n_global=12, keys_per_site=24, seed=7
            )
        ).generate()
        run_schedule(system, schedule)
        drain(system, limit=50_000.0)
        assert injector.crash_log, "no crash fired; weaken the odds"
        assert_atomic(system)
        report = audit(system)
        assert report.rigor_violations == 0
        assert not report.distortions.has_global_distortion
        assert_clean_wals(system, wal_root)


class TestKillPointFuzz:
    """Short Hypothesis fuzz over (site, point, downtime)."""

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        site=st.sampled_from(("a", "b")),
        point=st.sampled_from(CRASH_POINTS),
        downtime=st.floats(min_value=1.0, max_value=120.0),
    )
    def test_any_kill_is_atomic(self, site, point, downtime):
        with tempfile.TemporaryDirectory() as root:
            system = build(Path(root))
            AgentCrashInjector(system, site, point, restart_after=downtime)
            done = system.submit(spec())
            drain(system)
            assert done.done
            state_a, state_b = snapshot(system, "a"), snapshot(system, "b")
            if done.value.committed:
                assert state_a["X"] == 105 and state_b["Z"] == 15
            else:
                assert state_a["X"] == 100 and state_b["Z"] == 10
            assert_atomic(system)
            assert audit(system).ok
            assert_clean_wals(system, root)


class TestCoordinatorTakeover:
    def test_resume_in_doubt_redelivers_and_ends(self, wal_root):
        """A decision sealed in the log but never delivered is finished
        by ``resume_in_doubt`` — the agents see COMMIT for a transaction
        they no longer know and idempotently re-ack."""
        from repro.durability import Decision

        system = build(wal_root)
        coordinator = system.coordinators[0]
        assert coordinator.decision_log is not None
        # Seal a decision as a dead predecessor would have, without
        # any delivery having happened.
        coordinator.decision_log.log_decision(
            Decision(
                txn=global_txn(9), committed=True, sn=None, sites=("a", "b")
            )
        )
        assert [d.txn for d in coordinator.decision_log.in_doubt()] == [
            global_txn(9)
        ]
        resumed = coordinator.resume_in_doubt()
        assert resumed == 1
        drain(system)
        assert coordinator.decision_log.in_doubt() == []
        assert_clean_wals(system, wal_root)

    def test_takeover_replaces_network_registration(self, wal_root):
        from repro.core.coordinator import Coordinator

        system = build(wal_root)
        old = system.coordinators[0]
        successor = Coordinator(
            name=old.name,
            site=old.site,
            kernel=system.kernel,
            network=system.network,
            history=system.history,
            sn_generator=old.sn_generator,
            timeouts=TIMEOUTS,
            decision_log=old.decision_log,
            takeover=True,
        )
        assert system.network._handlers[successor.address] == (
            successor._on_message
        )
        assert successor.resume_in_doubt() == 0
        system.close()

    def test_duplicate_registration_without_takeover_rejected(
        self, wal_root
    ):
        from repro.core.coordinator import Coordinator

        system = build(wal_root)
        old = system.coordinators[0]
        with pytest.raises(ConfigError):
            Coordinator(
                name=old.name,
                site=old.site,
                kernel=system.kernel,
                network=system.network,
                history=system.history,
                sn_generator=old.sn_generator,
            )
        system.close()


class TestInjectorDeterminism:
    """Satellite: same seed ⇒ identical schedules, different ⇒ not."""

    def run_storm(self, seed):
        system = MultidatabaseSystem(
            SystemConfig(sites=("a", "b"), method="2cm")
        )
        injector = RandomFailureInjector(
            system, probability=0.6, max_delay=30.0, seed=seed
        )
        schedule = WorkloadGenerator(
            WorkloadConfig(
                sites=("a", "b"), n_global=10, keys_per_site=16, seed=3
            )
        ).generate()
        run_schedule(system, schedule)
        return injector.schedule_log

    def test_same_seed_same_abort_schedule(self):
        first, second = self.run_storm(5), self.run_storm(5)
        assert first and first == second

    def test_different_seed_different_schedule(self):
        assert self.run_storm(5) != self.run_storm(6)

    def test_random_crash_injector_log_is_deterministic(self, tmp_path):
        def run(seed, root):
            system = build(root)
            injector = RandomAgentCrashInjector(
                system, probability=0.3, seed=seed
            )
            for i in range(1, 6):
                system.submit(
                    GlobalTransactionSpec(
                        txn=global_txn(i),
                        steps=(
                            ("a", UpdateItem("t", "X", AddValue(1))),
                            ("b", UpdateItem("t", "Z", AddValue(1))),
                        ),
                        think_time=float(i) * 5.0,
                    )
                )
            drain(system, limit=50_000.0)
            log = injector.crash_log
            system.close()
            return log

        first = run(4, tmp_path / "one")
        second = run(4, tmp_path / "two")
        third = run(5, tmp_path / "three")
        assert first == second
        assert first != third
