"""Coordinator kill points: the probe fires at the exact protocol
instants the chaos drill arms its SIGKILLs at.

``sn_drawn`` is before any PREPARE leaves (a kill there creates the
classic pre-decision blocking window), ``decision_logged`` is after the
DECISION record is forced but before any COMMIT leaves (the in-doubt
window the decision log must re-drive), ``mid_broadcast`` is after
⌈n/2⌉ COMMIT sends (some participants decided, some not).  Their
relative order — and that an abort path fires none of the commit-side
probes — is what makes the drill's per-kill-point assertions sound.
"""

import pytest

from repro.common.ids import global_txn
from repro.core.coordinator import (
    COORDINATOR_KILL_POINTS,
    GlobalTransactionSpec,
)
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.ldbs.commands import AddValue, UpdateItem
from repro.net.network import LatencyModel


def build(sites=("a", "b")):
    system = MultidatabaseSystem(
        SystemConfig(sites=sites, latency=LatencyModel(base=5.0))
    )
    system.load("a", "t", {"X": 100})
    if "b" in sites:
        system.load("b", "t", {"Z": 10})
    return system


def drain(system, limit=100_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending


def test_probe_order_spans_all_three_points_on_a_two_site_commit():
    system = build()
    fired = []
    system.coordinator().kill_probe = lambda point, txn: fired.append(
        (point, txn)
    )
    txn = global_txn(1)
    done = system.submit(
        GlobalTransactionSpec(
            txn=txn,
            steps=(
                ("a", UpdateItem("t", "X", AddValue(-5))),
                ("b", UpdateItem("t", "Z", AddValue(5))),
            ),
        )
    )
    drain(system)
    assert done.value.committed
    points = [point for point, _txn in fired]
    assert points == ["sn_drawn", "decision_logged", "mid_broadcast"]
    assert all(t == txn for _p, t in fired)
    assert tuple(points) == COORDINATOR_KILL_POINTS


def test_single_site_commit_skips_mid_broadcast():
    """With one participant there is no 'half the broadcast' window —
    the kill would be indistinguishable from decision_logged."""
    system = build(sites=("a",))
    fired = []
    system.coordinator().kill_probe = lambda point, _txn: fired.append(point)
    done = system.submit(
        GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(("a", UpdateItem("t", "X", AddValue(-5))),),
        )
    )
    drain(system)
    assert done.value.committed
    assert fired == ["sn_drawn", "decision_logged"]


def test_aborted_txn_fires_no_commit_side_probes():
    system = build()
    fired = []
    system.coordinator().kill_probe = lambda point, _txn: fired.append(point)
    txn = global_txn(1)
    done = system.submit(
        GlobalTransactionSpec(
            txn=txn,
            steps=(
                ("a", UpdateItem("t", "X", AddValue(-5))),
                ("b", UpdateItem("t", "Z", AddValue(5))),
            ),
        )
    )

    # kill b's incarnation while it is still active: the PREPARE (or the
    # next COMMAND) finds it not alive, votes REFUSE, and the global
    # decision is an abort
    from repro.sim.failures import abort_current_incarnation

    def try_abort():
        if done.done:
            return
        if not abort_current_incarnation(system, txn, "b"):
            system.kernel.schedule(1.0, try_abort)

    system.kernel.schedule(1.0, try_abort)
    drain(system)
    assert not done.value.committed
    assert "decision_logged" not in fired
    assert "mid_broadcast" not in fired


def test_resolvers_reject_unknown_points():
    from repro.rt.node import (
        resolve_coordinator_kill_point,
        resolve_kill_point,
    )

    for point in COORDINATOR_KILL_POINTS:
        assert resolve_coordinator_kill_point(point) == point
    with pytest.raises(ValueError, match="unknown coordinator kill point"):
        resolve_coordinator_kill_point("prepared")
    assert resolve_kill_point("prepared") == "post-prepare"
    with pytest.raises(ValueError, match="unknown kill point"):
        resolve_kill_point("sn_drawn")
