"""Tests for 2PC Agent restart recovery (TwoPCAgent.simulate_restart).

The Agent log is the durable half of the simulated prepared state; a
restarted agent must honour every READY promise it force-wrote before
the crash.
"""

from repro.common.errors import RefusalReason
from repro.common.ids import global_txn
from repro.core.agent import AgentConfig, AgentPhase
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.model import OpKind
from repro.ldbs.commands import AddValue, UpdateItem
from repro.net.network import LatencyModel
from repro.sim.metrics import audit


def build(**kwargs):
    kwargs.setdefault("sites", ("a", "b"))
    kwargs.setdefault("latency", LatencyModel(base=5.0))
    kwargs.setdefault("agent", AgentConfig(alive_check_interval=15.0))
    system = MultidatabaseSystem(SystemConfig(method="2cm", **kwargs))
    system.load("a", "t", {"X": 100})
    system.load("b", "t", {"Z": 10})
    return system


def spec(number=1, think_time=0.0):
    return GlobalTransactionSpec(
        txn=global_txn(number),
        steps=(
            ("a", UpdateItem("t", "X", AddValue(-5))),
            ("b", UpdateItem("t", "Z", AddValue(5))),
        ),
        think_time=think_time,
    )


def drain(system, limit=100_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending


def restart_when(system, site, predicate, delay=1.0):
    fired = [False]

    def observer(op):
        if fired[0] or not predicate(op):
            return
        fired[0] = True
        system.kernel.schedule(
            delay, lambda: system.agent(site).simulate_restart()
        )

    system.history.subscribe(observer)


class TestRestartWhilePrepared:
    def test_prepared_promise_survives_restart(self):
        """Crash after READY, before COMMIT: the recovered agent
        resubmits from the log and the global commit lands."""
        system = build(
            latency=LatencyModel(
                base=5.0, overrides={("coord:c1", "agent:a"): 60.0}
            )
        )
        done = system.submit(spec())
        restart_when(
            system,
            "a",
            lambda op: op.kind is OpKind.PREPARE and op.site == "a",
        )
        drain(system)
        assert done.value.committed
        assert system.agent("a").restarts == 1
        assert system.agent("a").resubmissions == 1
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        assert snapshot["X"] == 95  # applied exactly once
        assert audit(system).ok

    def test_restart_after_commit_record_finishes_commit(self):
        """Crash after the commit record was forced but before the
        local commit executed: recovery resubmits and commits."""
        system = build(
            latency=LatencyModel(
                base=5.0, overrides={("coord:c1", "agent:a"): 60.0}
            )
        )
        done = system.submit(spec())
        # Crash right when the COMMIT message lands at a (the commit
        # record is written synchronously in the handler; restarting one
        # tick later hits the window before resubmission completes).
        restart_when(
            system,
            "a",
            lambda op: op.kind is OpKind.GLOBAL_COMMIT,
            delay=61.0,  # just after COMMIT delivery at a
        )
        drain(system)
        assert done.value.committed
        assert system.agent("a").restarts == 1
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        assert snapshot["X"] == 95
        assert audit(system).ok

    def test_max_committed_sn_survives_restart(self):
        system = build()
        done = system.submit(spec(1))
        drain(system)
        assert done.value.committed
        sn = done.value.sn
        assert system.agent("a").log.max_committed_sn == sn
        system.agent("a").simulate_restart()
        assert system.certifier("a").max_committed_sn == sn


class TestRestartWhileActive:
    def test_active_transaction_fails_cleanly_after_restart(self):
        """Crash while the transaction is still executing commands: the
        coordinator ends up aborting it (the LDBS lost the orphan)."""
        system = build()
        done = system.submit(spec(1, think_time=40.0))
        system.kernel.schedule(
            20.0, lambda: system.agent("a").simulate_restart()
        )
        drain(system)
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason in (
            RefusalReason.NOT_ALIVE,
            RefusalReason.UNILATERAL,
        )
        # Nothing half-applied anywhere.
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot().items()}
        assert snapshot["X"] == 100
        assert audit(system).ok

    def test_restart_with_no_open_entries_is_trivial(self):
        system = build()
        done = system.submit(spec(1))
        drain(system)
        assert done.value.committed
        assert system.agent("a").simulate_restart() == 0
        # The system still works afterwards.
        second = system.submit(spec(2))
        drain(system)
        assert second.value.committed
        assert audit(system).ok


class TestRestartConcurrency:
    def test_unrelated_transaction_unaffected(self):
        """A restart at site a must not disturb a transaction that only
        touches site b."""
        system = build(
            n_coordinators=2,
            latency=LatencyModel(
                base=5.0, overrides={("coord:c1", "agent:a"): 60.0}
            ),
        )
        slow = system.submit(spec(1), coordinator=0)
        only_b = GlobalTransactionSpec(
            txn=global_txn(2),
            steps=(("b", UpdateItem("t", "Z", AddValue(1))),),
        )
        fast = system.submit(only_b, coordinator=1)
        restart_when(
            system,
            "a",
            lambda op: op.kind is OpKind.PREPARE and op.site == "a",
        )
        drain(system)
        assert slow.value.committed
        assert fast.value.committed
        assert audit(system).ok


class TestRedeliveredBegin:
    def test_redelivered_begin_after_recovery_is_dropped(self):
        """At-least-once redelivery: a BEGIN whose ack died with the
        process must be idempotent against the WAL-recovered entry,
        not a duplicate-BEGIN protocol violation (which livelocks the
        sender's retransmit window in the real runtime)."""
        import pytest

        from repro.common.errors import SimulationError
        from repro.net.messages import Message, MsgType

        system = build()
        agent = system.agent("a")
        begin = Message(
            MsgType.BEGIN, src="coord:c1", dst=agent.address, txn=global_txn(7)
        )
        agent._on_message(begin)
        assert global_txn(7) in agent._txns
        agent.crash()
        agent.recover()
        agent._on_message(begin)  # redelivered: dropped, no error
        assert agent.begin_redeliveries == 1

        # A duplicate for a live, non-recovered entry is still a bug.
        fresh = Message(
            MsgType.BEGIN, src="coord:c1", dst=agent.address, txn=global_txn(8)
        )
        agent._on_message(fresh)
        with pytest.raises(SimulationError):
            agent._on_begin(fresh)
