"""Protocol-level tests of the 2PC Agent + Coordinator through a full
system (repro.core.agent / repro.core.coordinator / repro.core.dtm)."""

import pytest

from repro.common.errors import RefusalReason
from repro.common.ids import SubtxnId, global_txn
from repro.core.agent import AgentConfig, AgentPhase
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.history.model import OpKind
from repro.ldbs.commands import AddValue, InsertItem, ReadItem, UpdateItem
from repro.ldbs.ltm import LTMConfig
from repro.net.network import LatencyModel
from repro.sim.failures import (
    abort_current_incarnation,
    inject_abort_after_global_commit,
    inject_abort_after_prepare,
)
from repro.sim.metrics import audit


def build(method="2cm", **kwargs):
    kwargs.setdefault("sites", ("a", "b"))
    kwargs.setdefault("latency", LatencyModel(base=5.0))
    system = MultidatabaseSystem(SystemConfig(method=method, **kwargs))
    system.load("a", "t", {"X": 100, "Y": 50})
    system.load("b", "t", {"Z": 10})
    return system


def two_site_spec(number=1, think_time=0.0):
    return GlobalTransactionSpec(
        txn=global_txn(number),
        steps=(
            ("a", UpdateItem("t", "X", AddValue(-5))),
            ("b", UpdateItem("t", "Z", AddValue(5))),
        ),
        think_time=think_time,
    )


def drain(system, limit=100_000.0):
    while system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=50_000)
    assert not system.kernel.pending, "system did not quiesce"


class TestHappyPath:
    def test_two_site_commit(self):
        system = build()
        done = system.submit(two_site_spec())
        drain(system)
        outcome = done.value
        assert outcome.committed
        assert outcome.sn is not None
        assert system.ltm("a").store.snapshot("t")[
            next(iter(k for k in system.ltm("a").store.snapshot("t") if k.key == "X"))
        ] == 95

    def test_history_order_invariant(self):
        """Inequality (1): P^i_k < C_k < C^s_k for all sites."""
        system = build()
        system.submit(two_site_spec())
        drain(system)
        kinds = [op.kind for op in system.history.ops]
        prepare_positions = [
            i for i, k in enumerate(kinds) if k is OpKind.PREPARE
        ]
        decision = kinds.index(OpKind.GLOBAL_COMMIT)
        local_commits = [
            i for i, k in enumerate(kinds) if k is OpKind.LOCAL_COMMIT
        ]
        assert max(prepare_positions) < decision < min(local_commits)

    def test_sequential_transactions_share_agents(self):
        system = build()
        first = system.submit(two_site_spec(1))
        drain(system)
        second = system.submit(two_site_spec(2))
        drain(system)
        assert first.value.committed and second.value.committed
        assert audit(system).ok

    def test_command_results_returned_in_order(self):
        system = build()
        spec = GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("a", ReadItem("t", "X")),
                ("b", ReadItem("t", "Z")),
                ("a", ReadItem("t", "Y")),
            ),
        )
        done = system.submit(spec)
        drain(system)
        values = [r.rows[0][1] for r in done.value.results]
        assert values == [100, 10, 50]

    def test_agent_phase_transitions(self):
        system = build()
        system.submit(two_site_spec())
        agent = system.agent("a")
        drain(system)
        assert agent.phase_of(global_txn(1)) is AgentPhase.DONE
        assert agent.ready_sent == 1
        assert agent.commits_done == 1


class TestCommandFailure:
    def test_lock_timeout_mid_transaction_aborts_globally(self):
        system = build(ltm=LTMConfig(lock_timeout=30.0))
        blocker = system.ltm("a").begin(SubtxnId(global_txn(99), "a", 0))
        blocker.execute(UpdateItem("t", "X", AddValue(1)))
        system.run(until=5.0)
        done = system.submit(two_site_spec(1))
        drain_until_done(system, done)
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.LOCK_TIMEOUT
        blocker.abort()
        drain(system)

    def test_unilateral_abort_while_active_fails_prepare(self):
        """An abort between commands is caught by the alive check at
        PREPARE time (Appendix B) and answered with REFUSE."""
        system = build(agent=AgentConfig(alive_check_interval=10_000.0))
        spec = GlobalTransactionSpec(
            txn=global_txn(1),
            steps=(
                ("a", UpdateItem("t", "X", AddValue(1))),
                ("b", UpdateItem("t", "Z", AddValue(1)) ),
            ),
            # Think time gives us a window after a's command completes.
            think_time=30.0,
        )
        done = system.submit(spec)
        system.kernel.schedule(
            20.0, lambda: abort_current_incarnation(system, global_txn(1), "a")
        )
        drain(system)
        outcome = done.value
        assert not outcome.committed
        assert outcome.reason is RefusalReason.NOT_ALIVE
        assert "a" in outcome.refusing_sites


class TestPreparedStateResubmission:
    def test_abort_after_global_commit_resubmits_and_commits(self):
        """The core 2PCA promise: a unilaterally aborted prepared
        subtransaction is replayed from the Agent log and the global
        commit still lands everywhere."""
        system = build(
            agent=AgentConfig(alive_check_interval=15.0),
            latency=LatencyModel(base=5.0, overrides={("coord:c1", "agent:a"): 60.0}),
        )
        done = system.submit(two_site_spec())
        inject_abort_after_global_commit(system, global_txn(1), "a", delay=1.0)
        drain(system)
        assert done.value.committed
        assert system.agent("a").resubmissions == 1
        # The final value reflects the (re-executed) update exactly once.
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot("t").items()}
        assert snapshot["X"] == 95
        assert audit(system).ok

    def test_alive_timer_discovers_abort(self):
        system = build(
            agent=AgentConfig(alive_check_interval=10.0),
            latency=LatencyModel(base=5.0, overrides={("coord:c1", "agent:a"): 80.0}),
        )
        done = system.submit(two_site_spec())
        inject_abort_after_global_commit(system, global_txn(1), "a", delay=1.0)
        drain(system)
        assert done.value.committed
        assert system.agent("a").resubmissions == 1

    def test_repeated_aborts_retried_until_success(self):
        """TW: the resubmission machinery keeps going through several
        consecutive failures."""
        system = build(
            agent=AgentConfig(alive_check_interval=10.0, resubmit_retry_delay=5.0),
            latency=LatencyModel(base=5.0, overrides={("coord:c1", "agent:a"): 200.0}),
        )
        done = system.submit(two_site_spec())
        txn = global_txn(1)

        def abort_thrice(op):
            if op.kind is OpKind.GLOBAL_COMMIT and op.txn == txn:
                for delay in (1.0, 25.0, 50.0):
                    system.kernel.schedule(
                        delay, lambda: abort_current_incarnation(system, txn, "a")
                    )

        system.history.subscribe(abort_thrice)
        drain(system)
        assert done.value.committed
        assert system.ltm("a").unilateral_aborts >= 2
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot("t").items()}
        assert snapshot["X"] == 95
        assert audit(system).ok

    def test_abort_after_ready_still_commits(self):
        """An abort landing right after READY does not doom the
        transaction: the agent resubmits at COMMIT time."""
        system = build(agent=AgentConfig(alive_check_interval=10_000.0))
        done = system.submit(two_site_spec())
        inject_abort_after_prepare(system, global_txn(1), "b", delay=0.5)
        drain(system)
        assert done.value.committed
        assert system.agent("b").resubmissions == 1
        assert audit(system).ok

    def test_rollback_of_prepared_txn_cleans_up(self):
        """A REFUSE at one site rolls the other (prepared) site back."""
        system = build(agent=AgentConfig(alive_check_interval=10_000.0))
        spec = two_site_spec(think_time=30.0)
        done = system.submit(spec)
        # Abort at b while the application is still "thinking" — before
        # any PREPARE is sent; b will refuse, a will be rolled back.
        system.kernel.schedule(
            70.0, lambda: abort_current_incarnation(system, global_txn(1), "b")
        )
        drain(system)
        outcome = done.value
        assert not outcome.committed
        # Site a was prepared, then rolled back: nothing left behind.
        assert system.certifier("a").table_size() == 0
        assert not system.guards["a"].bound_items()
        snapshot = {k.key: v for k, v in system.ltm("a").store.snapshot("t").items()}
        assert snapshot["X"] == 100
        assert audit(system).ok


class TestBoundData:
    def test_prepared_access_set_is_bound_and_released(self):
        system = build(
            latency=LatencyModel(base=5.0, overrides={("coord:c1", "agent:a"): 40.0})
        )
        bound_during_prepare = []
        done = system.submit(two_site_spec())

        def watch(op):
            if op.kind is OpKind.PREPARE and op.site == "a":
                bound_during_prepare.append(
                    {item.key for item in system.guards["a"].bound_items()}
                )

        system.history.subscribe(watch)
        drain(system)
        assert done.value.committed
        assert bound_during_prepare == [{"X"}]
        assert not system.guards["a"].bound_items()


def drain_until_done(system, event, limit=100_000.0):
    while not event.done and system.kernel.pending and system.kernel.now <= limit:
        system.run(max_events=1000)
    assert event.done


class TestCommitDuringResubmission:
    def test_commit_arriving_mid_resubmission_does_not_leak_incarnations(self):
        """Regression: a COMMIT landing while the resubmission is still
        replaying commands must wait for it — not mark the (healthy)
        incarnation as aborted and spawn another one, leaking the
        in-flight incarnation's locks forever."""
        system = build(
            agent=AgentConfig(alive_check_interval=12.0),
            latency=LatencyModel(base=5.0, overrides={("coord:c1", "agent:a"): 45.0}),
        )
        done = system.submit(two_site_spec())
        # Abort right after the global decision; the alive check starts a
        # resubmission; the COMMIT then arrives mid-replay.
        inject_abort_after_global_commit(system, global_txn(1), "a", delay=1.0)
        drain(system)
        assert done.value.committed
        # Exactly one replacement incarnation, nothing leaked.
        state = system.agent("a")._txns[global_txn(1)]
        assert state.incarnations == 2
        assert system.ltm("a").active_txns() == []
        assert audit(system).ok
