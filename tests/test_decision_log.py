"""DurableDecisionLog: the coordinator's presumed-nothing decision WAL."""

from repro.common.ids import SerialNumber, global_txn
from repro.durability import Decision, DurabilityConfig, DurableDecisionLog


def config(tmp_path, **kwargs):
    kwargs.setdefault("sync", "simulated")
    return DurabilityConfig(root=str(tmp_path), **kwargs)


def decision(i, committed=True, sites=("a", "b")):
    sn = SerialNumber(float(i), "c1") if committed else None
    return Decision(
        txn=global_txn(i), committed=committed, sn=sn, sites=tuple(sites)
    )


def reopen(log, tmp_path, **kwargs):
    log.close()
    return DurableDecisionLog.open_name(log.name, config(tmp_path, **kwargs))


class TestDecisionReplay:
    def test_in_doubt_decision_survives_reopen(self, tmp_path):
        log = DurableDecisionLog.open_name("c1", config(tmp_path))
        log.log_decision(decision(1))
        log = reopen(log, tmp_path)
        assert [d.txn for d in log.in_doubt()] == [global_txn(1)]
        got = log.decision(global_txn(1))
        assert got.committed and got.sites == ("a", "b")
        assert got.sn == SerialNumber(1.0, "c1")
        log.close()

    def test_end_clears_in_doubt(self, tmp_path):
        log = DurableDecisionLog.open_name("c1", config(tmp_path))
        log.log_decision(decision(1))
        log.log_decision(decision(2, committed=False))
        log.log_end(global_txn(1))
        log = reopen(log, tmp_path)
        assert [d.txn for d in log.in_doubt()] == [global_txn(2)]
        # The ended decision is still queryable until compacted away.
        log.close()

    def test_abort_decision_roundtrip(self, tmp_path):
        log = DurableDecisionLog.open_name("c1", config(tmp_path))
        log.log_decision(decision(3, committed=False, sites=("b",)))
        log = reopen(log, tmp_path)
        got = log.decision(global_txn(3))
        assert got is not None and not got.committed and got.sn is None
        log.close()

    def test_decisions_are_forced(self, tmp_path):
        log = DurableDecisionLog.open_name("c1", config(tmp_path))
        log.log_decision(decision(1))
        assert log.force_writes == 1
        assert log.wal.forced_appends >= 1
        log.close()

    def test_end_churn_compacts_to_in_doubt_only(self, tmp_path):
        log = DurableDecisionLog.open_name(
            "c1", config(tmp_path, compact_min_discards=4)
        )
        survivor = decision(100)
        log.log_decision(survivor)
        for i in range(1, 20):
            log.log_decision(decision(i))
            log.log_end(global_txn(i))
        assert log.wal.checkpoints >= 1
        log = reopen(log, tmp_path)
        assert [d.txn for d in log.in_doubt()] == [global_txn(100)]
        # Ended decisions were compacted out entirely.
        assert log.decision(global_txn(1)) is None
        log.close()

    def test_unknown_txn_returns_none(self, tmp_path):
        log = DurableDecisionLog.open_name("c1", config(tmp_path))
        assert log.decision(global_txn(9)) is None
        assert log.in_doubt() == []
        log.close()
