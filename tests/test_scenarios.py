"""Tests of the paper's worked histories (repro.workload.scenarios).

These are the headline reproduction assertions: each of the paper's
anomaly histories materializes under the weak method and disappears
under the full 2CM method.
"""

import pytest

from repro.common.errors import RefusalReason
from repro.common.ids import global_txn, local_txn
from repro.history.model import OpKind
from repro.workload.scenarios import run_h1, run_h2, run_h3, run_hx


class TestH1GlobalViewDistortion:
    """Paper Sec. 3 / experiment E2."""

    def test_naive_reproduces_the_distortion(self):
        result = run_h1("naive")
        assert result.outcome(1).committed
        assert result.outcome(2).committed
        report = result.audit.distortions
        # T1's resubmission read X from T2 while the original read it
        # from T0 — the view split of H1.
        splits = [s for s in report.view_splits if s.txn == global_txn(1)]
        assert splits
        split = splits[0]
        assert split.first_source is None
        assert split.second_source == global_txn(2)
        # And the decomposition changed (T2 deleted Y).
        assert report.decomposition_changes
        assert result.audit.view_serializability.serializable is False

    def test_naive_resubmission_happened(self):
        result = run_h1("naive")
        resub_reads = [
            op
            for op in result.system.history.ops
            if op.kind is OpKind.READ and op.subtxn and op.subtxn.incarnation == 1
        ]
        assert resub_reads

    def test_2cm_prevents_it(self):
        result = run_h1("2cm")
        assert result.outcome(1).committed
        assert not result.outcome(2).committed
        assert result.outcome(2).reason is RefusalReason.ALIVE_INTERSECTION
        assert result.audit.ok

    def test_2cm_t1_still_resubmits_and_completes(self):
        result = run_h1("2cm")
        assert result.system.agent("a").resubmissions == 1
        snapshot = {
            k.key: v
            for k, v in result.system.ltm("a").store.snapshot("acct").items()
        }
        assert snapshot["Y"] == 55  # T1's +5 applied exactly once


class TestH2LocalViewDistortion:
    """Paper Sec. 5.1 / experiment E3."""

    def test_naive_reproduces_the_cycle(self):
        result = run_h2("naive")
        assert result.outcome(1).committed
        assert result.outcome(3).committed
        assert result.local_outcome(4, "a").committed
        cycle = result.audit.distortions.commit_graph_cycle
        assert cycle is not None
        labels = {txn.label for txn in cycle}
        assert labels == {"T1", "T3", "L4"}
        assert result.audit.view_serializability.serializable is False

    def test_l4_views_are_the_papers(self):
        result = run_h2("naive")
        l4_reads = {
            op.item.key: (op.read_from.txn if op.read_from else None)
            for op in result.system.history.ops
            if op.kind is OpKind.READ and op.txn == local_txn(4, "a")
        }
        assert l4_reads["Q"] == global_txn(3)   # Q from T3
        assert l4_reads["Y"] is None            # Y from T0 — not from T1!

    def test_2cm_prevents_it(self):
        result = run_h2("2cm")
        assert result.outcome(1).committed
        assert result.audit.ok


class TestH3IndirectConflicts:
    """Paper Sec. 5.1 (H3) / experiment E4."""

    @pytest.mark.parametrize("method", ["naive", "2cm-nocommitcert", "2cm-prepare-order"])
    def test_weak_methods_reproduce_the_anomaly(self, method):
        result = run_h3(method)
        assert result.outcome(5).committed
        assert result.outcome(6).committed
        assert result.audit.distortions.commit_graph_cycle is not None
        assert result.audit.view_serializability.serializable is False

    def test_prepare_orders_are_opposite(self):
        """The premise of Sec. 5.3's argument: prepare ops of T5 and T6
        arrive in different orders at the two sites."""
        result = run_h3("2cm")
        prepares = [
            (op.site, op.txn.number)
            for op in result.system.history.ops
            if op.kind is OpKind.PREPARE
        ]
        order_a = [n for site, n in prepares if site == "a"]
        order_b = [n for site, n in prepares if site == "b"]
        assert order_a == [5, 6]
        assert order_b == [6, 5]

    def test_2cm_prevents_it_with_zero_aborts(self):
        result = run_h3("2cm")
        assert result.outcome(5).committed
        assert result.outcome(6).committed
        assert result.local_outcome(7, "a").committed
        assert result.local_outcome(8, "b").committed
        assert result.audit.ok
        for coordinator in result.system.coordinators:
            assert coordinator.aborted == 0

    def test_locals_get_consistent_views_under_2cm(self):
        result = run_h3("2cm")
        l8_reads = {
            op.item.key: (op.read_from.txn if op.read_from else None)
            for op in result.system.history.ops
            if op.kind is OpKind.READ and op.txn == local_txn(8, "b")
        }
        # Commit certification held T6's commit at b until T5's landed:
        # L8 sees both updates, a view consistent with SN order.
        assert l8_reads["S"] == global_txn(5)
        assert l8_reads["U"] == global_txn(6)


class TestHxCommitOvertakesPrepare:
    """Paper Sec. 5.3 / experiment E5."""

    def test_noext_builds_cyclic_cg(self):
        result = run_hx("2cm-noext")
        assert result.outcome(7).committed
        assert result.outcome(8).committed
        cycle = result.audit.distortions.commit_graph_cycle
        assert cycle is not None
        assert {txn.label for txn in cycle} == {"T7", "T8"}

    def test_noext_matches_papers_operation_order(self):
        """The paper's order for history Hx:
        P^i_7 .. P^i_8? — no: T8's COMMIT overtakes T7's PREPARE at s,
        then C^i_7 < C^i_8 (commit certification at i) and C^s_8 < C^s_7."""
        result = run_hx("2cm-noext")
        ops = [
            (op.kind, op.site, op.txn.number)
            for op in result.system.history.ops
            if op.kind in (OpKind.PREPARE, OpKind.LOCAL_COMMIT)
        ]
        # C^s_8 before P^s_7 — the overtake itself.
        s_events = [(k, n) for k, site, n in ops if site == "s"]
        assert s_events.index((OpKind.LOCAL_COMMIT, 8)) < s_events.index(
            (OpKind.PREPARE, 7)
        )
        # At site i the commit certification kept SN order: C^i_7 < C^i_8.
        i_commits = [n for k, site, n in ops if site == "i" and k is OpKind.LOCAL_COMMIT]
        assert i_commits == [7, 8]

    def test_extension_refuses_the_late_prepare(self):
        result = run_hx("2cm")
        assert not result.outcome(7).committed
        assert result.outcome(7).reason is RefusalReason.PREPARE_OUT_OF_ORDER
        assert result.outcome(8).committed
        assert result.audit.ok

    def test_hx_is_failure_free(self):
        """No unilateral aborts are needed for this race."""
        result = run_hx("2cm-noext")
        for site in ("i", "s"):
            assert result.system.ltm(site).unilateral_aborts == 0


class TestScenarioDeterminism:
    def test_same_scenario_same_history(self):
        first = run_h1("naive")
        second = run_h1("naive")
        assert first.system.history.render() == second.system.history.render()
