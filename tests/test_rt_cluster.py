"""End-to-end runtime tests: real processes, real sockets, real kills.

These drive the actual ``python -m repro`` entrypoints as subprocesses:
the port-0 readiness handshake (bind ephemeral, announce the bound
address as one JSON line — no sleep-polling, no port collisions), a
healthy storm run against a launched cluster, and the acceptance
scenario — SIGKILL an agent mid-prepare, let the supervisor respawn
it, and require the full invariant battery to hold.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _repro(*argv):
    return [sys.executable, "-m", "repro", *argv]


class TestPortZeroReadiness:
    """Satellite: ephemeral binding + readiness handshake."""

    @pytest.mark.parametrize(
        "role_argv, role, name",
        [
            (("coordinator", "--name", "c9"), "coordinator", "coord-c9"),
            (("agent", "--site", "branch1"), "agent", "agent-branch1"),
        ],
    )
    def test_ready_line_announces_bound_ephemeral_port(
        self, tmp_path, role_argv, role, name
    ):
        proc = subprocess.Popen(
            _repro(
                "serve",
                *role_argv,
                "--listen",
                "127.0.0.1:0",
                "--json",
                "--data-root",
                str(tmp_path),
            ),
            stdout=subprocess.PIPE,
            env=_env(),
        )
        try:
            # The readiness contract: exactly one JSON status line, only
            # after the listener is bound. A blocking readline IS the
            # synchronisation — no polling loop needed.
            line = proc.stdout.readline()
            status = json.loads(line)
            assert status["event"] == "ready"
            assert status["role"] == role
            assert status["name"] == name
            assert status["host"] == "127.0.0.1"
            assert status["port"] != 0  # port 0 resolved to a real port
            assert status["pid"] == proc.pid
            assert status["boot"]
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)

    def test_two_nodes_never_collide_on_ports(self, tmp_path):
        procs = [
            subprocess.Popen(
                _repro(
                    "serve",
                    "coordinator",
                    "--name",
                    f"c{i}",
                    "--listen",
                    "127.0.0.1:0",
                    "--json",
                    "--data-root",
                    str(tmp_path),
                ),
                stdout=subprocess.PIPE,
                env=_env(),
            )
            for i in range(2)
        ]
        try:
            ports = [json.loads(p.stdout.readline())["port"] for p in procs]
            assert ports[0] != ports[1]
        finally:
            for p in procs:
                p.send_signal(signal.SIGTERM)
            for p in procs:
                p.wait(timeout=10)


def _run_storm(tmp_path, *extra):
    bench = tmp_path / "BENCH_rt.json"
    proc = subprocess.run(
        _repro(
            "storm",
            "--launch",
            "--data-root",
            str(tmp_path / "cluster"),
            "--bench-out",
            str(bench),
            *extra,
        ),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )
    return proc, bench


class TestStormEndToEnd:
    def test_healthy_run_commits_everything(self, tmp_path):
        proc, bench = _run_storm(tmp_path, "--txns", "8", "--settle", "0.5")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all invariants hold" in proc.stdout
        run = json.loads(bench.read_text())["runs"]["healthy"]
        assert run["ok"] is True
        assert run["txns"] == 8
        assert run["committed"] + run["aborted"] == 8
        assert run["missing"] == 0
        assert run["violations"] == 0
        assert run["throughput_committed_per_s"] > 0
        assert run["latency_p99_s"] >= run["latency_p50_s"] > 0

    def test_kill_at_prepared_recovers_atomically(self, tmp_path):
        """The acceptance scenario: SIGKILL mid-prepare, WAL recovery,
        zero invariant violations over the merged journals."""
        proc, bench = _run_storm(
            tmp_path,
            "--txns",
            "14",
            "--kill-agent",
            "1",
            "--at",
            "prepared",
            "--settle",
            "1.0",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all invariants hold" in proc.stdout
        run = json.loads(bench.read_text())["runs"]["kill_recover"]
        assert run["ok"] is True
        assert run["violations"] == 0
        assert run["missing"] == 0
        assert run["kill"]["site"]  # a real site was killed
        assert run["kill"]["cluster_restarts"] >= 1
        # the journals survived the SIGKILL and carried the proof
        journals = list((tmp_path / "cluster").glob("journal-*.log"))
        assert len(journals) == 4  # 3 agents + 1 coordinator
