"""End-to-end runtime tests: real processes, real sockets, real kills.

These drive the actual ``python -m repro`` entrypoints as subprocesses:
the port-0 readiness handshake (bind ephemeral, announce the bound
address as one JSON line — no sleep-polling, no port collisions), a
healthy storm run against a launched cluster, and the acceptance
scenario — SIGKILL an agent mid-prepare, let the supervisor respawn
it, and require the full invariant battery to hold.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _repro(*argv):
    return [sys.executable, "-m", "repro", *argv]


class TestPortZeroReadiness:
    """Satellite: ephemeral binding + readiness handshake."""

    @pytest.mark.parametrize(
        "role_argv, role, name",
        [
            (("coordinator", "--name", "c9"), "coordinator", "coord-c9"),
            (("agent", "--site", "branch1"), "agent", "agent-branch1"),
        ],
    )
    def test_ready_line_announces_bound_ephemeral_port(
        self, tmp_path, role_argv, role, name
    ):
        proc = subprocess.Popen(
            _repro(
                "serve",
                *role_argv,
                "--listen",
                "127.0.0.1:0",
                "--json",
                "--data-root",
                str(tmp_path),
            ),
            stdout=subprocess.PIPE,
            env=_env(),
        )
        try:
            # The readiness contract: exactly one JSON status line, only
            # after the listener is bound. A blocking readline IS the
            # synchronisation — no polling loop needed.
            line = proc.stdout.readline()
            status = json.loads(line)
            assert status["event"] == "ready"
            assert status["role"] == role
            assert status["name"] == name
            assert status["host"] == "127.0.0.1"
            assert status["port"] != 0  # port 0 resolved to a real port
            assert status["pid"] == proc.pid
            assert status["boot"]
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10)

    def test_two_nodes_never_collide_on_ports(self, tmp_path):
        procs = [
            subprocess.Popen(
                _repro(
                    "serve",
                    "coordinator",
                    "--name",
                    f"c{i}",
                    "--listen",
                    "127.0.0.1:0",
                    "--json",
                    "--data-root",
                    str(tmp_path),
                ),
                stdout=subprocess.PIPE,
                env=_env(),
            )
            for i in range(2)
        ]
        try:
            ports = [json.loads(p.stdout.readline())["port"] for p in procs]
            assert ports[0] != ports[1]
        finally:
            for p in procs:
                p.send_signal(signal.SIGTERM)
            for p in procs:
                p.wait(timeout=10)


class TestClusterSupervision:
    """Satellites: the crash-loop guard's restart budget, and readiness
    failures that *say why* (the dead child's stderr) instead of hanging."""

    def test_exhausted_restart_budget_gives_up_visibly(self, tmp_path):
        """SIGKILL an agent under ``--max-restarts 0``: the supervisor
        must emit a ``gave-up`` event and record ``gave_up`` in
        cluster.json rather than hot-loop respawning a doomed child."""
        proc = subprocess.Popen(
            _repro(
                "serve",
                "cluster",
                "--bank-sites",
                "branch1",
                "--max-restarts",
                "0",
                "--json",
                "--data-root",
                str(tmp_path),
            ),
            stdout=subprocess.PIPE,
            env=_env(),
            text=True,
        )
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            cluster = json.loads((tmp_path / "cluster.json").read_text())
            assert cluster["max_restarts"] == 0
            victim = cluster["agents"][0]
            os.kill(victim["pid"], signal.SIGKILL)

            events = []
            for _ in range(10):
                line = proc.stdout.readline()
                if not line:
                    break
                events.append(json.loads(line))
                if events[-1]["event"] == "gave-up":
                    break
            kinds = [e["event"] for e in events]
            assert "exited" in kinds and "gave-up" in kinds
            gave_up = events[-1]
            assert gave_up["name"] == victim["site"]
            assert gave_up["restarts"] == 0

            # cluster.json is rewritten with the terminal state (just
            # after the event line — poll past that tiny window): a
            # client polling it can see the cluster is degraded
            deadline = time.monotonic() + 10.0
            while True:
                cluster = json.loads((tmp_path / "cluster.json").read_text())
                if cluster["agents"][0]["gave_up"]:
                    break
                assert time.monotonic() < deadline, cluster
                time.sleep(0.05)
            assert cluster["coordinator"]["gave_up"] is False
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=15)

    def test_child_dead_at_boot_fails_fast_with_its_stderr(self, tmp_path):
        """Plant a regular file where the coordinator's WAL directory
        must go: the launch must fail promptly (not hang on readiness)
        and the error must carry the child's own stderr."""
        (tmp_path / "coord-c1").write_text("not a directory")
        proc = subprocess.run(
            _repro(
                "serve",
                "cluster",
                "--bank-sites",
                "branch1",
                "--json",
                "--data-root",
                str(tmp_path),
            ),
            env=_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode != 0
        assert "exited before its ready line" in proc.stderr
        # the child's own traceback was surfaced, not swallowed
        assert "FileExistsError" in proc.stderr
        assert "coord-c1" in proc.stderr


def _run_storm(tmp_path, *extra):
    bench = tmp_path / "BENCH_rt.json"
    proc = subprocess.run(
        _repro(
            "storm",
            "--launch",
            "--data-root",
            str(tmp_path / "cluster"),
            "--bench-out",
            str(bench),
            *extra,
        ),
        env=_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )
    return proc, bench


class TestStormEndToEnd:
    def test_healthy_run_commits_everything(self, tmp_path):
        proc, bench = _run_storm(tmp_path, "--txns", "8", "--settle", "0.5")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all invariants hold" in proc.stdout
        run = json.loads(bench.read_text())["runs"]["healthy"]
        assert run["ok"] is True
        assert run["txns"] == 8
        assert run["committed"] + run["aborted"] == 8
        assert run["missing"] == 0
        assert run["violations"] == 0
        assert run["throughput_committed_per_s"] > 0
        assert run["latency_p99_s"] >= run["latency_p50_s"] > 0

    def test_kill_at_prepared_recovers_atomically(self, tmp_path):
        """The acceptance scenario: SIGKILL mid-prepare, WAL recovery,
        zero invariant violations over the merged journals."""
        proc, bench = _run_storm(
            tmp_path,
            "--txns",
            "14",
            "--kill-agent",
            "1",
            "--at",
            "prepared",
            "--settle",
            "1.0",
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all invariants hold" in proc.stdout
        run = json.loads(bench.read_text())["runs"]["kill_recover"]
        assert run["ok"] is True
        assert run["violations"] == 0
        assert run["missing"] == 0
        assert run["kill"]["site"]  # a real site was killed
        assert run["kill"]["cluster_restarts"] >= 1
        # the journals survived the SIGKILL and carried the proof
        journals = list((tmp_path / "cluster").glob("journal-*.log"))
        assert len(journals) == 4  # 3 agents + 1 coordinator


class TestChaosRtEndToEnd:
    """Tentpole acceptance, one seed's worth: nemesis faults + a real
    coordinator SIGKILL + an injected disk fault, healed, verified."""

    def test_seed_zero_survives_the_full_battery(self, tmp_path):
        bench = tmp_path / "BENCH_rt.json"
        proc = subprocess.run(
            _repro(
                "chaos-rt",
                "--seed",
                "0",
                "--txns",
                "36",
                "--data-root",
                str(tmp_path / "chaos"),
                "--bench-out",
                str(bench),
            ),
            env=_env(),
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all invariants hold" in proc.stdout
        run = json.loads(bench.read_text())["chaos"]["seed0"]
        assert run["ok"] is True
        assert run["violations"] == 0
        # seed 0 arms the nastiest kill mode: coordinator at sn_drawn
        assert run["kill"] == {"role": "coordinator", "at": "sn_drawn"}
        assert run["fault_site"]  # some process got the failing disk
        assert run["nemesis"]["faults_applied"] >= 1
        # per-fault-class recovery attribution made it into the series
        assert run["recovery_s"]["kill"] is not None
        assert run["committed_journal"] >= 1
        assert run["goodput_committed_per_s"] > 0
