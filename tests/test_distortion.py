"""Unit tests for the distortion detectors (repro.history.distortion)."""

from repro.common.ids import global_txn
from repro.history.committed import committed_projection
from repro.history.distortion import find_distortions

from tests.helpers import HistoryBuilder


def report(h):
    return find_distortions(committed_projection(h.history))


class TestGlobalViewDistortion:
    def test_view_split_detected(self):
        """Two incarnations of T1 read X from different sources."""
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).al(1, "a", inc=0)
        h.w(2, "a", "X").c(2).cl(2, "a")
        h.r(1, "a", "X", inc=1).cl(1, "a", inc=1)
        rep = report(h)
        assert rep.has_global_distortion
        assert len(rep.view_splits) == 1
        split = rep.view_splits[0]
        assert split.txn == global_txn(1)
        assert split.first_source is None            # T0
        assert split.second_source == global_txn(2)

    def test_decomposition_change_detected(self):
        """Incarnation 1 lost the write (the H1 'Y was deleted' case)."""
        h = HistoryBuilder()
        h.r(1, "a", "Y").w(1, "a", "Y").p(1, "a").c(1).al(1, "a", inc=0)
        h.r(1, "a", "Y", inc=1).cl(1, "a", inc=1)   # same read source (T0)
        rep = report(h)
        assert rep.decomposition_changes
        change = rep.decomposition_changes[0]
        assert change.first_incarnation == 0
        assert change.second_incarnation == 1

    def test_identical_resubmission_clean(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").w(1, "a", "Y").p(1, "a").c(1).al(1, "a", inc=0)
        h.r(1, "a", "X", inc=1).w(1, "a", "Y", inc=1).cl(1, "a", inc=1)
        rep = report(h)
        assert not rep.has_global_distortion

    def test_single_incarnation_never_distorted(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1).cl(1, "a")
        assert not report(h).has_global_distortion

    def test_local_txns_ignored(self):
        h = HistoryBuilder()
        h.r(4, "a", "X", local=True).cl(4, "a", local=True)
        assert not report(h).has_global_distortion

    def test_excluded_txn_not_examined(self):
        """A globally aborted transaction's incarnations are outside
        C(H) and cannot distort anything."""
        h = HistoryBuilder()
        h.r(1, "a", "X").al(1, "a", inc=0)
        h.w(2, "a", "X").c(2).cl(2, "a")
        h.r(1, "a", "X", inc=1).a(1)
        assert not report(h).has_global_distortion


class TestLocalViewDistortionRisk:
    def test_cg_cycle_reported(self):
        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "a").cl(2, "b").cl(1, "b")
        h.c(1).c(2)
        # make them committed & complete so they are inside C(H)
        rep = report(h)
        assert rep.has_local_distortion_risk
        assert rep.commit_graph_cycle is not None

    def test_aligned_commit_orders_clean(self):
        h = HistoryBuilder()
        h.cl(1, "a").cl(2, "a").cl(1, "b").cl(2, "b")
        h.c(1).c(2)
        rep = report(h)
        assert not rep.has_local_distortion_risk


class TestReportRendering:
    def test_describe_clean(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").c(1).cl(1, "a")
        assert report(h).describe() == "no distortions"
        assert report(h).clean

    def test_describe_mentions_findings(self):
        h = HistoryBuilder()
        h.r(1, "a", "X").p(1, "a").c(1).al(1, "a", inc=0)
        h.w(2, "a", "X").c(2).cl(2, "a")
        h.r(1, "a", "X", inc=1).cl(1, "a", inc=1)
        text = report(h).describe()
        assert "view split" in text
