"""Leased SN ranges: batched, WAL-logged, hybrid-logical-clock flavored.

The paper draws ``SN(k)`` from the coordinating site's real-time clock.
With N coordinators that stays correct (drift "may cause unnecessary
aborts, only"), but every commit still pays a clock draw and the SN
space interleaves arbitrarily.  The federation instead batches the
draws: a single lightweight :class:`SnAllocator` grants each
coordinator a *lease* — a disjoint integer range ``[lo, hi)`` — and the
coordinator's :class:`LeasedSN` mints serial numbers from its lease
without touching the allocator again until the range runs low.

Correctness splits exactly like the paper's clock argument:

* **Uniqueness** is unconditional.  Grants are disjoint (the allocator
  never re-issues a range — each grant is force-logged to its WAL
  *before* it is returned, so a restarted allocator resumes past its
  high-water mark), leased draws from different coordinators carry
  different range values, and the site/seq tie-breakers keep a
  coordinator's emergency fallback draws distinct from its leased ones.
* **Order** is best-effort, hybrid-logical-clock style: a grant's base
  never falls below ``clock() * HLC_TICKS_PER_SECOND``, and a
  :class:`LeasedSN` skips ahead inside its lease past any bigger SN it
  witnesses.  Disorder costs certification aborts, never atomicity.

When a coordinator has no usable lease (allocator down, refill still in
flight) it falls back to a synchronous HLC draw so commits keep
flowing; fallback SNs are unique by the ``(site, seq>=1)`` tie-break.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.common.errors import ConfigError
from repro.common.ids import SerialNumber
from repro.core.serial import SNGenerator
from repro.durability.records import RecordKind

if TYPE_CHECKING:
    from repro.durability.config import DurabilityConfig

#: SN values per second of HLC time.  The allocator floors each grant
#: at ``clock() * HLC_TICKS_PER_SECOND`` so the lease space tracks real
#: time across allocator restarts (a rebooted allocator with a wiped
#: WAL would otherwise restart at 1 and re-issue ranges; with the
#: floor, even that pathological case stays ahead of history as long
#: as the clock is roughly sane).
HLC_TICKS_PER_SECOND = 1024.0


@dataclass(frozen=True)
class Lease:
    """One granted SN range ``[lo, hi)``."""

    lo: int
    hi: int
    owner: str

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ConfigError(f"empty lease [{self.lo}, {self.hi})")

    @property
    def span(self) -> int:
        return self.hi - self.lo

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.lo},{self.hi})@{self.owner}"


class SnAllocator:
    """Grants disjoint, monotonically increasing SN ranges.

    ``wal`` (a :class:`~repro.durability.wal.WriteAheadLog`, optional)
    makes grants durable: a LEASE record is force-written before the
    grant is returned, and replay on open moves the high-water mark past
    every range ever handed out.  ``clock`` (optional, returns seconds)
    supplies the HLC floor.
    """

    def __init__(
        self,
        wal=None,
        clock: Optional[Callable[[], float]] = None,
        span: int = 64,
    ) -> None:
        if span < 1:
            raise ConfigError(f"lease span must be >= 1, got {span}")
        self.wal = wal
        self.clock = clock
        self.default_span = span
        self._next = 1
        self.grants = 0
        if wal is not None:
            for record in wal.recovery.records:
                if record.kind is RecordKind.LEASE:
                    self._next = max(self._next, int(record.body["hi"]))
                elif record.kind is RecordKind.CHECKPOINT:
                    self._next = max(self._next, int(record.body.get("next", 1)))

    @property
    def high_water(self) -> int:
        """First value no granted lease contains (exclusive upper bound)."""
        return self._next

    def grant(self, owner: str, span: Optional[int] = None) -> Lease:
        """Grant the next ``span`` values to ``owner`` (durably, if WAL-backed)."""
        width = self.default_span if span is None else span
        if width < 1:
            raise ConfigError(f"lease span must be >= 1, got {width}")
        lo = self._next
        if self.clock is not None:
            lo = max(lo, int(self.clock() * HLC_TICKS_PER_SECOND))
        hi = lo + width
        if self.wal is not None:
            # Force before returning: once the grantee can mint from the
            # range, no future incarnation of this allocator may re-issue
            # any part of it.
            self.wal.append(
                RecordKind.LEASE,
                {"lo": lo, "hi": hi, "owner": owner},
                force=True,
            )
        self._next = hi
        self.grants += 1
        return Lease(lo=lo, hi=hi, owner=owner)

    def checkpoint(self) -> None:
        """Compact the lease WAL down to the high-water mark."""
        if self.wal is not None:
            self.wal.checkpoint({"next": self._next})

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()


def allocator_wal_directory(root: str) -> str:
    return os.path.join(root, "alloc")


def open_allocator(
    config: "DurabilityConfig",
    clock: Optional[Callable[[], float]] = None,
    span: int = 64,
) -> SnAllocator:
    """Open the (single) WAL-backed allocator under ``config.root``."""
    from repro.durability.segments import SyncPolicy
    from repro.durability.wal import WriteAheadLog

    wal = WriteAheadLog(
        allocator_wal_directory(config.root),
        sync_policy=SyncPolicy.of(config.sync, config.batch_size),
        segment_bytes=config.segment_bytes,
        disk_faults=config.disk_faults,
    )
    return SnAllocator(wal=wal, clock=clock, span=span)


class LeasedSN(SNGenerator):
    """A federated coordinator's serial-number source.

    Draws from the active lease; hot-swaps to a prefetched spare when
    the active one is exhausted.  ``request_lease`` (optional) is a
    *synchronous* grant path (the simulator's in-process allocator);
    the real runtime instead prefetches asynchronously and installs
    grants via :meth:`feed`, checking :meth:`needs_refill` after every
    draw.  With no lease and no synchronous path, :meth:`generate`
    falls back to an HLC draw rather than blocking commit processing.
    """

    def __init__(
        self,
        name: str,
        request_lease: Optional[Callable[[], Optional[Lease]]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self._request = request_lease
        self._clock = clock
        self._lease: Optional[Lease] = None
        self._cursor = 0
        self._spare: Optional[Lease] = None
        #: Fallback seq starts at 1: a leased SN always has seq 0, so a
        #: fallback draw can never collide with a leased one even if
        #: their clock values coincide.
        self._fallback_seq = itertools.count(1)
        self._max_witnessed = 0.0
        self.refills = 0
        self.fallback_draws = 0

    # ------------------------------------------------------------------
    # Lease management
    # ------------------------------------------------------------------

    def feed(self, lease: Lease) -> None:
        """Install an asynchronously granted lease (spare if one is live)."""
        if self._lease is None or self._cursor >= self._lease.hi:
            self._activate(lease)
        else:
            self._spare = lease

    def seed_floor(self, floor: float) -> None:
        """Never mint at or below ``floor``.

        Recovery hook: a restarted coordinator seeds this with its
        decision log's lease high-water mark, so even its emergency
        fallback draws land above every range a previous incarnation
        could have minted from.
        """
        if floor > self._max_witnessed:
            self._max_witnessed = floor

    def needs_refill(self) -> bool:
        """True when a prefetch should be issued (no spare, range low)."""
        if self._spare is not None:
            return False
        if self._lease is None:
            return True
        return (self._lease.hi - self._cursor) * 2 <= self._lease.span

    @property
    def remaining(self) -> int:
        if self._lease is None:
            return 0
        return max(0, self._lease.hi - self._cursor)

    def _activate(self, lease: Lease) -> None:
        self._lease = lease
        self._cursor = lease.lo
        self.refills += 1

    # ------------------------------------------------------------------
    # SNGenerator interface
    # ------------------------------------------------------------------

    def generate(self, site: str) -> SerialNumber:
        value = self._draw()
        if value is None:
            return self._fallback()
        return SerialNumber(clock=float(value), site=self.name, seq=0)

    def witness(self, site: str, sn: SerialNumber) -> None:
        if sn.clock > self._max_witnessed:
            self._max_witnessed = sn.clock
            # HLC skip-ahead: never mint below an SN already seen in the
            # wild.  Burns lease values, buys certification order.
            if self._lease is not None:
                target = int(self._max_witnessed) + 1
                if self._cursor < target:
                    self._cursor = min(target, self._lease.hi)

    def _draw(self) -> Optional[int]:
        if self._lease is None or self._cursor >= self._lease.hi:
            if self._spare is not None:
                spare, self._spare = self._spare, None
                self._activate(spare)
            elif self._request is not None:
                lease = self._request()
                if lease is None:
                    return None
                self._activate(lease)
            else:
                return None
        value = self._cursor
        self._cursor = value + 1
        return value

    def _fallback(self) -> SerialNumber:
        self.fallback_draws += 1
        base = (
            self._clock() * HLC_TICKS_PER_SECOND
            if self._clock is not None
            else 0.0
        )
        value = max(base, self._max_witnessed + 1.0)
        self._max_witnessed = value
        return SerialNumber(clock=value, site=self.name, seq=next(self._fallback_seq))
