"""The shard map: key-hash routing with per-shard ownership epochs.

The global-transaction keyspace is partitioned into ``n_shards`` fixed
hash buckets; each bucket is owned by exactly one coordinator.  A BEGIN
for a transaction must reach the owner of the transaction's shard —
any other coordinator refuses it with
:attr:`~repro.common.errors.RefusalReason.WRONG_SHARD` and a redirect
hint, instead of running a protocol round it has no authority over.

Ownership changes (handoff) bump the shard's *epoch*.  Coordinators
stamp their BEGINs with ``(shard, epoch)``; agents remember the highest
epoch they have seen per shard and fence BEGINs carrying an older one,
so a deposed owner that missed the new map cannot start fresh globals.
Only BEGIN is fenced — in-flight 2PC rounds from the old owner must be
allowed to finish, or atomicity would be lost.

Hashing uses ``zlib.crc32`` over the decimal key, *not* the built-in
``hash``: Python salts string hashes per process, and the router, the
storm client and every coordinator must agree on the bucket from
separate processes.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.ids import TxnId


def shard_of_key(key: object, n_shards: int) -> int:
    """Deterministic, process-independent bucket of ``key``."""
    return zlib.crc32(str(key).encode("utf-8")) % n_shards


@dataclass(frozen=True)
class FederationConfig:
    """Tuning knobs of the federation layer (``None`` = not federated)."""

    #: Fixed hash buckets the keyspace is split into.  More shards than
    #: coordinators keeps handoff granular (move one bucket, not half
    #: the keyspace).
    n_shards: int = 8
    #: SN values per lease grant.  Bigger spans amortize the allocator
    #: round-trip; smaller spans keep cross-coordinator SN order closer
    #: to real time.
    lease_span: int = 64
    #: Handoff: how long (seconds) to wait for the source coordinator's
    #: in-flight globals on the shard to drain before forcing the
    #: ownership switch (epoch fencing makes forcing safe).
    drain_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.lease_span < 1:
            raise ConfigError(f"lease_span must be >= 1, got {self.lease_span}")
        if self.drain_timeout < 0:
            raise ConfigError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}"
            )


class ShardMap:
    """Who owns which shard, and under which epoch.

    Mutable: a handoff calls :meth:`reassign`, which installs the new
    owner and bumps that shard's epoch.  Epochs are per shard so a
    handoff of one bucket never fences the untouched owners of the
    others.
    """

    def __init__(
        self,
        owners: Dict[int, str],
        epochs: Optional[Dict[int, int]] = None,
    ) -> None:
        if not owners:
            raise ConfigError("a shard map needs at least one shard")
        self._owners = dict(owners)
        self._epochs = (
            {shard: 1 for shard in self._owners}
            if epochs is None
            else dict(epochs)
        )

    @classmethod
    def initial(cls, n_shards: int, coordinators: List[str]) -> "ShardMap":
        """Round-robin assignment of ``n_shards`` buckets to coordinators."""
        if not coordinators:
            raise ConfigError("a shard map needs at least one coordinator")
        return cls(
            {s: coordinators[s % len(coordinators)] for s in range(n_shards)}
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self._owners)

    def shards(self) -> List[int]:
        return sorted(self._owners)

    def owner(self, shard: int) -> str:
        return self._owners[shard]

    def epoch(self, shard: int) -> int:
        return self._epochs[shard]

    def shard_of(self, txn: TxnId) -> int:
        return shard_of_key(txn.number, self.n_shards)

    def owner_of(self, txn: TxnId) -> str:
        return self.owner(self.shard_of(txn))

    def shards_of(self, owner: str) -> List[int]:
        return sorted(s for s, o in self._owners.items() if o == owner)

    def coordinators(self) -> List[str]:
        return sorted(set(self._owners.values()))

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------

    def reassign(self, shard: int, new_owner: str) -> int:
        """Hand ``shard`` to ``new_owner``; returns the new (bumped) epoch."""
        if shard not in self._owners:
            raise ConfigError(f"unknown shard {shard}")
        self._owners[shard] = new_owner
        self._epochs[shard] = self._epochs[shard] + 1
        return self._epochs[shard]

    def adopt(self, shard: int, owner: str, epoch: int) -> bool:
        """Install ``owner`` at ``epoch`` for one shard, never regressing.

        Used when replaying a coordinator's SHARD_EPOCH records after a
        restart, and when a handoff orchestrator pushes a single-shard
        update: an epoch older than what the map already carries is a
        stale echo and is ignored.  Returns whether the entry changed.
        """
        if shard not in self._owners:
            raise ConfigError(f"unknown shard {shard}")
        if epoch < self._epochs[shard]:
            return False
        self._owners[shard] = owner
        self._epochs[shard] = epoch
        return True

    def install(self, other: "ShardMap") -> None:
        """Adopt ``other``'s assignment, never regressing an epoch.

        Used when a map push arrives over the wire: a delayed push from
        before a later handoff must not resurrect the deposed owner.
        """
        for shard, owner in other._owners.items():
            epoch = other._epochs[shard]
            if shard not in self._epochs or epoch >= self._epochs[shard]:
                self._owners[shard] = owner
                self._epochs[shard] = epoch

    def copy(self) -> "ShardMap":
        return ShardMap(self._owners, self._epochs)

    # ------------------------------------------------------------------
    # Serialization (cluster.json / control frames)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            str(shard): {"owner": self._owners[shard], "epoch": self._epochs[shard]}
            for shard in sorted(self._owners)
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, object]]) -> "ShardMap":
        owners = {int(s): str(entry["owner"]) for s, entry in data.items()}
        epochs = {int(s): int(entry["epoch"]) for s, entry in data.items()}
        return cls(owners, epochs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{s}->{self._owners[s]}@e{self._epochs[s]}" for s in sorted(self._owners)
        )
        return f"ShardMap({parts})"
