"""Sharded multi-coordinator federation.

Partitions the global-transaction keyspace across N coordinators while
keeping the paper's certified-prepare protocol untouched underneath:

* :mod:`repro.federation.shard` — the :class:`ShardMap` (key-hash
  routing, per-shard ownership epochs) and :class:`FederationConfig`;
* :mod:`repro.federation.leases` — the :class:`SnAllocator` that grants
  disjoint, WAL-logged SN ranges and the :class:`LeasedSN` generator
  each federated coordinator draws from.

With one coordinator the federation layer is inert: ``SystemConfig``
defaults to ``federation=None`` and nothing here is imported on the
hot path, so single-coordinator runs stay byte-identical.
"""

from repro.federation.leases import HLC_TICKS_PER_SECOND, Lease, LeasedSN, SnAllocator
from repro.federation.shard import FederationConfig, ShardMap, shard_of_key

__all__ = [
    "FederationConfig",
    "HLC_TICKS_PER_SECOND",
    "Lease",
    "LeasedSN",
    "ShardMap",
    "SnAllocator",
    "shard_of_key",
]
