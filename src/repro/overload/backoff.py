"""Capped exponential backoff with seeded jitter for resubmissions.

The paper's agent retries a failed resubmission after a *fixed* pause,
which under contention synchronises every struggling subtransaction
into periodic retry storms.  The replacement is the standard recipe:
exponential growth per consecutive failure, a cap, and seeded uniform
jitter to decorrelate the retriers.  Seeded, so a run's whole retry
schedule is reproducible from the system seed.
"""

from __future__ import annotations

import random

from repro.overload.config import OverloadConfig


class ResubmitBackoff:
    """Stateless delay policy: ``delay(attempt)`` for attempt = 1, 2, ..."""

    def __init__(self, config: OverloadConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng

    def delay(self, attempt: int) -> float:
        """Pause before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            attempt = 1
        base = self.config.resubmit_backoff_base * (
            self.config.resubmit_backoff_factor ** (attempt - 1)
        )
        delay = min(base, self.config.resubmit_backoff_max)
        if self.config.resubmit_backoff_jitter > 0:
            delay += self._rng.uniform(0.0, self.config.resubmit_backoff_jitter)
        return delay
