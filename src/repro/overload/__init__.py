"""Overload survival: admission control, deadlines, backoff, breakers.

The paper's 2PCA method keeps prepared subtransactions alive
indefinitely by resubmitting after unilateral aborts; nothing in the
coordinator/DTM path bounds in-flight work.  Under heavy traffic that
turns into livelock: resubmission storms and commit-certification
retries starve old globals while new traffic piles in.  This package
adds the flow-control layer the ROADMAP's "graceful degradation" goal
demands, in four pieces:

* :class:`~repro.overload.admission.AdmissionController` — a bounded
  in-flight-globals budget per coordinator with a seeded shedding ramp
  (refuse at BEGIN, never queue unboundedly);
* deadline propagation — an optional per-transaction deadline carried
  in the BEGIN/COMMAND/PREPARE envelopes and enforced at the
  coordinator's vote gate and at the agents (expired work is aborted,
  never prepared, so it cannot wedge the certifier's interval table);
* :class:`~repro.overload.backoff.ResubmitBackoff` — capped exponential
  backoff with seeded jitter for the agent's resubmission loop, plus a
  per-subtransaction budget that escalates (GIVEUP) to a
  coordinator-driven global abort;
* :class:`~repro.overload.breaker.CircuitBreaker` — error-rate-driven
  closed/open/half-open breakers per site, fed by refusals,
  resubmission failures and session-layer dead letters, complementing
  the heartbeat quarantine with a probe-based recovery path.

Everything is opt-in behind ``SystemConfig(overload=OverloadConfig())``;
with it off (the default) the system's behaviour — and the determinism
goldens — are byte-identical.
"""

from repro.overload.admission import AdmissionController
from repro.overload.backoff import ResubmitBackoff
from repro.overload.breaker import BreakerRegistry, BreakerState, CircuitBreaker
from repro.overload.config import BreakerConfig, OverloadConfig

__all__ = [
    "AdmissionController",
    "BreakerConfig",
    "BreakerRegistry",
    "BreakerState",
    "CircuitBreaker",
    "OverloadConfig",
    "ResubmitBackoff",
]
