"""Tuning knobs for the overload-survival layer (all opt-in)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class BreakerConfig:
    """Per-site circuit breaker: error-rate window and recovery probing."""

    #: Sliding window of the most recent outcomes per site.
    window: int = 20
    #: Outcomes observed before the error rate is trusted at all.
    min_volume: int = 5
    #: Failure fraction at which the breaker opens.
    failure_threshold: float = 0.5
    #: How long an open breaker refuses everything before letting
    #: half-open probes through.
    open_duration: float = 300.0
    #: Trial transactions admitted in the half-open state; one success
    #: closes the breaker, one failure re-opens it.
    half_open_probes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError("breaker window must be >= 1")
        if self.min_volume < 1:
            raise ConfigError("min_volume must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ConfigError("failure_threshold must be in (0, 1]")
        if self.open_duration <= 0:
            raise ConfigError("open_duration must be positive")
        if self.half_open_probes < 1:
            raise ConfigError("half_open_probes must be >= 1")


@dataclass(frozen=True)
class OverloadConfig:
    """One switch for the whole flow-control layer.

    Present on :class:`~repro.core.dtm.SystemConfig` as ``overload``;
    ``None`` (the default) disables every mechanism and keeps the
    determinism goldens byte-identical.
    """

    #: Hard cap on concurrently running global transactions *per
    #: coordinator*; the transaction is refused at BEGIN with
    #: :attr:`RefusalReason.OVERLOADED` once it is reached.
    max_inflight_globals: int = 16
    #: Occupancy fraction at which seeded probabilistic shedding starts
    #: ramping (1.0 = hard cap only, no early shedding).  Early shedding
    #: decorrelates refusal bursts: instead of every submitter hitting
    #: the same hard wall, an increasing coin-flip fraction is turned
    #: away as the budget fills.
    shed_start_fraction: float = 1.0
    #: Default per-transaction deadline (relative to submission) stamped
    #: on specs that carry none; ``None`` = no deadline unless the spec
    #: sets one.
    default_deadline: Optional[float] = None
    #: Resubmission backoff: first retry delay, multiplicative growth,
    #: cap, and the seeded uniform jitter added to every delay.
    resubmit_backoff_base: float = 10.0
    resubmit_backoff_factor: float = 2.0
    resubmit_backoff_max: float = 160.0
    resubmit_backoff_jitter: float = 5.0
    #: Failed resubmission attempts after which the agent escalates a
    #: still-undecided transaction to the coordinator (GIVEUP).  The
    #: agent keeps its prepared state either way — a READY vote is a
    #: binding promise — so the escalation is advisory and safe.
    resubmit_budget: int = 6
    #: Starvation guard: a long-prepared transaction's commit
    #: certification retry interval decays towards this floor ...
    min_commit_retry: float = 5.0
    #: ... halving (roughly) every ``commit_retry_halflife`` of time
    #: spent prepared, so old globals retry more and more eagerly and
    #: eventually win over the incoming storm.
    commit_retry_halflife: float = 500.0
    #: Per-site circuit breakers (``None`` disables just the breakers).
    breaker: Optional[BreakerConfig] = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        if self.max_inflight_globals < 1:
            raise ConfigError("max_inflight_globals must be >= 1")
        if not 0.0 < self.shed_start_fraction <= 1.0:
            raise ConfigError("shed_start_fraction must be in (0, 1]")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigError("default_deadline must be positive")
        if self.resubmit_backoff_base <= 0:
            raise ConfigError("resubmit_backoff_base must be positive")
        if self.resubmit_backoff_factor < 1.0:
            raise ConfigError("resubmit_backoff_factor must be >= 1")
        if self.resubmit_backoff_max < self.resubmit_backoff_base:
            raise ConfigError("resubmit_backoff_max must be >= the base")
        if self.resubmit_backoff_jitter < 0:
            raise ConfigError("resubmit_backoff_jitter must be >= 0")
        if self.resubmit_budget < 1:
            raise ConfigError("resubmit_budget must be >= 1")
        if self.min_commit_retry <= 0:
            raise ConfigError("min_commit_retry must be positive")
        if self.commit_retry_halflife <= 0:
            raise ConfigError("commit_retry_halflife must be positive")
