"""Per-site circuit breakers: closed → open → half-open → closed.

The heartbeat failure detector quarantines a site that stops answering
PINGs entirely; the breaker complements it by watching the *error rate*
of work actually sent there — refused votes, resubmission failures,
session-layer dead letters — which catches a site that is up enough to
answer heartbeats but too sick (or too contended) to finish anything.

The state machine is the classic one:

* **CLOSED** — outcomes stream into a bounded sliding window; when the
  failure fraction over at least ``min_volume`` outcomes reaches
  ``failure_threshold``, the breaker opens;
* **OPEN** — every :meth:`allow` refuses (the coordinator turns that
  into an up-front ``SITE_BREAKER_OPEN`` abort) until ``open_duration``
  has passed; the transition out is evaluated lazily on the next
  ``allow`` call, so the breaker needs no timer of its own;
* **HALF_OPEN** — up to ``half_open_probes`` trial transactions pass;
  the first success closes the breaker (window cleared — the site gets
  a clean slate), the first failure re-opens it for another
  ``open_duration``.

All timing uses the caller-supplied ``now`` (simulated time), so the
breaker is deterministic and trivially unit-testable.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.overload.config import BreakerConfig


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """One site's breaker; see the module docstring for the protocol."""

    def __init__(self, site: str, config: BreakerConfig) -> None:
        self.site = site
        self.config = config
        self.state = BreakerState.CLOSED
        #: Most recent outcomes, newest last (True = success).
        self._window: List[bool] = []
        self._opened_at = 0.0
        self._probes_left = 0
        self.opens = 0
        self.refusals = 0
        #: ``(time, transition)`` audit trail.
        self.log: List[tuple] = []

    def _record(self, now: float, transition: str) -> None:
        self.log.append((now, transition))

    def _open(self, now: float) -> None:
        self.state = BreakerState.OPEN
        self._opened_at = now
        self.opens += 1
        self._record(now, "open")

    def _close(self, now: float) -> None:
        self.state = BreakerState.CLOSED
        self._window.clear()
        self._record(now, "close")

    def allow(self, now: float) -> bool:
        """May new work be routed to this site right now?"""
        if self.state is BreakerState.OPEN:
            if now - self._opened_at >= self.config.open_duration:
                self.state = BreakerState.HALF_OPEN
                self._probes_left = self.config.half_open_probes
                self._record(now, "half-open")
            else:
                self.refusals += 1
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_left > 0:
                self._probes_left -= 1
                return True
            self.refusals += 1
            return False
        return True

    def record_success(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            # One healthy probe is the recovery signal.
            self._close(now)
            return
        self._note_outcome(now, True)

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._open(now)
            return
        if self.state is BreakerState.OPEN:
            # Stragglers from before the trip change nothing.
            return
        self._note_outcome(now, False)

    def _note_outcome(self, now: float, ok: bool) -> None:
        window = self._window
        window.append(ok)
        if len(window) > self.config.window:
            del window[0]
        if len(window) < self.config.min_volume:
            return
        failures = window.count(False)
        if failures / len(window) >= self.config.failure_threshold:
            self._open(now)


class BreakerRegistry:
    """The per-site breakers one system shares across its coordinators.

    Shared on purpose: a site's sickness is a property of the site, not
    of whichever coordinator happened to observe it, so every feedback
    source (coordinator outcomes, agent resubmission failures, session
    dead letters) lands in the same breaker.
    """

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, site: str) -> CircuitBreaker:
        breaker = self._breakers.get(site)
        if breaker is None:
            breaker = self._breakers[site] = CircuitBreaker(site, self.config)
        return breaker

    def allow(self, site: str, now: float) -> bool:
        return self.breaker(site).allow(now)

    def record_success(self, site: str, now: float) -> None:
        self.breaker(site).record_success(now)

    def record_failure(self, site: str, now: float) -> None:
        self.breaker(site).record_failure(now)

    def state_of(self, site: str) -> BreakerState:
        return self.breaker(site).state

    @property
    def opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    @property
    def refusals(self) -> int:
        return sum(b.refusals for b in self._breakers.values())
