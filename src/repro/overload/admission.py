"""Bounded in-flight-globals budget with a seeded shedding ramp.

One controller per coordinator: :meth:`try_admit` is called when a
global transaction is submitted, :meth:`release` when it reaches a
terminal state.  Admission is O(1) and never queues — an overloaded
coordinator says no *now* (``RefusalReason.OVERLOADED``) instead of
growing an unbounded backlog that starves everything behind it.

Below the hard cap an optional probabilistic ramp sheds an increasing
fraction of arrivals as the budget fills (``shed_start_fraction``),
which spreads refusals over the arrival stream instead of slamming
every submitter into the same wall at once.  The coin is seeded, so
two runs with the same seed shed the same transactions.
"""

from __future__ import annotations

import random

from repro.overload.config import OverloadConfig


class AdmissionController:
    """Load shedding at the coordinator's front door."""

    def __init__(self, config: OverloadConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = random.Random(seed)
        self.inflight = 0
        self.admitted = 0
        self.shed = 0

    def try_admit(self) -> bool:
        """Claim one in-flight slot, or refuse (never blocks)."""
        cap = self.config.max_inflight_globals
        if self.inflight >= cap:
            self.shed += 1
            return False
        ramp_start = self.config.shed_start_fraction * cap
        if self.config.shed_start_fraction < 1.0 and self.inflight >= ramp_start:
            # Probability ramps linearly from ~0 at the ramp start to 1
            # at the hard cap; the +1 keeps it strictly below 1 until
            # the cap itself refuses deterministically.
            shed_probability = (self.inflight - ramp_start + 1) / (
                cap - ramp_start + 1
            )
            if self._rng.random() < shed_probability:
                self.shed += 1
                return False
        self.inflight += 1
        self.admitted += 1
        return True

    def release(self) -> None:
        """Return one slot (the transaction reached a terminal state)."""
        if self.inflight <= 0:
            raise RuntimeError("admission release without a matching admit")
        self.inflight -= 1
