"""Executable reconstructions of the paper's worked histories.

Each ``run_*`` function builds a fresh two-coordinator system, pins
message latencies and failure injections so the paper's interleaving is
reproduced deterministically, runs to quiescence and returns a
:class:`ScenarioResult` bundling the outcomes with the correctness
audit.  Every scenario accepts a ``method`` argument, so the same
script demonstrates both the anomaly (under the weak method) and its
prevention (under 2CM):

==========  =============================  ==================================
Scenario    Weak method → anomaly          2CM behaviour
==========  =============================  ==================================
H1 (E2)     ``naive`` → global view        ``2cm``: T2 refused by the basic
            distortion (T1's resubmission  prepare certification (empty alive
            reads X from T2, and its       interval intersection); history
            decomposition changes because  view serializable.
            T2 deleted Y)
H2 (E3)     ``naive`` → local view         ``2cm``: T3 refused at site a;
            distortion (CG cycle           clean history.
            T1→T3→L4→T1)
H3 (E4)     ``2cm-prepare-order`` /        ``2cm``: commit certification
            ``2cm-nocommitcert`` /         orders C^b_5 < C^b_6 by serial
            ``naive`` → CG cycle with      number; zero aborts, view
            indirectly conflicting         serializable.
            globals; L7/L8 get
            non-serializable views
Hx (E5)     ``2cm-noext`` → COMMIT of      ``2cm``: the late PREPARE is
            T8 overtakes PREPARE of T7     refused by the certification
            at site s, CG cycle            extension (SN smaller than an
                                           already-committed one).
==========  =============================  ==================================

The item names mirror the paper: ``X, Y, Z, Q, U`` for H1/H2 (sites a
and b), ``P, R, S, U`` for H3, and site names ``i``/``s`` for Hx.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.common.ids import TxnId, global_txn, local_txn
from repro.core.coordinator import GlobalOutcome, GlobalTransactionSpec
from repro.core.dtm import LocalOutcome, MultidatabaseSystem, SystemConfig
from repro.history.model import OpKind, Operation
from repro.ldbs.commands import (
    AddValue,
    DeleteItem,
    InsertItem,
    ReadItem,
    UpdateItem,
)
from repro.ldbs.ltm import LTMConfig
from repro.net.network import LatencyModel
from repro.sim.failures import (
    abort_current_incarnation,
    inject_abort_after_global_commit,
)
from repro.sim.metrics import CorrectnessAudit, audit
from repro.core.agent import AgentConfig


@dataclass
class ScenarioResult:
    """System + outcomes + correctness audit of one scenario run."""

    system: MultidatabaseSystem
    global_outcomes: Dict[TxnId, GlobalOutcome] = field(default_factory=dict)
    local_outcomes: Dict[TxnId, LocalOutcome] = field(default_factory=dict)

    _audit: Optional[CorrectnessAudit] = None

    @property
    def audit(self) -> CorrectnessAudit:
        if self._audit is None:
            self._audit = audit(self.system)
        return self._audit

    def outcome(self, number: int) -> GlobalOutcome:
        return self.global_outcomes[global_txn(number)]

    def local_outcome(self, number: int, site: str) -> LocalOutcome:
        return self.local_outcomes[local_txn(number, site)]


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------


def _build(
    method: str,
    sites,
    overrides: Dict,
    alive_check_interval: float = 500.0,
) -> MultidatabaseSystem:
    """A two-coordinator system with pinned per-channel latencies.

    The long default alive-check interval keeps resubmission driven by
    the scenario's message timing (the COMMIT arrival) rather than by a
    timer racing it, which is how the paper's interleavings order their
    operations.
    """
    return MultidatabaseSystem(
        SystemConfig(
            sites=tuple(sites),
            n_coordinators=2,
            method=method,
            latency=LatencyModel(base=5.0, jitter=0.0, overrides=overrides),
            ltm=LTMConfig(op_duration=1.0, lock_timeout=2000.0),
            agent=AgentConfig(
                alive_check_interval=alive_check_interval,
                commit_retry_interval=15.0,
            ),
        )
    )


def _watch_outcome(result: ScenarioResult, completion, kind: str = "global"):
    def done(event) -> None:
        if event.error is not None:
            raise event.error
        outcome = event._value
        if kind == "global":
            result.global_outcomes[outcome.txn] = outcome
        else:
            result.local_outcomes[outcome.txn] = outcome

    completion.subscribe(done)


def _on_history(
    system: MultidatabaseSystem,
    predicate: Callable[[Operation], bool],
    delay: float,
    action: Callable[[], None],
) -> None:
    """Run ``action`` ``delay`` after the first matching history op."""
    fired = [False]

    def observer(op: Operation) -> None:
        if fired[0] or not predicate(op):
            return
        fired[0] = True
        system.kernel.schedule(delay, action)

    system.history.subscribe(observer)


def _drain(system: MultidatabaseSystem, limit: float = 100_000.0) -> None:
    system.run(until=limit, advance=False)
    if system.kernel.pending:
        raise RuntimeError("scenario did not quiesce")


# ----------------------------------------------------------------------
# H1 — global view distortion (paper Sec. 3, experiment E2)
# ----------------------------------------------------------------------


def run_h1(method: str = "naive") -> ScenarioResult:
    """History H1: T1 prepared everywhere, globally committed, then
    unilaterally aborted at site a; T2 runs over the released data
    (deleting Y and updating X) before T1's COMMIT reaches site a.

    Under ``naive``, T1's resubmission reads X from T2 (its original
    read came from T0) and its update of Y decomposes differently
    because Y is gone — the paper's global view distortion, visible as
    a non-view-serializable C(H).  Under ``2cm``, T2's PREPARE at site a
    fails the alive-interval intersection and T2 is aborted instead.
    """
    system = _build(
        method,
        sites=("a", "b"),
        overrides={("coord:c1", "agent:a"): 80.0},
    )
    system.load("a", "acct", {"X": 100, "Y": 50})
    system.load("b", "acct", {"Z": 10})
    result = ScenarioResult(system=system)

    t1 = GlobalTransactionSpec(
        txn=global_txn(1),
        steps=(
            ("a", ReadItem("acct", "X")),
            ("a", UpdateItem("acct", "Y", AddValue(5))),
            ("b", UpdateItem("acct", "Z", AddValue(1))),
        ),
    )
    t2 = GlobalTransactionSpec(
        txn=global_txn(2),
        steps=(
            ("a", DeleteItem("acct", "Y")),
            ("a", UpdateItem("acct", "X", AddValue(-10))),
            ("b", UpdateItem("acct", "Z", AddValue(2))),
        ),
    )

    _watch_outcome(result, system.submit(t1, coordinator=0))
    # A^a_10 lands just after C_1 (the Coordinator's durable decision).
    inject_abort_after_global_commit(system, t1.txn, "a", delay=1.0)
    # T2 starts once C_1 is decided, while T1's COMMIT crawls to site a.
    _on_history(
        system,
        lambda op: op.kind is OpKind.GLOBAL_COMMIT and op.txn == t1.txn,
        delay=2.0,
        action=lambda: _watch_outcome(result, system.submit(t2, coordinator=1)),
    )
    _drain(system)
    return result


# ----------------------------------------------------------------------
# H2 — local view distortion via a direct conflict (Sec. 5.1, E3)
# ----------------------------------------------------------------------


def run_h2(method: str = "naive") -> ScenarioResult:
    """History H2: the cycle T1 → T3 → L4 → T1.

    T3 reads Z at site b *from T1* (after C^b_10) and updates Q at a;
    the local transaction L4 then reads Q from T3 but Y from T0 —
    while T1's resubmission at a commits its write of Y only later.
    Local commits end up in reversed orders at the two sites (CG cycle)
    and L4's view is non-serializable.
    """
    system = _build(
        method,
        sites=("a", "b"),
        overrides={("coord:c1", "agent:a"): 80.0},
    )
    system.load("a", "acct", {"X": 100, "Y": 50, "Q": 7})
    system.load("b", "acct", {"Z": 10})
    result = ScenarioResult(system=system)

    t1 = GlobalTransactionSpec(
        txn=global_txn(1),
        steps=(
            ("a", ReadItem("acct", "X")),
            ("a", UpdateItem("acct", "Y", AddValue(5))),
            ("b", UpdateItem("acct", "Z", AddValue(1))),
        ),
    )
    t3 = GlobalTransactionSpec(
        txn=global_txn(3),
        steps=(
            ("b", ReadItem("acct", "Z")),
            ("a", UpdateItem("acct", "Q", AddValue(3))),
        ),
    )

    _watch_outcome(result, system.submit(t1, coordinator=0))
    inject_abort_after_global_commit(system, t1.txn, "a", delay=1.0)

    def launch_t3() -> None:
        completion = system.submit(t3, coordinator=1)
        _watch_outcome(result, completion)

        def after_t3(event) -> None:
            if event.error is not None:
                raise event.error
            local = system.submit_local(
                "a",
                [
                    ReadItem("acct", "Q"),
                    ReadItem("acct", "Y"),
                    InsertItem("acct", "U", 1),
                ],
                number=4,
            )
            _watch_outcome(result, local, kind="local")

        completion.subscribe(after_t3)

    # T3 starts after C_1 — late enough for C^b_10 to have landed.
    _on_history(
        system,
        lambda op: op.kind is OpKind.GLOBAL_COMMIT and op.txn == t1.txn,
        delay=7.0,
        action=launch_t3,
    )
    _drain(system)
    return result


# ----------------------------------------------------------------------
# H3 — local view distortion via indirect conflicts (Sec. 5.1, E4)
# ----------------------------------------------------------------------


def run_h3(method: str = "2cm") -> ScenarioResult:
    """History H3: globals T5 and T6 never conflict directly; each is
    unilaterally aborted at one site after the global commit decision,
    and a local transaction at each site reads *between* the local
    commits — L7 sees {P from T5, R from T0}, L8 sees {U from T6, S
    from T0}.  Their prepare operations arrive in *opposite* orders at
    the two sites, so the PREPARE_ORDER commit policy (and of course
    ``naive`` / ``2cm-nocommitcert``) produces a commit-order-graph
    cycle and a non-view-serializable history; serial-number commit
    certification orders both sites identically and stays anomaly-free
    with zero aborts.
    """
    system = _build(
        method,
        sites=("a", "b"),
        overrides={
            ("coord:c1", "agent:b"): 40.0,
            ("coord:c2", "agent:a"): 40.0,
        },
    )
    system.load("a", "acct", {"P": 1, "R": 2})
    system.load("b", "acct", {"S": 3, "U": 4})
    result = ScenarioResult(system=system)

    t5 = GlobalTransactionSpec(
        txn=global_txn(5),
        steps=(
            ("a", UpdateItem("acct", "P", AddValue(10))),
            ("b", UpdateItem("acct", "S", AddValue(10))),
        ),
    )
    t6 = GlobalTransactionSpec(
        txn=global_txn(6),
        steps=(
            ("a", UpdateItem("acct", "R", AddValue(20))),
            ("b", UpdateItem("acct", "U", AddValue(20))),
        ),
    )
    _watch_outcome(result, system.submit(t5, coordinator=0))
    # T6 starts slightly later so SN(5) < SN(6) deterministically (a
    # simultaneous start would tie the clock readings and leave the
    # order to message-timing epsilons).
    system.kernel.schedule(
        2.0,
        lambda: _watch_outcome(result, system.submit(t6, coordinator=1)),
    )
    # Each global loses one prepared subtransaction right after its
    # global commit decision: T6 at site a, T5 at site b.
    inject_abort_after_global_commit(system, t6.txn, "a", delay=1.0)
    inject_abort_after_global_commit(system, t5.txn, "b", delay=1.0)

    def launch_l7() -> None:
        local = system.submit_local(
            "a",
            [
                ReadItem("acct", "P"),
                ReadItem("acct", "R"),
                InsertItem("acct", "V", 1),
            ],
            number=7,
        )
        _watch_outcome(result, local, kind="local")

    def launch_l8() -> None:
        local = system.submit_local(
            "b",
            [
                ReadItem("acct", "U"),
                ReadItem("acct", "S"),
                InsertItem("acct", "W", 1),
            ],
            number=8,
        )
        _watch_outcome(result, local, kind="local")

    _on_history(
        system,
        lambda op: (
            op.kind is OpKind.LOCAL_COMMIT
            and op.txn == t5.txn
            and op.site == "a"
        ),
        delay=1.0,
        action=launch_l7,
    )
    _on_history(
        system,
        lambda op: (
            op.kind is OpKind.LOCAL_COMMIT
            and op.txn == t6.txn
            and op.site == "b"
        ),
        delay=1.0,
        action=launch_l8,
    )
    _drain(system)
    return result


# ----------------------------------------------------------------------
# Hx — COMMIT overtakes PREPARE (Sec. 5.3, E5)
# ----------------------------------------------------------------------


def run_hx(method: str = "2cm") -> ScenarioResult:
    """The Sec. 5.3 race: SN(7) < SN(8), yet T8's COMMIT reaches site s
    before T7's PREPARE does (T7's channel to s is slow).

    Without the prepare-certification extension (``2cm-noext``) site s
    happily prepares and commits T7 after T8 — yielding commit orders
    ``7 < 8`` at site i but ``8 < 7`` at site s: a CG cycle.  With the
    extension, site s refuses T7's PREPARE because a subtransaction
    with a bigger serial number already committed there.
    """
    system = _build(
        method,
        sites=("i", "s"),
        overrides={("coord:c1", "agent:s"): 100.0},
    )
    system.load("i", "acct", {"I1": 1, "I2": 2})
    system.load("s", "acct", {"S1": 3, "S2": 4})
    result = ScenarioResult(system=system)

    t7 = GlobalTransactionSpec(
        txn=global_txn(7),
        steps=(
            ("s", UpdateItem("acct", "S1", AddValue(1))),
            ("i", UpdateItem("acct", "I1", AddValue(1))),
        ),
    )
    t8 = GlobalTransactionSpec(
        txn=global_txn(8),
        steps=(
            ("i", UpdateItem("acct", "I2", AddValue(2))),
            ("s", UpdateItem("acct", "S2", AddValue(2))),
        ),
    )
    _watch_outcome(result, system.submit(t7, coordinator=0))
    # T8 starts once T7 is prepared at site i, so SN(7) < SN(8) while
    # T8's (fast) COMMIT still overtakes T7's (slow) PREPARE at site s.
    _on_history(
        system,
        lambda op: op.kind is OpKind.PREPARE and op.txn == t7.txn and op.site == "i",
        delay=1.0,
        action=lambda: _watch_outcome(result, system.submit(t8, coordinator=1)),
    )
    _drain(system)
    return result


# ----------------------------------------------------------------------
# H2' — indirect conflicts defeat conflict-aware certification (E17)
# ----------------------------------------------------------------------


def run_h2_indirect(method: str = "2cm") -> ScenarioResult:
    """H2 rearranged to isolate *why* the interval rule is conflict-blind.

    At site a the two globals touch disjoint data (T1: X, Y; T3: Q) —
    their direct conflict lives at site b (Z).  The local transaction L4
    bridges them at site a: it reads Y (T1's item, unlocked after the
    unilateral abort, readable despite being bound) *before* T1's
    resubmission re-writes it, and reads Q (T3's item) — blocking on
    T3's lock until T3 commits there.  Result: T1 < T3 (Z at b),
    T3 < L4 (Q), L4 < T1 (Y) — the H2 cycle, built entirely from a
    conflict the certifier cannot see because local transactions are
    invisible to the DTM.

    * ``2cm`` — the conflict-blind interval rule refuses T3 at site a
      (their alive intervals cannot intersect after T1's failure), so
      the chain never forms;
    * ``2cm-conflict-aware`` — the predicate-style variant sees the
      disjoint access sets {X, Y} vs {Q}, passes T3, and the indirect
      conflict through L4 produces a non-view-serializable history —
      even though commit certification correctly orders
      ``C^a_11 < C^a_30``.
    """
    system = _build(
        method,
        sites=("a", "b"),
        overrides={("coord:c1", "agent:a"): 80.0},
    )
    system.load("a", "acct", {"X": 100, "Y": 50, "Q": 7})
    system.load("b", "acct", {"Z": 10})
    result = ScenarioResult(system=system)

    t1 = GlobalTransactionSpec(
        txn=global_txn(1),
        steps=(
            ("a", ReadItem("acct", "X")),
            ("a", UpdateItem("acct", "Y", AddValue(5))),
            ("b", UpdateItem("acct", "Z", AddValue(1))),
        ),
    )
    t3 = GlobalTransactionSpec(
        txn=global_txn(3),
        steps=(
            ("b", ReadItem("acct", "Z")),
            ("a", UpdateItem("acct", "Q", AddValue(3))),
        ),
    )

    _watch_outcome(result, system.submit(t1, coordinator=0))
    inject_abort_after_global_commit(system, t1.txn, "a", delay=1.0)

    def launch_t3() -> None:
        _watch_outcome(result, system.submit(t3, coordinator=1))

    def launch_l4() -> None:
        # R4[Y] lands immediately (Y is unlocked after A^a_10; bound
        # data may be read); R4[Q] blocks on T3's lock until C^a_30.
        local = system.submit_local(
            "a",
            [
                ReadItem("acct", "Y"),
                ReadItem("acct", "Q"),
                InsertItem("acct", "U", 1),
            ],
            number=4,
        )
        _watch_outcome(result, local, kind="local")

    _on_history(
        system,
        lambda op: op.kind is OpKind.GLOBAL_COMMIT and op.txn == t1.txn,
        delay=7.0,
        action=launch_t3,
    )
    # L4 starts on T3's prepare at site a — after T3's update of Q (the
    # lock L4 will wait on), before any local commit there.
    _on_history(
        system,
        lambda op: op.kind is OpKind.PREPARE and op.txn == t3.txn and op.site == "a",
        delay=1.0,
        action=launch_l4,
    )
    _drain(system)
    return result
