"""Random workload generation for the quantitative experiments.

The generator produces a deterministic :class:`Schedule` from its seed:
timed global transactions (each an ordered list of per-site DML
commands routed through the coordinators) and timed local transactions
(submitted straight to one LTM, invisible to the DTM — the paper's
model of local work).

Contention is shaped the usual way: a small set of *hot* keys per site
attracts a configurable fraction of accesses; everything else is
uniform over the cold range.  Updates are balanced ``AddValue`` deltas
so that bank-style invariants (sum preservation per key set) remain
checkable by the examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.ids import TxnId, global_txn
from repro.core.coordinator import GlobalTransactionSpec
from repro.ldbs.commands import (
    AddValue,
    Command,
    InsertItem,
    ReadItem,
    ScanTable,
    UpdateItem,
)


@dataclass(frozen=True)
class ScheduledGlobal:
    """One timed global submission."""

    at: float
    spec: GlobalTransactionSpec


@dataclass(frozen=True)
class ScheduledLocal:
    """One timed local submission."""

    at: float
    site: str
    commands: Tuple[Command, ...]
    number: int
    think_time: float = 0.0


@dataclass
class Schedule:
    """A complete deterministic workload."""

    initial_data: Dict[str, Dict[str, Dict[object, object]]]
    globals_: List[ScheduledGlobal] = field(default_factory=list)
    locals_: List[ScheduledLocal] = field(default_factory=list)

    @property
    def n_global(self) -> int:
        return len(self.globals_)

    @property
    def n_local(self) -> int:
        return len(self.locals_)


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of a random workload."""

    sites: Tuple[str, ...] = ("a", "b", "c")
    n_global: int = 40
    n_local: int = 0
    table: str = "t"
    #: Number of tables per site (``t``, ``t1``, ``t2``, ...).  More
    #: tables give table-granularity methods (CGM's global locks, scan
    #: locks) room to breathe; keys are spread evenly across tables.
    n_tables: int = 1
    keys_per_site: int = 64
    initial_value: int = 100
    #: Commands per global transaction (uniform in [min, max]).
    ops_min: int = 2
    ops_max: int = 4
    #: Participating sites per global transaction (uniform in [min, max]).
    sites_min: int = 1
    sites_max: int = 2
    update_fraction: float = 0.5
    #: Fraction of commands that are full-table scans (S table locks).
    scan_fraction: float = 0.0
    hot_keys: int = 4
    hot_access_fraction: float = 0.2
    mean_interarrival: float = 15.0
    think_time: float = 0.0
    local_ops: int = 2
    #: Local transactions update with this probability per command.
    local_update_fraction: float = 0.5
    #: Probability that a local update is an INSERT of a brand-new row
    #: (exercises the phantom path against scanned tables).
    local_insert_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.sites:
            raise ConfigError("need at least one site")
        if self.ops_min < 1 or self.ops_max < self.ops_min:
            raise ConfigError("invalid ops range")
        if self.sites_min < 1 or self.sites_max < self.sites_min:
            raise ConfigError("invalid sites range")
        if self.sites_max > len(self.sites):
            raise ConfigError("sites_max exceeds the number of sites")
        if not (0.0 <= self.update_fraction <= 1.0):
            raise ConfigError("update_fraction out of range")
        if self.hot_keys > self.keys_per_site:
            raise ConfigError("more hot keys than keys")
        if self.n_tables < 1:
            raise ConfigError("need at least one table")


class WorkloadGenerator:
    """Deterministic workload factory (same seed → same schedule)."""

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)

    def _table_names(self) -> List[str]:
        config = self.config
        names = [config.table]
        names.extend(f"{config.table}{i}" for i in range(1, config.n_tables))
        return names

    def _table_of(self, key: int) -> str:
        return self._table_names()[key % self.config.n_tables]

    def generate(self) -> Schedule:
        config = self.config
        initial = {
            site: {
                name: {
                    key: config.initial_value
                    for key in range(config.keys_per_site)
                    if self._table_of(key) == name
                }
                for name in self._table_names()
            }
            for site in config.sites
        }
        schedule = Schedule(initial_data=initial)

        clock = 0.0
        for number in range(1, config.n_global + 1):
            clock += self._rng.expovariate(1.0 / config.mean_interarrival)
            schedule.globals_.append(
                ScheduledGlobal(at=clock, spec=self._global_spec(number))
            )

        clock = 0.0
        for index in range(config.n_local):
            clock += self._rng.expovariate(1.0 / config.mean_interarrival)
            site = self._rng.choice(config.sites)
            schedule.locals_.append(
                ScheduledLocal(
                    at=clock,
                    site=site,
                    commands=tuple(self._local_commands()),
                    number=9001 + index,
                    think_time=config.think_time,
                )
            )
        return schedule

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------

    def _global_spec(self, number: int) -> GlobalTransactionSpec:
        config = self.config
        n_sites = self._rng.randint(config.sites_min, config.sites_max)
        sites = self._rng.sample(list(config.sites), n_sites)
        n_ops = self._rng.randint(config.ops_min, config.ops_max)
        steps: List[Tuple[str, Command]] = []
        for _ in range(n_ops):
            site = self._rng.choice(sites)
            steps.append((site, self._command()))
        # Ensure every chosen site is actually visited.
        visited = {site for site, _cmd in steps}
        for site in sites:
            if site not in visited:
                steps.append((site, self._command()))
        return GlobalTransactionSpec(
            txn=global_txn(number),
            steps=tuple(steps),
            think_time=config.think_time,
        )

    def _command(self) -> Command:
        config = self.config
        roll = self._rng.random()
        if roll < config.scan_fraction:
            return ScanTable(self._rng.choice(self._table_names()))
        key = self._pick_key()
        table = self._table_of(key)
        if self._rng.random() < config.update_fraction:
            delta = self._rng.choice([-5, -2, -1, 1, 2, 5])
            return UpdateItem(table, key, AddValue(delta))
        return ReadItem(table, key)

    def _local_commands(self) -> List[Command]:
        config = self.config
        commands: List[Command] = []
        for _ in range(config.local_ops):
            key = self._pick_key()
            table = self._table_of(key)
            if self._rng.random() < config.local_update_fraction:
                if self._rng.random() < config.local_insert_fraction:
                    # A fresh key beyond the initial range: a phantom
                    # candidate for any concurrent scan of the table.
                    new_key = config.keys_per_site + self._rng.randrange(1000)
                    commands.append(
                        InsertItem(self._table_of(new_key), new_key, 1)
                    )
                else:
                    delta = self._rng.choice([-1, 1])
                    commands.append(UpdateItem(table, key, AddValue(delta)))
            else:
                commands.append(ReadItem(table, key))
        return commands

    def _pick_key(self) -> int:
        config = self.config
        if (
            config.hot_keys > 0
            and self._rng.random() < config.hot_access_fraction
        ):
            return self._rng.randrange(config.hot_keys)
        if config.keys_per_site == config.hot_keys:
            return self._rng.randrange(config.keys_per_site)
        return self._rng.randrange(config.hot_keys, config.keys_per_site)
