"""A TPC-A / DebitCredit-style multidatabase workload.

The canonical OLTP benchmark of the paper's era (DebitCredit, 1985;
TPC-A, 1989), transplanted to the multidatabase setting: every site is
a *branch* running its own LDBS with ``accounts``, ``tellers`` and a
one-row ``branch`` table.  A debit/credit transaction picks a teller
and an account, applies the same delta to account, teller and branch —
and, with probability ``remote_fraction`` (TPC-A's classic 15%), the
account lives at a *different* branch, which turns the transaction into
a two-site global transaction through the coordinators.

The workload's value for this reproduction is its built-in
**consistency invariants**, checkable after any run (including runs
with unilateral aborts and resubmissions — exactly-once repair):

* per site: ``branch.balance == sum(teller balances)``;
* federation-wide: ``sum(branch balances) == sum(account deltas)
  == sum of the deltas of exactly the committed transactions``.

:func:`verify_invariants` performs those checks given the set of
committed transactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.ids import TxnId, global_txn
from repro.core.coordinator import GlobalTransactionSpec
from repro.core.dtm import MultidatabaseSystem
from repro.ldbs.commands import AddValue, ReadItem, UpdateItem
from repro.workload.generator import Schedule, ScheduledGlobal, ScheduledLocal


@dataclass(frozen=True)
class DebitCreditConfig:
    """Shape of a debit-credit run."""

    sites: Tuple[str, ...] = ("branch1", "branch2", "branch3")
    n_transactions: int = 60
    accounts_per_branch: int = 100
    tellers_per_branch: int = 10
    #: TPC-A's remote-account probability (multi-site transactions).
    remote_fraction: float = 0.15
    #: Local balance inquiries per branch (reads, invisible to the DTM).
    n_inquiries: int = 0
    mean_interarrival: float = 10.0
    initial_account_balance: int = 1_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.sites:
            raise ConfigError("need at least one branch")
        if not (0.0 <= self.remote_fraction <= 1.0):
            raise ConfigError("remote_fraction out of range")
        if len(self.sites) < 2 and self.remote_fraction > 0:
            raise ConfigError("remote accounts need at least two branches")


@dataclass
class DebitCreditSchedule:
    """The generated schedule plus the per-transaction deltas."""

    schedule: Schedule
    #: txn -> (home branch, account branch, delta)
    deltas: Dict[TxnId, Tuple[str, str, int]]


class DebitCreditGenerator:
    """Deterministic debit-credit workload factory."""

    def __init__(self, config: DebitCreditConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)

    def generate(self) -> DebitCreditSchedule:
        config = self.config
        initial: Dict[str, Dict[str, Dict[object, object]]] = {}
        for site in config.sites:
            initial[site] = {
                "accounts": {
                    i: config.initial_account_balance
                    for i in range(config.accounts_per_branch)
                },
                "tellers": {i: 0 for i in range(config.tellers_per_branch)},
                "branch": {"balance": 0},
            }
        schedule = Schedule(initial_data=initial)
        deltas: Dict[TxnId, Tuple[str, str, int]] = {}

        clock = 0.0
        for number in range(1, config.n_transactions + 1):
            clock += self._rng.expovariate(1.0 / config.mean_interarrival)
            txn = global_txn(number)
            home = self._rng.choice(config.sites)
            if (
                self._rng.random() < config.remote_fraction
                and len(config.sites) > 1
            ):
                account_site = self._rng.choice(
                    [site for site in config.sites if site != home]
                )
            else:
                account_site = home
            teller = self._rng.randrange(config.tellers_per_branch)
            account = self._rng.randrange(config.accounts_per_branch)
            delta = self._rng.choice((-100, -50, -10, 10, 50, 100))
            steps = (
                (account_site, UpdateItem("accounts", account, AddValue(delta))),
                (home, UpdateItem("tellers", teller, AddValue(delta))),
                (home, UpdateItem("branch", "balance", AddValue(delta))),
            )
            schedule.globals_.append(
                ScheduledGlobal(
                    at=clock,
                    spec=GlobalTransactionSpec(txn=txn, steps=steps),
                )
            )
            deltas[txn] = (home, account_site, delta)

        clock = 0.0
        for index in range(config.n_inquiries):
            clock += self._rng.expovariate(1.0 / config.mean_interarrival)
            site = self._rng.choice(config.sites)
            account = self._rng.randrange(config.accounts_per_branch)
            schedule.locals_.append(
                ScheduledLocal(
                    at=clock,
                    site=site,
                    commands=(
                        ReadItem("accounts", account),
                        ReadItem("branch", "balance"),
                    ),
                    number=9001 + index,
                )
            )
        return DebitCreditSchedule(schedule=schedule, deltas=deltas)


@dataclass
class InvariantReport:
    """Outcome of the consistency verification."""

    ok: bool
    details: List[str]

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


def verify_invariants(
    system: MultidatabaseSystem,
    generated: DebitCreditSchedule,
    committed: Sequence[TxnId],
) -> InvariantReport:
    """Check the bank's books after a run.

    ``committed`` is the set of transactions whose global commit was
    decided — their deltas (and only theirs) must be reflected exactly
    once, everywhere, no matter how many unilateral aborts and
    resubmissions happened along the way.
    """
    details: List[str] = []
    committed_set = set(committed)
    config_sites = list(generated.schedule.initial_data)

    # Per-site: branch balance equals the sum of teller balances.
    for site in config_sites:
        ltm = system.ltm(site)
        branch = sum(ltm.store.snapshot("branch").values())
        tellers = sum(ltm.store.snapshot("tellers").values())
        if branch != tellers:
            details.append(
                f"{site}: branch balance {branch} != teller sum {tellers}"
            )

    # Per-site: branch balance equals the committed deltas homed there.
    for site in config_sites:
        expected = sum(
            delta
            for txn, (home, _acct_site, delta) in generated.deltas.items()
            if home == site and txn in committed_set
        )
        actual = sum(system.ltm(site).store.snapshot("branch").values())
        if actual != expected:
            details.append(
                f"{site}: branch balance {actual} != committed deltas {expected}"
            )

    # Federation-wide: account money moved by exactly the committed sum.
    initial_total = sum(
        sum(tables["accounts"].values())
        for tables in generated.schedule.initial_data.values()
    )
    actual_total = sum(
        sum(system.ltm(site).store.snapshot("accounts").values())
        for site in config_sites
    )
    expected_total = initial_total + sum(
        delta
        for txn, (_home, _acct, delta) in generated.deltas.items()
        if txn in committed_set
    )
    if actual_total != expected_total:
        details.append(
            f"account total {actual_total} != expected {expected_total}"
        )

    return InvariantReport(ok=not details, details=details)
