"""Workloads: random generation and the paper's worked scenarios (S20).

* :mod:`repro.workload.generator` — seeded random mixes of global and
  local transactions over a multi-site key space, with tunable
  contention, multi-site fan-out, update fraction and arrival process;
* :mod:`repro.workload.scenarios` — executable reconstructions of the
  paper's Fig. 2 transactions and of histories H1, H2, H3 and Hx, each
  runnable under any method preset so the benchmarks can show the
  anomaly appearing under the weak method and disappearing under 2CM.
"""

from repro.workload.debitcredit import (
    DebitCreditConfig,
    DebitCreditGenerator,
    DebitCreditSchedule,
    verify_invariants,
)
from repro.workload.generator import (
    Schedule,
    ScheduledGlobal,
    ScheduledLocal,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.workload.scenarios import (
    ScenarioResult,
    run_h1,
    run_h2,
    run_h3,
    run_hx,
)

__all__ = [
    "DebitCreditConfig",
    "DebitCreditGenerator",
    "DebitCreditSchedule",
    "Schedule",
    "ScheduledGlobal",
    "ScheduledLocal",
    "ScenarioResult",
    "WorkloadConfig",
    "WorkloadGenerator",
    "run_h1",
    "run_h2",
    "run_h3",
    "run_hx",
    "verify_invariants",
]
