"""The paper's contribution: the decentralized DTM (systems S8–S12).

* :mod:`repro.core.serial` — serial-number generation (drifting site
  clocks, central counter, Lamport clock) and the per-site clock model;
* :mod:`repro.core.intervals` — alive time intervals and the
  intersection rule;
* :mod:`repro.core.agent_log` — the durable Agent log (commands,
  prepare and commit records) resubmission replays from;
* :mod:`repro.core.certifier` — prepare certification (basic and
  extended) and commit certification, per the paper's Appendix;
* :mod:`repro.core.agent` — the 2PC Agent: simulated prepared state,
  alive checks, subtransaction resubmission, binding of bound data;
* :mod:`repro.core.coordinator` — global transaction execution and the
  2PC coordinator;
* :mod:`repro.core.dtm` — the whole multidatabase system wired together
  (Fig. 1 of the paper), with method presets for every baseline.
"""

from repro.core.agent import AgentConfig, TwoPCAgent
from repro.core.certifier import Certifier, CertifierConfig, CommitOrderPolicy
from repro.core.coordinator import (
    Coordinator,
    CoordinatorTimeouts,
    GlobalOutcome,
    GlobalTransactionSpec,
)
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.core.intervals import AliveInterval
from repro.core.serial import (
    CentralCounterSN,
    LamportSN,
    RealTimeClockSN,
    SiteClock,
    SNGenerator,
)

__all__ = [
    "AgentConfig",
    "AliveInterval",
    "CentralCounterSN",
    "Certifier",
    "CertifierConfig",
    "CommitOrderPolicy",
    "Coordinator",
    "CoordinatorTimeouts",
    "GlobalOutcome",
    "GlobalTransactionSpec",
    "LamportSN",
    "MultidatabaseSystem",
    "RealTimeClockSN",
    "SNGenerator",
    "SiteClock",
    "SystemConfig",
    "TwoPCAgent",
]
