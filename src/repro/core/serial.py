"""Serial-number generation (paper Sec. 5.2) and the site clock model.

The commit certification needs a globally unique serial number ``SN(k)``
per global transaction, assigned by its Coordinator "when the
application submits the Commit".  Requirement (2) of the paper: if
``T_x`` precedes ``T_y`` in a local serialization order, then
``SN(x) < SN(y)``.  With SNs drawn at commit-submission time this holds
whenever the SN source is monotone w.r.t. real time across coordinators.

The paper recommends *real-time site clocks expanded with the unique
site identifier*, noting that clock drift "has no influence on the
correctness ... [it] may cause unnecessary aborts, only".  We model
drift explicitly so experiment E9 can sweep it:

    reading(site) = (1 + rate) * simulated_time + offset

Alternative generators (a centralized counter and a Lamport-style
logical clock, both mentioned by the paper as "cumbersome ... in an
autonomous environment") are provided for the ablation benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.errors import ConfigError
from repro.common.ids import SerialNumber
from repro.kernel.events import EventKernel


@dataclass
class SiteClock:
    """A drifting local clock: ``(1 + rate) * now + offset``."""

    site: str
    offset: float = 0.0
    rate: float = 0.0

    def read(self, kernel: EventKernel) -> float:
        return (1.0 + self.rate) * kernel.now + self.offset


class SNGenerator:
    """Interface of serial-number sources."""

    def generate(self, site: str) -> SerialNumber:  # pragma: no cover
        raise NotImplementedError

    def witness(self, site: str, sn: SerialNumber) -> None:
        """Observe a foreign SN (only meaningful for logical clocks)."""


class RealTimeClockSN(SNGenerator):
    """The paper's recommended source: drifting site clock + site id.

    A per-site sequence number keeps SNs unique even when two commits
    fall on the same clock reading at one site; the site id breaks ties
    across sites.
    """

    def __init__(self, kernel: EventKernel, clocks: Dict[str, SiteClock]) -> None:
        self._kernel = kernel
        self._clocks = dict(clocks)
        self._seq: Dict[str, "itertools.count"] = {}

    def add_site(self, clock: SiteClock) -> None:
        self._clocks[clock.site] = clock

    def generate(self, site: str) -> SerialNumber:
        clock = self._clocks.get(site)
        if clock is None:
            raise ConfigError(f"no clock configured for site {site!r}")
        seq = self._seq.setdefault(site, itertools.count())
        return SerialNumber(clock=clock.read(self._kernel), site=site, seq=next(seq))


class CentralCounterSN(SNGenerator):
    """A single global counter — trivially correct, architecturally
    centralized (what the decentralized design avoids)."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def generate(self, site: str) -> SerialNumber:
        return SerialNumber(clock=float(next(self._counter)), site="central", seq=0)


class LamportSN(SNGenerator):
    """A distributed logical clock, max-merged on witnessed SNs.

    Coordinators call :meth:`witness` for every SN that reaches them
    (e.g. riding on 2PC responses), so causally later commits always get
    bigger numbers; concurrent commits are ordered by site id.
    """

    def __init__(self) -> None:
        self._clocks: Dict[str, int] = {}

    def generate(self, site: str) -> SerialNumber:
        value = self._clocks.get(site, 0) + 1
        self._clocks[site] = value
        return SerialNumber(clock=float(value), site=site, seq=0)

    def witness(self, site: str, sn: SerialNumber) -> None:
        current = self._clocks.get(site, 0)
        self._clocks[site] = max(current, int(sn.clock))


def make_sn_generator(
    kind: str,
    kernel: EventKernel,
    clocks: Optional[Dict[str, SiteClock]] = None,
) -> SNGenerator:
    """Factory used by the system builder (``clock``/``counter``/``lamport``)."""
    if kind == "clock":
        return RealTimeClockSN(kernel, clocks or {})
    if kind == "counter":
        return CentralCounterSN()
    if kind == "lamport":
        return LamportSN()
    raise ConfigError(f"unknown SN generator kind {kind!r}")
