"""The 2PC Agent (system S8): simulated prepared state, certification,
alive checks and subtransaction resubmission.

One agent fronts one LTM (paper Fig. 1).  It plays the Participant role
of 2PC towards the Coordinators while talking plain single-phase
transactions to its LDBS:

* **BEGIN/COMMAND** — the agent opens a local subtransaction and relays
  the DML commands, logging each into the Agent log first;
* **PREPARE** — the agent runs the extended + basic prepare
  certification (:class:`~repro.core.certifier.Certifier`), performs the
  alive check, force-writes the prepare record, binds the
  subtransaction's access set as *bound data* in the DLU guard and
  answers READY — or aborts the local subtransaction and answers REFUSE;
* while **prepared** — a periodic alive check discovers unilateral
  aborts (via the UAN notifications) and *resubmits* the logged
  commands as a brand-new local subtransaction, restarting the alive
  interval only once the full resubmission completed;
* **COMMIT** — commit certification gates the local commit so local
  commits happen in global serial-number order; when certification says
  "not yet" the agent re-tries on the commit-certification retry
  timeout (and, optimization, whenever the alive interval table
  changes); a unilaterally aborted incarnation is resubmitted before
  the commit is executed;
* **ROLLBACK** — the local subtransaction is aborted (if it still
  exists) and everything is cleaned up.

The phases ``idle → active → prepared → idle`` match the Participant
states of the paper's Sec. 2.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.common.errors import (
    AgentCrashed,
    RefusalReason,
    SimulationError,
    TransactionAborted,
)
from repro.common.ids import SerialNumber, SubtxnId, TxnId
from repro.core.agent_log import AgentLog
from repro.core.certifier import Certifier
from repro.core.intervals import AliveInterval
from repro.history.model import History
from repro.kernel.events import EventKernel, Timer
from repro.kernel.process import Process, Sleep
from repro.ldbs.commands import Command
from repro.ldbs.dlu import BoundDataGuard
from repro.ldbs.ltm import LocalTransactionManager, LocalTxn, TxnState
from repro.net.messages import Message, MsgType
from repro.net.network import Network
from repro.overload.backoff import ResubmitBackoff
from repro.overload.config import OverloadConfig


@dataclass(frozen=True)
class AgentConfig:
    """Tunables of one 2PC Agent."""

    #: The alive check interval timeout of Appendix A.
    alive_check_interval: float = 50.0
    #: The commit certification retry timeout of Appendix C.
    commit_retry_interval: float = 20.0
    #: Pause between resubmission attempts that themselves failed.
    resubmit_retry_delay: float = 10.0
    #: Send an INQUIRE to the coordinator when a prepared
    #: subtransaction has seen no decision for this long (and repeat at
    #: the same interval).  Resolves the classic 2PC blocking window: a
    #: coordinator killed *before* forcing its DECISION record leaves
    #: the participant prepared forever, holding locks that stall every
    #: later transaction on the same rows.  ``0`` disables the inquiry
    #: (the default — simulator runs keep their exact golden timing).
    decision_inquiry_after: float = 0.0
    #: Re-run pending commit certifications as soon as the alive
    #: interval table changes (in addition to the paper's retry timer).
    eager_commit_retry: bool = True
    #: Certify PREPAREs arriving in the same kernel step as one batch
    #: (one certifier index pass for the whole group, see
    #: :class:`~repro.core.certifier.PrepareBatch`).  Off by default:
    #: deferring the READY/REFUSE replies by one kernel microstep
    #: changes event timing, so the determinism goldens only cover the
    #: sequential path.
    batch_prepares: bool = False
    #: Forget DONE transaction entries once the coordinator has sealed
    #: the global END record (all acks in).  Off by default: with GC a
    #: very late COMMAND/PREPARE straggler is answered from the
    #: no-state path (SITE_UNREACHABLE) instead of the DONE path
    #: (REQUESTED), which feeds differently into circuit breakers.
    gc_done_txns: bool = False


#: Protocol points at which a crash probe can kill the agent, in
#: protocol order.  Each marks a distinct durability window:
#: before the prepare record, after it but before READY, after READY,
#: on COMMIT arrival, after the commit record, after the local commit.
CRASH_POINTS = (
    "pre-prepare",
    "post-prepare",
    "post-ready",
    "post-commit-decision",
    "post-commit-record",
    "post-local-commit",
)


class AgentPhase(enum.Enum):
    """Participant states (paper Sec. 2) as seen by the agent."""

    ACTIVE = "active"
    PREPARED = "prepared"
    DONE = "done"


@dataclass
class _AgentTxn:
    txn: TxnId
    coordinator: str
    local: LocalTxn
    phase: AgentPhase = AgentPhase.ACTIVE
    sn: Optional[SerialNumber] = None
    #: Completion time of the last command or resubmission — the start
    #: of the candidate alive interval at prepare time.
    last_activity: float = 0.0
    #: A unilateral abort of the current incarnation was notified (UAN).
    uan: bool = False
    resubmitting: bool = False
    commit_pending: bool = False
    commit_record_written: bool = False
    #: A local.commit() is outstanding — duplicate COMMIT messages
    #: (coordinator ack-timeout resends) must not issue a second one.
    commit_in_flight: bool = False
    incarnations: int = 1
    resubmissions: int = 0
    alive_timer: Optional[Timer] = None
    retry_timer: Optional[Timer] = None
    #: Absolute deadline carried on BEGIN/COMMAND/PREPARE (overload
    #: layer); expired work is aborted, never prepared.
    deadline: Optional[float] = None
    #: When the subtransaction entered the prepared state (starvation
    #: guard: long-prepared entries retry certification more eagerly).
    prepared_at: float = 0.0
    #: Consecutive failed resubmission attempts (backoff input).
    resubmit_failures: int = 0
    #: When the last decision INQUIRE was sent (throttle).
    last_inquiry_at: float = 0.0
    #: Orphan detector for the *active* window (armed at BEGIN when
    #: inquiries are enabled): a coordinator that dies before sending
    #: PREPARE leaves this entry active forever, its in-place writes
    #: and locks stalling every later transaction on the same rows.
    orphan_timer: Optional[Timer] = None
    #: The GIVEUP escalation was sent (at most once per subtransaction).
    giveup_sent: bool = False
    #: Rebuilt from the WAL by recover(): a duplicate BEGIN for this
    #: entry is an at-least-once redelivery whose ack died with the
    #: previous process, not a protocol violation.
    recovered: bool = False
    #: An eager commit-certification retry is already queued; further
    #: interval-table changes must not queue another (coalescing).
    retry_armed: bool = False


class TwoPCAgent:
    """One site's 2PC Agent with its Certifier."""

    def __init__(
        self,
        site: str,
        kernel: EventKernel,
        network: Network,
        history: History,
        ltm: LocalTransactionManager,
        certifier: Certifier,
        dlu_guard: Optional[BoundDataGuard] = None,
        config: Optional[AgentConfig] = None,
        log: Optional[AgentLog] = None,
        overload: Optional[OverloadConfig] = None,
        overload_seed: int = 0,
    ) -> None:
        self.site = site
        self.address = f"agent:{site}"
        self.kernel = kernel
        self.network = network
        self.history = history
        self.ltm = ltm
        self.certifier = certifier
        self.dlu_guard = dlu_guard
        self.config = config or AgentConfig()
        self.log = log if log is not None else AgentLog(site)
        self._overload = overload
        #: Adaptive resubmission backoff (None → the paper's fixed pause).
        self._backoff: Optional[ResubmitBackoff] = (
            ResubmitBackoff(overload, random.Random(overload_seed))
            if overload is not None
            else None
        )
        self._txns: Dict[TxnId, _AgentTxn] = {}
        #: PREPAREs queued within one kernel step (batch_prepares only).
        self._prepare_queue: List[Message] = []
        self._prepare_flush_armed = False
        #: Crash injection hook: ``probe(point, txn) -> bool``; returning
        #: True kills the agent at that protocol point (see crash()).
        self.crash_probe: Optional[Callable[[str, TxnId], bool]] = None
        self._crashed = False
        #: Bumped on every crash so completions subscribed by a previous
        #: incarnation of the agent process are recognisably stale.
        self._epoch = 0
        # Observers for centralized baselines (CGM needs to see prepared
        # and locally-committed transitions).
        self.on_ready_observers: List[Callable[[TxnId, str], None]] = []
        self.on_local_commit_observers: List[Callable[[TxnId, str], None]] = []
        self.on_finalized_observers: List[Callable[[TxnId, str], None]] = []
        #: Fired on every failed resubmission attempt — the circuit
        #: breakers treat a site that cannot finish a replay as failing.
        self.on_resubmit_failure_observers: List[Callable[[TxnId], None]] = []
        # Counters for the benchmarks.
        self.refusals: Dict[RefusalReason, int] = {}
        #: Largest serial number this site has seen (on any PREPARE or
        #: local commit) — piggybacked on replies so logical-clock SN
        #: generators can stay causally ahead (paper Sec. 5.2's
        #: "logical distributed clock" alternative).
        self.max_seen_sn: Optional[SerialNumber] = None
        self.ready_sent = 0
        self.commits_done = 0
        self.rollbacks_done = 0
        self.resubmissions = 0
        self.resubmit_failures = 0
        self.giveups_sent = 0
        self.inquiries_sent = 0
        self.alive_checks = 0
        self.restarts = 0
        self.crashes = 0
        self.prepare_batches = 0
        #: Duplicate BEGINs dropped for WAL-recovered entries.
        self.begin_redeliveries = 0
        #: DONE entries dropped on the coordinator's END watermark.
        self.done_forgotten = 0
        #: Federation fence: highest shard-ownership epoch seen per
        #: shard (from BEGIN stamps).  A BEGIN claiming an older epoch
        #: comes from a deposed owner and is rejected — only BEGIN,
        #: in-flight 2PC from the old owner must finish for atomicity.
        self._shard_epochs: Dict[int, int] = {}
        #: Transactions whose BEGIN was fenced; their COMMANDs are
        #: failed with WRONG_SHARD instead of SITE_UNREACHABLE.
        self._fenced: Set[TxnId] = set()
        self.fenced_begins = 0
        network.register(self.address, self._on_message)
        ltm.on_unilateral_abort(self._on_uan)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        if self._crashed:
            return  # a dead process receives nothing
        try:
            if msg.type is MsgType.BEGIN:
                self._on_begin(msg)
            elif msg.type is MsgType.COMMAND:
                self._on_command(msg)
            elif msg.type is MsgType.PREPARE:
                self._on_prepare(msg)
            elif msg.type is MsgType.COMMIT:
                self._on_commit(msg)
            elif msg.type is MsgType.ROLLBACK:
                self._on_rollback(msg)
            elif msg.type is MsgType.PING:
                # Failure-detector heartbeat: a live process answers, a
                # crashed one (caught above) stays silent — the silence
                # is the signal.
                self._reply(msg, MsgType.PONG)
            else:
                raise SimulationError(f"agent {self.site} got unexpected {msg}")
        except AgentCrashed:
            # The probe killed the agent mid-handler; the rest of the
            # handler (replies included) never happened.
            pass

    def _probe(self, point: str, txn: TxnId) -> None:
        """Crash here if the injected probe says so."""
        hook = self.crash_probe
        if hook is not None and not self._crashed and hook(point, txn):
            self.crash()
            raise AgentCrashed(self.site, point, txn)

    def _reply(
        self,
        msg: Message,
        type_: MsgType,
        payload=None,
        reason: Optional[RefusalReason] = None,
    ) -> None:
        self.network.send(
            Message(
                type=type_,
                src=self.address,
                dst=msg.src,
                txn=msg.txn,
                payload=payload,
                reason=reason,
                sn=self.max_seen_sn,
            )
        )

    def _note_sn(self, sn: Optional[SerialNumber]) -> None:
        if sn is None:
            return
        if self.max_seen_sn is None or sn > self.max_seen_sn:
            self.max_seen_sn = sn

    # ------------------------------------------------------------------
    # Active state: BEGIN and COMMAND
    # ------------------------------------------------------------------

    def _on_begin(self, msg: Message) -> None:
        if msg.shard is not None and msg.shard_epoch is not None:
            seen = self._shard_epochs.get(msg.shard, 0)
            if msg.shard_epoch < seen:
                # Deposed owner: a later epoch for this shard has been
                # witnessed, so the sender lost a handoff it does not
                # know about yet.  Refuse to open state; the follow-up
                # COMMAND is failed with WRONG_SHARD below.
                self.fenced_begins += 1
                self._fenced.add(msg.txn)
                self.refusals[RefusalReason.WRONG_SHARD] = (
                    self.refusals.get(RefusalReason.WRONG_SHARD, 0) + 1
                )
                return
            self._shard_epochs[msg.shard] = msg.shard_epoch
        existing = self._txns.get(msg.txn)
        if existing is not None:
            if existing.recovered:
                # The pre-crash ack died with the process; the sender
                # redelivered. The WAL already reopened this entry —
                # drop the duplicate so the sender's window drains.
                self.begin_redeliveries += 1
                return
            raise SimulationError(f"duplicate BEGIN for {msg.txn} at {self.site}")
        local = self.ltm.begin(SubtxnId(msg.txn, self.site, 0))
        state = _AgentTxn(
            txn=msg.txn,
            coordinator=msg.src,
            local=local,
            last_activity=self.kernel.now,
            deadline=msg.deadline,
        )
        self._txns[msg.txn] = state
        self.log.open(msg.txn, coordinator=msg.src)
        self._arm_orphan_timer(state)

    def _on_command(self, msg: Message) -> None:
        state = self._txns.get(msg.txn)
        if state is None:
            if msg.txn in self._fenced:
                # The BEGIN was fenced (deposed shard owner): tell the
                # sender why, so it can refresh its shard map instead of
                # treating this site as failed.
                self._reply(
                    msg,
                    MsgType.COMMAND_RESULT,
                    payload=TransactionAborted(
                        RefusalReason.WRONG_SHARD,
                        f"agent {self.site}: BEGIN for {msg.txn} carried a "
                        "stale shard epoch",
                    ),
                )
                return
            # A restart wiped the volatile state (the entry never
            # reached its prepare record): fail the command so the
            # coordinator aborts, exactly like a refused participant.
            self._reply(
                msg,
                MsgType.COMMAND_RESULT,
                payload=TransactionAborted(
                    RefusalReason.SITE_UNREACHABLE,
                    f"agent {self.site} restarted; no state for {msg.txn}",
                ),
            )
            return
        if state.phase is not AgentPhase.ACTIVE:
            # A late COMMAND (the coordinator gave up on this site and
            # rolled back, or the wire reordered around a session
            # reset): the log entry is gone, fail the command instead
            # of executing against a finished transaction.
            self._reply(
                msg,
                MsgType.COMMAND_RESULT,
                payload=TransactionAborted(
                    RefusalReason.REQUESTED,
                    f"{msg.txn} already {state.phase.value} at {self.site}",
                ),
            )
            return
        if msg.deadline is not None:
            state.deadline = msg.deadline
        if state.deadline is not None and self.kernel.now >= state.deadline:
            # Expired work is refused, never executed: under overload
            # the cheapest transaction is the one you stop working on.
            reason = RefusalReason.DEADLINE_EXPIRED
            if state.local.state is TxnState.ACTIVE:
                state.local.abort(reason)
            self.refusals[reason] = self.refusals.get(reason, 0) + 1
            self._reply(
                msg,
                MsgType.COMMAND_RESULT,
                payload=TransactionAborted(
                    reason,
                    f"{msg.txn} past deadline {state.deadline:g} at {self.site}",
                ),
            )
            self._finalize(state)
            return
        command: Command = msg.payload
        self.log.log_command(msg.txn, command)
        completion = state.local.execute(command)
        epoch = self._epoch

        def answer(event) -> None:
            if self._epoch != epoch:
                return  # subscribed by a process incarnation that died
            if event.error is None:
                state.last_activity = self.kernel.now
                self._reply(msg, MsgType.COMMAND_RESULT, payload=event._value)
            else:
                self._reply(msg, MsgType.COMMAND_RESULT, payload=event.error)

        completion.subscribe(answer)

    # ------------------------------------------------------------------
    # PREPARE: extended + basic certification, alive check (Appendix B)
    # ------------------------------------------------------------------

    def _on_prepare(self, msg: Message) -> None:
        if self.config.batch_prepares:
            # Coalesce every PREPARE delivered in this kernel step into
            # one certification batch; the flush runs before time moves,
            # so the candidate intervals are the same either way.
            self._prepare_queue.append(msg)
            if not self._prepare_flush_armed:
                self._prepare_flush_armed = True
                self.kernel.call_soon(self._flush_prepare_batch)
            return
        self._handle_prepare(msg)

    def _flush_prepare_batch(self) -> None:
        self._prepare_flush_armed = False
        queue, self._prepare_queue = self._prepare_queue, []
        if self._crashed or not queue:
            return
        self._refresh_intervals()
        batch = self.certifier.begin_prepare_batch()
        self.prepare_batches += 1
        for msg in queue:
            if self._crashed:
                # A probe killed the agent mid-batch; the survivors are
                # dropped like any message to a dead process.
                return
            try:
                self._handle_prepare(msg, batch=batch)
            except AgentCrashed:
                pass

    def _handle_prepare(self, msg: Message, batch=None) -> None:
        state = self._txns.get(msg.txn)
        if state is None:
            # Restart wiped an un-prepared entry; refuse so the
            # coordinator rolls the global transaction back.
            reason = RefusalReason.SITE_UNREACHABLE
            self.refusals[reason] = self.refusals.get(reason, 0) + 1
            self._reply(
                msg,
                MsgType.REFUSE,
                payload=f"agent {self.site} restarted; no state for {msg.txn}",
                reason=reason,
            )
            return
        if state.phase is AgentPhase.PREPARED:
            # Duplicate PREPARE (resent around a session reset): the
            # durable promise already stands — repeat the vote.
            self._reply(msg, MsgType.READY)
            return
        if state.phase is AgentPhase.DONE:
            # The transaction already finished here (e.g. rolled back
            # after the coordinator gave us up); a late PREPARE gets a
            # consistent, idempotent refusal.
            self._reply(
                msg,
                MsgType.REFUSE,
                payload=f"{msg.txn} already finished at {self.site}",
                reason=RefusalReason.REQUESTED,
            )
            return
        self._probe("pre-prepare", msg.txn)
        if msg.deadline is not None:
            state.deadline = msg.deadline
        if state.deadline is not None and self.kernel.now >= state.deadline:
            # Never enter the prepared state for work that is already
            # too late: a prepared entry blocks the certifier's table
            # until the coordinator decides, and this one can only be
            # aborted anyway.
            self._note_sn(msg.sn)
            self._abort_and_refuse(
                state,
                msg,
                RefusalReason.DEADLINE_EXPIRED,
                f"{msg.txn} past deadline {state.deadline:g} at {self.site}",
            )
            return
        state.sn = msg.sn
        self._note_sn(msg.sn)
        candidate = AliveInterval(state.last_activity, self.kernel.now)
        # Perform an alive check on every prepared subtransaction right
        # now and extend the intervals of the live ones — otherwise "too
        # long a time between alive time checks" would cause unnecessary
        # aborts (paper Sec. 6) and the failure-free zero-abort property
        # would not hold.  (A batch does this once for the whole group.)
        if batch is None:
            self._refresh_intervals()
        access_set = frozenset(self.ltm.access_set_of(state.local.subtxn))
        if batch is not None:
            decision = batch.certify(msg.txn, msg.sn, candidate, access_set=access_set)
        else:
            decision = self.certifier.certify_prepare(
                msg.txn, msg.sn, candidate, access_set=access_set
            )
        if not decision.ok:
            self._abort_and_refuse(state, msg, decision.reason, decision.detail)
            return
        # The alive check: UAN would have told us about any unilateral
        # abort of the current incarnation; commands are all done
        # (coordinators only send PREPARE after the last result).
        alive = not state.uan and self.ltm.is_alive(state.local.subtxn)
        if not alive:
            self._abort_and_refuse(state, msg, RefusalReason.NOT_ALIVE, "")
            return
        if batch is not None:
            batch.admit(msg.txn, msg.sn, candidate, access_set=access_set)
        else:
            self.certifier.insert(msg.txn, msg.sn, candidate, access_set=access_set)
        self.log.write_prepare(msg.txn, msg.sn, self.kernel.now)
        if self.dlu_guard is not None:
            self.dlu_guard.bind(
                msg.txn,
                self.ltm.access_set_of(state.local.subtxn),
                tables=self.ltm.scanned_tables_of(state.local.subtxn),
            )
        self.history.record_prepare(self.kernel.now, msg.txn, self.site, msg.sn)
        state.phase = AgentPhase.PREPARED
        state.prepared_at = self.kernel.now
        # Prepare record is on disk, READY not yet sent: a crash here
        # leaves the coordinator to time the vote out and abort, while
        # the recovered agent re-enters prepared and later obeys the
        # ROLLBACK idempotently.
        self._probe("post-prepare", msg.txn)
        state.alive_timer = Timer(
            self.kernel,
            self.config.alive_check_interval,
            lambda: self._alive_check(state),
        )
        state.alive_timer.start()
        self.ready_sent += 1
        self._reply(msg, MsgType.READY)
        for observer in self.on_ready_observers:
            observer(msg.txn, self.site)
        # READY is out: the durable promise is now binding.
        self._probe("post-ready", msg.txn)

    def _abort_and_refuse(
        self,
        state: _AgentTxn,
        msg: Message,
        reason: Optional[RefusalReason],
        detail: str,
    ) -> None:
        reason = reason or RefusalReason.REQUESTED
        if state.local.state is TxnState.ACTIVE:
            state.local.abort(reason)
        self.refusals[reason] = self.refusals.get(reason, 0) + 1
        self._reply(msg, MsgType.REFUSE, payload=detail, reason=reason)
        self._finalize(state)

    def _refresh_intervals(self) -> None:
        """Alive-check every prepared entry and extend live intervals."""
        for other in self._txns.values():
            if other.phase is not AgentPhase.PREPARED:
                continue
            if other.uan or other.resubmitting:
                continue
            if self.certifier.contains(other.txn):
                self.alive_checks += 1
                self.certifier.extend_interval(other.txn, self.kernel.now)

    # ------------------------------------------------------------------
    # Alive check (Appendix A)
    # ------------------------------------------------------------------

    def _alive_check(self, state: _AgentTxn) -> None:
        if state.phase is not AgentPhase.PREPARED:
            return
        self.alive_checks += 1
        if state.uan:
            # Unilaterally aborted: resubmit commands from the Agent log.
            self._ensure_resubmission(state)
        elif not state.resubmitting:
            # No failure: update the end of the alive time interval.
            self.certifier.extend_interval(state.txn, self.kernel.now)
        self._maybe_inquire(state)
        if state.alive_timer is not None:
            state.alive_timer.restart()

    def _maybe_inquire(self, state: _AgentTxn) -> None:
        """Ask the coordinator for an overdue decision (presumed abort).

        Only prepared entries *without* a known decision inquire —
        ``commit_pending`` means COMMIT already arrived, so the local
        commit is this agent's own job.  The reply is either the logged
        decision (re-driven idempotently) or ROLLBACK when the
        coordinator has never heard of the transaction: the decision
        record is forced before any COMMIT is sent, so an unknown
        transaction can never have committed anywhere.
        """
        after = self.config.decision_inquiry_after
        if after <= 0 or state.commit_pending:
            return
        now = self.kernel.now
        if now - state.prepared_at < after or now - state.last_inquiry_at < after:
            return
        self._send_inquiry(state)

    def _arm_orphan_timer(self, state: _AgentTxn) -> None:
        if self.config.decision_inquiry_after <= 0:
            return
        state.orphan_timer = Timer(
            self.kernel,
            self.config.alive_check_interval,
            lambda: self._orphan_check(state),
        )
        state.orphan_timer.start()

    def _orphan_check(self, state: _AgentTxn) -> None:
        """Inquire for *active* entries whose coordinator went silent.

        The prepared window is covered by the alive-check timer (see
        :meth:`_maybe_inquire`); this timer covers the window before it
        — BEGIN received, commands possibly executed, no PREPARE yet.
        A coordinator killed in that window never speaks again, so the
        entry would otherwise stay active forever with its in-place
        writes visible to the bank invariants and its locks blocking
        every later transaction.  Once the entry leaves the active
        phase the timer retires (prepared entries have their own).
        """
        if state.phase is not AgentPhase.ACTIVE:
            state.orphan_timer = None
            return
        after = self.config.decision_inquiry_after
        now = self.kernel.now
        if (
            now - state.last_activity >= after
            and now - state.last_inquiry_at >= after
        ):
            self._send_inquiry(state)
        if state.orphan_timer is not None:
            state.orphan_timer.restart()

    def _send_inquiry(self, state: _AgentTxn) -> None:
        state.last_inquiry_at = self.kernel.now
        self.inquiries_sent += 1
        self.network.send(
            Message(
                type=MsgType.INQUIRE,
                src=self.address,
                dst=state.coordinator,
                txn=state.txn,
                payload=f"decision overdue at {self.site}",
                sn=self.max_seen_sn,
            )
        )

    # ------------------------------------------------------------------
    # Resubmission
    # ------------------------------------------------------------------

    def _on_uan(self, subtxn: SubtxnId) -> None:
        state = self._txns.get(subtxn.txn)
        if state is None or state.phase is AgentPhase.DONE:
            return
        if state.local.subtxn != subtxn:
            return  # an already-replaced incarnation; nothing to note
        state.uan = True

    def _ensure_resubmission(self, state: _AgentTxn) -> None:
        if state.resubmitting or state.phase is not AgentPhase.PREPARED:
            return
        state.resubmitting = True
        Process(
            self.kernel,
            self._resubmit_body(state),
            name=f"resubmit:{state.txn}@{self.site}",
        )

    def _resubmit_body(self, state: _AgentTxn):
        """Replay the Agent log as a new local subtransaction.

        Retries until an attempt runs to completion (the TW assumption
        guarantees a bounded number of retries suffices; the failure
        injector honours a per-subtransaction abort budget).
        """
        while state.phase is AgentPhase.PREPARED:
            if state.local.state is TxnState.ACTIVE:
                # Never leak a live incarnation (and its locks) when
                # replacing it with a fresh one.
                state.local.abort(RefusalReason.REQUESTED)
            incarnation = SubtxnId(state.txn, self.site, state.incarnations)
            state.incarnations += 1
            self.log.note_resubmission(state.txn)
            local = self.ltm.begin(incarnation)
            state.local = local
            state.uan = False
            try:
                for command in self.log.commands(state.txn):
                    if state.phase is not AgentPhase.PREPARED:
                        local.abort(RefusalReason.REQUESTED)
                        state.resubmitting = False
                        return
                    yield local.execute(command)
            except TransactionAborted:
                # This incarnation died too (injected abort, deadlock
                # timeout...).  The LTM already rolled it back; retry.
                state.resubmit_failures += 1
                self.resubmit_failures += 1
                for observer in self.on_resubmit_failure_observers:
                    observer(state.txn)
                self._maybe_giveup(state)
                yield Sleep(self._resubmit_delay(state))
                continue
            if state.phase is not AgentPhase.PREPARED:
                # A ROLLBACK arrived while the last command was running.
                local.abort(RefusalReason.REQUESTED)
                state.resubmitting = False
                return
            # Resubmission of all the commands is complete: initiate the
            # new alive time interval.
            state.last_activity = self.kernel.now
            state.resubmitting = False
            state.resubmissions += 1
            self.resubmissions += 1
            if self.certifier.contains(state.txn):
                self.certifier.restart_interval(state.txn, self.kernel.now)
            if self.dlu_guard is not None:
                self.dlu_guard.bind(
                    state.txn,
                    self.ltm.access_set_of(incarnation),
                    tables=self.ltm.scanned_tables_of(incarnation),
                )
            state.resubmit_failures = 0
            if state.commit_pending and not state.retry_armed:
                state.retry_armed = True
                self.kernel.call_soon(lambda: self._guarded_try_commit(state))
            return
        state.resubmitting = False

    def _resubmit_delay(self, state: _AgentTxn) -> float:
        """Pause before the next resubmission attempt."""
        if self._backoff is not None:
            return self._backoff.delay(state.resubmit_failures)
        return self.config.resubmit_retry_delay

    def _maybe_giveup(self, state: _AgentTxn) -> None:
        """Escalate an exhausted resubmission budget to the coordinator.

        GIVEUP is strictly advisory — a READY vote cannot be revoked, so
        the agent keeps its prepared state and keeps resubmitting.  The
        coordinator honours the hint only while the global decision is
        still open (it turns into a global abort with
        ``RESUBMIT_BUDGET``); after COMMIT the hint is ignored and the
        resubmission loop must eventually succeed (TW assumption).  Once
        ``commit_pending`` is set the decision is already COMMIT, so the
        hint would be pure noise and is suppressed.
        """
        if self._overload is None or state.giveup_sent:
            return
        if state.commit_pending:
            return
        if state.resubmit_failures <= self._overload.resubmit_budget:
            return
        state.giveup_sent = True
        self.giveups_sent += 1
        self.network.send(
            Message(
                type=MsgType.GIVEUP,
                src=self.address,
                dst=state.coordinator,
                txn=state.txn,
                payload=f"resubmit budget exhausted at {self.site} "
                f"after {state.resubmit_failures} failures",
                sn=self.max_seen_sn,
            )
        )

    # ------------------------------------------------------------------
    # COMMIT: commit certification (Appendix C)
    # ------------------------------------------------------------------

    def _on_commit(self, msg: Message) -> None:
        state = self._txns.get(msg.txn)
        if state is None or state.phase is AgentPhase.DONE:
            # Already committed (possibly by a recovered incarnation that
            # re-acked and discarded): acknowledge idempotently so
            # coordinator resends converge.
            self._reply(msg, MsgType.COMMIT_ACK)
            return
        if state.phase is not AgentPhase.PREPARED:
            raise SimulationError(
                f"COMMIT for {msg.txn} at {self.site} in phase {state.phase}"
            )
        # The global decision has arrived but nothing local happened yet.
        self._probe("post-commit-decision", msg.txn)
        state.commit_pending = True
        self._try_commit(state)

    def _guarded_try_commit(self, state: _AgentTxn) -> None:
        """_try_commit for timer/call_soon contexts: a crash probe firing
        here must not unwind into the kernel."""
        state.retry_armed = False
        try:
            self._try_commit(state)
        except AgentCrashed:
            pass

    def _try_commit(self, state: _AgentTxn) -> None:
        if state.phase is not AgentPhase.PREPARED or not state.commit_pending:
            return
        decision = self.certifier.certify_commit(state.txn)
        if not decision.ok:
            # Commit certification failed: retry at a later time.
            if state.retry_timer is None:
                state.retry_timer = Timer(
                    self.kernel,
                    self.config.commit_retry_interval,
                    lambda: self._guarded_try_commit(state),
                )
            if self._overload is not None:
                # Starvation guard: the longer this entry has sat
                # prepared, the shorter its retry interval — an aged
                # commit certification gets first crack at every newly
                # freed slot instead of losing the race forever.
                age = max(0.0, self.kernel.now - state.prepared_at)
                state.retry_timer.interval = max(
                    self._overload.min_commit_retry,
                    self.config.commit_retry_interval
                    / (1.0 + age / self._overload.commit_retry_halflife),
                )
            state.retry_timer.restart()
            return
        if state.resubmitting:
            return  # the resubmission's completion re-triggers us
        if state.uan or not self.ltm.is_alive(state.local.subtxn):
            # The incarnation is gone; resubmit first, then commit.
            self._ensure_resubmission(state)
            return
        if state.commit_in_flight:
            return  # a duplicate COMMIT; the running local commit answers
        if not state.commit_record_written:
            self.log.write_commit(state.txn, self.kernel.now)
            state.commit_record_written = True
        # The commit record is durable, the local commit not yet issued:
        # recovery resumes the commit from the log.
        self._probe("post-commit-record", state.txn)
        state.commit_in_flight = True
        completion = state.local.commit()
        epoch = self._epoch

        def on_commit(event) -> None:
            if self._epoch != epoch:
                return  # the agent process that issued this commit died
            state.commit_in_flight = False
            try:
                if event.error is None:
                    self._local_commit_done(state)
                else:
                    # A unilateral abort raced the commit and won; resubmit.
                    state.uan = True
                    self._ensure_resubmission(state)
            except AgentCrashed:
                pass

        completion.subscribe(on_commit)

    def _local_commit_done(self, state: _AgentTxn) -> None:
        # The LDBS committed; the COMMIT-ACK is not out yet.  A crash
        # here is the classic committed-but-unacked window: recovery
        # finds commit record + committed local state and just re-acks.
        self._probe("post-local-commit", state.txn)
        self.certifier.record_local_commit(state.txn)
        self.log.record_committed_sn(state.sn)
        self.commits_done += 1
        self.network.send(
            Message(
                type=MsgType.COMMIT_ACK,
                src=self.address,
                dst=state.coordinator,
                txn=state.txn,
            )
        )
        for observer in self.on_local_commit_observers:
            observer(state.txn, self.site)
        self._finalize(state)

    # ------------------------------------------------------------------
    # ROLLBACK
    # ------------------------------------------------------------------

    def _on_rollback(self, msg: Message) -> None:
        state = self._txns.get(msg.txn)
        if state is None or state.phase is AgentPhase.DONE:
            # Already refused / finished; acknowledge idempotently.
            self._reply(msg, MsgType.ROLLBACK_ACK)
            return
        if state.local.state is TxnState.ACTIVE:
            state.local.abort(RefusalReason.REQUESTED)
        elif self.certifier.contains(state.txn):
            # The incarnation already died unilaterally; the ROLLBACK is
            # what ends the *simulated* prepared state, so make the exit
            # visible in the history (the CI checker and the log both
            # need the boundary).
            self.history.record_local_abort(
                self.kernel.now,
                state.local.subtxn,
                self.site,
                unilateral=False,
                reason=RefusalReason.REQUESTED,
            )
        self.rollbacks_done += 1
        self._reply(msg, MsgType.ROLLBACK_ACK)
        self._finalize(state)

    # ------------------------------------------------------------------
    # Cleanup
    # ------------------------------------------------------------------

    def _finalize(self, state: _AgentTxn) -> None:
        was_in_table = self.certifier.contains(state.txn)
        state.phase = AgentPhase.DONE
        state.commit_pending = False
        if state.alive_timer is not None:
            state.alive_timer.cancel()
        if state.retry_timer is not None:
            state.retry_timer.cancel()
        if state.orphan_timer is not None:
            state.orphan_timer.cancel()
            state.orphan_timer = None
        self.certifier.remove(state.txn)
        if self.dlu_guard is not None:
            self.dlu_guard.unbind(state.txn)
        self.log.discard(state.txn)
        for observer in self.on_finalized_observers:
            observer(state.txn, self.site)
        if was_in_table and self.config.eager_commit_retry:
            # The alive interval table shrank: commits blocked on the
            # commit certification may pass now.  Wakeups coalesce: at
            # most one eager retry per subtransaction is ever queued, so
            # a burst of finalizations cannot build a thundering herd of
            # redundant certify_commit calls against the same entry.
            for other in list(self._txns.values()):
                if (
                    other.commit_pending
                    and other.phase is AgentPhase.PREPARED
                    and not other.retry_armed
                ):
                    other.retry_armed = True
                    self.kernel.call_soon(
                        lambda candidate=other: self._guarded_try_commit(candidate)
                    )

    def note_global_end(self, txn: TxnId) -> None:
        """GC watermark: the coordinator sealed the global END record.

        All acks for ``txn`` are in, so no further message about it can
        require this agent's per-transaction state.  With
        ``gc_done_txns`` the DONE entry is dropped (bounding ``_txns``
        under sustained load); without it this is a no-op, preserving
        the default refusal behaviour for late stragglers.  Entries not
        yet DONE are never dropped — a crash-recovered agent may still
        be driving a resumed commit when the watermark arrives.
        """
        self._fenced.discard(txn)
        if not self.config.gc_done_txns:
            return
        state = self._txns.get(txn)
        if state is not None and state.phase is AgentPhase.DONE:
            del self._txns[txn]
            self.done_forgotten += 1

    # ------------------------------------------------------------------
    # Agent restart recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Kill the 2PC Agent process.

        Every volatile structure dies — the transaction table, the
        timers, the certifier's alive interval table.  The LDBS aborts
        the orphaned local subtransactions (a lost connection is a
        unilateral abort from the DTM's view) and the log is closed (a
        durable log's on-disk state is exactly what the dead process
        managed to write).  Until :meth:`recover` runs, incoming
        messages are dropped on the floor.
        """
        if self._crashed:
            return
        self._crashed = True
        self.crashes += 1
        self._epoch += 1
        self._prepare_queue = []
        # Tell the transport the process is gone: a session layer must
        # stop acknowledging deliveries nobody is listening to, so the
        # senders keep retransmitting until recovery.
        self.network.note_endpoint_down(self.address)
        old_states = self._txns
        self._txns = {}
        for state in old_states.values():
            if state.alive_timer is not None:
                state.alive_timer.cancel()
            if state.retry_timer is not None:
                state.retry_timer.cancel()
            state.phase = AgentPhase.DONE  # kills in-flight resubmissions
        # The LDBS rolls orphaned subtransactions back (connection loss).
        for state in old_states.values():
            self.ltm.unilaterally_abort(state.local.subtxn)
        # Volatile certifier state is gone with the process.
        self.certifier = Certifier(self.site, self.certifier.config)
        self.log.close()

    def recover(self, log: Optional[AgentLog] = None) -> int:
        """Restart the crashed agent from its (durable) Agent log.

        This is the scenario the durable Agent log exists for: the
        simulated prepared state must survive the agent itself.  On
        restart:

        * the log is scanned: entries with a prepare record re-enter the
          prepared state (their last known alive interval is the instant
          of the prepare record; the alive check will discover the dead
          incarnation and resubmit), entries with a commit record resume
          the commit (idempotently re-acking if the local commit had
          already happened), and entries still in the active state are
          left to fail their next COMMAND or PREPARE — the coordinator
          then aborts them, exactly as a refused participant would;
        * the certification extension's max-committed-SN register is
          reloaded from its durable home in the log.

        With the in-memory log, pass nothing — the object survives by
        fiat.  With a :class:`~repro.durability.agent_log.DurableAgentLog`,
        pass a freshly re-opened instance (``DurableAgentLog.open_site``)
        — the crashed one is closed and holds only dead file handles.

        Returns the number of recovered (non-final) transactions.
        """
        if not self._crashed:
            # Recovering a live agent would wipe its volatile state and
            # re-insert stale log entries; injectors whose scheduled
            # recovery races an earlier heal must be a no-op here.
            return 0
        if log is not None:
            self.log = log
        self._crashed = False
        self.restarts += 1
        self.network.note_endpoint_up(self.address)
        self.certifier = Certifier(self.site, self.certifier.config)
        self.certifier.restore_max_committed_sn(self.log.max_committed_sn)

        recovered = 0
        for entry in self.log.entries():
            incarnation = SubtxnId(entry.txn, self.site, entry.incarnations - 1)
            local = self.ltm.handle_of(incarnation)
            committed_locally = local.state is TxnState.COMMITTED
            if entry.committed and committed_locally:
                # The crash hit between local commit and COMMIT-ACK:
                # just re-acknowledge.
                self.log.record_committed_sn(entry.prepare_sn)
                self.certifier.restore_max_committed_sn(entry.prepare_sn)
                self.network.send(
                    Message(
                        type=MsgType.COMMIT_ACK,
                        src=self.address,
                        dst=entry.coordinator,
                        txn=entry.txn,
                        sn=self.max_seen_sn,
                    )
                )
                self.log.discard(entry.txn)
                continue
            state = _AgentTxn(
                txn=entry.txn,
                coordinator=entry.coordinator,
                local=local,
                last_activity=self.kernel.now,
                uan=not committed_locally,
                incarnations=entry.incarnations,
                commit_pending=entry.committed,
                commit_record_written=entry.committed,
                sn=entry.prepare_sn,
                recovered=True,
            )
            self._txns[entry.txn] = state
            recovered += 1
            if entry.prepared:
                state.phase = AgentPhase.PREPARED
                state.prepared_at = self.kernel.now
                self.certifier.insert(
                    entry.txn,
                    entry.prepare_sn,
                    AliveInterval.instant(entry.prepare_time),
                )
                state.alive_timer = Timer(
                    self.kernel,
                    self.config.alive_check_interval,
                    lambda s=state: self._alive_check(s),
                )
                state.alive_timer.start()
                if state.commit_pending:
                    state.retry_armed = True
                    self.kernel.call_soon(
                        lambda s=state: self._guarded_try_commit(s)
                    )
            else:
                # Active-state entries stay ACTIVE with a dead
                # incarnation: their next COMMAND or PREPARE fails and
                # the coordinator rolls them back.  If the coordinator
                # died too, that message never comes — the orphan timer
                # inquires and the presumed-abort reply clears the entry.
                self._arm_orphan_timer(state)
        return recovered

    def simulate_restart(self) -> int:
        """Crash and immediately recover (in-memory log convenience)."""
        self.crash()
        return self.recover()

    @property
    def crashed(self) -> bool:
        return self._crashed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _state(self, txn: TxnId) -> _AgentTxn:
        state = self._txns.get(txn)
        if state is None:
            raise SimulationError(f"agent {self.site} has no state for {txn}")
        return state

    def phase_of(self, txn: TxnId) -> Optional[AgentPhase]:
        state = self._txns.get(txn)
        return None if state is None else state.phase

    def current_incarnation(self, txn: TxnId) -> Optional[SubtxnId]:
        state = self._txns.get(txn)
        return None if state is None else state.local.subtxn

    def prepared_txns(self) -> List[TxnId]:
        return self.certifier.prepared_txns()

    def open_txn_count(self) -> int:
        """Entries not yet DONE (active or prepared, decided or not).

        Zero means quiescence: no undecided in-place writes, no held
        locks — the store totals are exactly the committed image.
        """
        return sum(
            1 for s in self._txns.values() if s.phase is not AgentPhase.DONE
        )

    def resubmissions_of(self, txn: TxnId) -> int:
        state = self._txns.get(txn)
        return 0 if state is None else state.resubmissions
