"""The Agent log: the 2PCA's durable record (paper Secs. 2–3).

The 2PC Agent keeps, per global transaction, everything needed to
simulate the prepared state on behalf of a non-2PC LDBS:

* the DML **commands** of the global subtransaction, in submission
  order — resubmission replays exactly these ("a new local
  subtransaction expressed by the same commands as the ones originally
  submitted");
* the **prepare record** (with the serial number), force-written before
  READY is sent — this is the durable promise that makes the simulated
  prepared state survive;
* the **commit record**, written when commit certification succeeds and
  the local commit is issued.

Durability is simulated: "force writes" are counted (so benchmarks can
report the I/O the method would cost) and entries survive until
explicitly discarded at transaction end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.common.ids import SerialNumber, TxnId
from repro.ldbs.commands import Command


@dataclass
class AgentLogEntry:
    """Everything logged for one global transaction at one site."""

    txn: TxnId
    #: The coordinator address to answer after a recovery.
    coordinator: str = ""
    commands: List[Command] = field(default_factory=list)
    prepare_sn: Optional[SerialNumber] = None
    prepare_time: Optional[float] = None
    commit_time: Optional[float] = None
    #: Incarnations started so far — persisted so a recovered agent
    #: never reuses an incarnation id.
    incarnations: int = 1

    @property
    def prepared(self) -> bool:
        return self.prepare_time is not None

    @property
    def committed(self) -> bool:
        return self.commit_time is not None


class AgentLog:
    """Per-site durable log of the 2PC Agent."""

    def __init__(self, site: str) -> None:
        self.site = site
        self._entries: Dict[TxnId, AgentLogEntry] = {}
        self.force_writes = 0
        #: Per-kind breakdown of the log I/O the method costs: forced
        #: prepare and commit records plus entry discards at txn end.
        self.force_writes_by_kind: Dict[str, int] = {
            "prepare": 0,
            "commit": 0,
            "discard": 0,
        }
        #: Durable site-level register: the biggest serial number of a
        #: locally committed subtransaction.  The certification
        #: extension needs it to survive an agent restart.
        self.max_committed_sn: Optional[SerialNumber] = None

    def open(self, txn: TxnId, coordinator: str = "") -> AgentLogEntry:
        if txn in self._entries:
            raise SimulationError(f"agent log entry for {txn} already open at {self.site}")
        entry = AgentLogEntry(txn=txn, coordinator=coordinator)
        self._entries[txn] = entry
        return entry

    def entry(self, txn: TxnId) -> AgentLogEntry:
        entry = self._entries.get(txn)
        if entry is None:
            raise SimulationError(f"no agent log entry for {txn} at {self.site}")
        return entry

    def has_entry(self, txn: TxnId) -> bool:
        return txn in self._entries

    def log_command(self, txn: TxnId, command: Command) -> None:
        """Append one DML command (logged before submission to the LTM)."""
        self.entry(txn).commands.append(command)

    def commands(self, txn: TxnId) -> List[Command]:
        """The replay sequence for resubmission."""
        return list(self.entry(txn).commands)

    def write_prepare(self, txn: TxnId, sn: Optional[SerialNumber], time: float) -> None:
        """Force-write the prepare record (the READY promise)."""
        entry = self.entry(txn)
        if entry.prepared:
            raise SimulationError(f"{txn} already prepared at {self.site}")
        entry.prepare_sn = sn
        entry.prepare_time = time
        self.force_writes += 1
        self.force_writes_by_kind["prepare"] += 1

    def write_commit(self, txn: TxnId, time: float) -> None:
        """Force-write the commit record."""
        entry = self.entry(txn)
        if entry.committed:
            raise SimulationError(f"{txn} already has a commit record at {self.site}")
        entry.commit_time = time
        self.force_writes += 1
        self.force_writes_by_kind["commit"] += 1

    def note_resubmission(self, txn: TxnId) -> None:
        """Persist that another incarnation was started."""
        self.entry(txn).incarnations += 1

    def record_committed_sn(self, sn: Optional[SerialNumber]) -> None:
        """Advance the durable max-committed-SN register."""
        if sn is None:
            return
        if self.max_committed_sn is None or sn > self.max_committed_sn:
            self.max_committed_sn = sn

    def discard(self, txn: TxnId) -> None:
        """Drop the entry once the transaction reached a final state."""
        if self._entries.pop(txn, None) is not None:
            self.force_writes_by_kind["discard"] += 1

    def close(self) -> None:
        """Release durable resources; the in-memory log has none."""

    def open_entries(self) -> List[TxnId]:
        return sorted(self._entries)

    def entries(self) -> List[AgentLogEntry]:
        """All open entries, in deterministic order (recovery scan)."""
        return [self._entries[txn] for txn in sorted(self._entries)]
