"""The multidatabase system façade (system S12; the paper's Fig. 1).

``MultidatabaseSystem.build`` wires one complete HMDBS:

* per site: a :class:`~repro.ldbs.ltm.LocalTransactionManager`, its
  :class:`~repro.ldbs.dlu.BoundDataGuard`, a
  :class:`~repro.core.certifier.Certifier` and a
  :class:`~repro.core.agent.TwoPCAgent`;
* a set of :class:`~repro.core.coordinator.Coordinator` instances, each
  with a (possibly drifting) site clock;
* the :class:`~repro.net.network.Network` and the shared
  :class:`~repro.history.model.History` recorder.

The ``method`` string selects the transaction-management method:

======================  ====================================================
``2cm``                 the paper's full 2PC-Agent Certifier method
``2cm-noext``           without the prepare-certification extension (E5)
``2cm-nocommitcert``    without commit certification (shows H2/H3 anomalies)
``2cm-prepare-order``   commit order = prepared order, the rejected
                        alternative of Sec. 5.2/5.3 (fails on H3)
``2cm-conflict-aware``  UNSOUND predicate-style basic certification
                        (refuse only on direct access-set conflicts);
                        blind to indirect conflicts via locals (E17)
``naive``               resubmission without any certification (S18)
``ticket``              predefined total order: SN drawn at BEGIN from a
                        central counter (S19, Elmagarmid/Du-style)
``cgm``                 the Commit Graph Method baseline (S17): global
                        table-granularity S2PL + commit-graph admission
======================  ====================================================
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError, RefusalReason, TransactionAborted
from repro.common.ids import SubtxnId, TxnId, local_txn
from repro.core.agent import AgentConfig, TwoPCAgent
from repro.core.certifier import Certifier, CertifierConfig, CommitOrderPolicy
from repro.core.coordinator import (
    Coordinator,
    CoordinatorTimeouts,
    GlobalTransactionSpec,
    Scheduler,
)

if TYPE_CHECKING:
    from repro.durability.config import DurabilityConfig
from repro.core.serial import SiteClock, make_sn_generator
from repro.federation.leases import LeasedSN, SnAllocator, open_allocator
from repro.federation.shard import FederationConfig, ShardMap
from repro.history.model import History
from repro.kernel.events import Event, EventKernel
from repro.kernel.process import Process, Sleep
from repro.ldbs.commands import Command
from repro.ldbs.dlu import BoundDataGuard, DLUPolicy
from repro.ldbs.ltm import LTMConfig, LocalTransactionManager
from repro.net.failure_detector import FailureDetector, FailureDetectorConfig
from repro.net.faults import FaultPlan, FaultyNetwork
from repro.net.network import LatencyModel, Network
from repro.net.reliable import ReliableConfig, SessionLayer
from repro.overload.admission import AdmissionController
from repro.overload.breaker import BreakerRegistry
from repro.overload.config import OverloadConfig

METHODS = (
    "2cm",
    "2cm-noext",
    "2cm-nocommitcert",
    "2cm-prepare-order",
    "2cm-conflict-aware",
    "naive",
    "ticket",
    "cgm",
)


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one multidatabase system."""

    sites: Tuple[str, ...] = ("a", "b")
    n_coordinators: int = 1
    method: str = "2cm"
    seed: int = 0
    latency: LatencyModel = field(default_factory=LatencyModel)
    ltm: LTMConfig = field(default_factory=LTMConfig)
    agent: AgentConfig = field(default_factory=AgentConfig)
    #: Heterogeneity (the paper's D-autonomy): per-site overrides of the
    #: LDBS characteristics — the HERMES prototype federated an INGRES
    #: and a Sybase SQL Server, which did not behave alike.  Sites not
    #: listed use the defaults above.
    ltm_overrides: Dict[str, LTMConfig] = field(default_factory=dict)
    agent_overrides: Dict[str, AgentConfig] = field(default_factory=dict)
    dlu_policy: DLUPolicy = DLUPolicy.ABORT
    dlu_wait_timeout: Optional[float] = 200.0
    #: ``clock`` (the paper's choice), ``counter`` or ``lamport``.
    sn_source: str = "clock"
    #: Per-coordinator-site clock offsets (drift, experiment E9).
    clock_offsets: Dict[str, float] = field(default_factory=dict)
    clock_rates: Dict[str, float] = field(default_factory=dict)
    #: CGM baseline: lock-wait / commit-graph-admission timeout.
    cgm_timeout: float = 400.0
    #: CGM baseline: the globally-updatable table set.  When non-empty,
    #: CGM's data-partition rules are enforced (globals update only
    #: these tables and may not read others once they update; locals
    #: may not update these tables).  Empty = partitioning off.
    cgm_gu_tables: Tuple[str, ...] = ()
    #: Alive intervals remembered per prepared subtransaction (the
    #: paper's "several of them might be stored" optimization; 1 = the
    #: paper's easiest implementation).
    max_intervals: int = 1
    #: Certification engine at every site: ``naive`` (the Appendix
    #: linear scan, the differential oracle and golden default) or
    #: ``indexed`` (endpoint/SN heaps with epoch GC, O(log n)/check).
    #: Both produce identical decisions; ``indexed`` is also
    #: event-for-event identical because certification is synchronous.
    certifier_engine: str = "naive"
    #: Opt into real on-disk WALs for the Agent logs and the
    #: coordinators' decision logs (None = in-memory simulation, the
    #: deterministic-golden default).
    durability: Optional["DurabilityConfig"] = None
    #: Opt-in liveness bounds for crash-injection runs (all None =
    #: wait forever, the failure-free default).
    coordinator_timeouts: Optional[CoordinatorTimeouts] = None
    #: Opt into an unreliable wire (loss/duplication/spikes/partitions).
    #: ``None`` keeps the paper's perfect transport — and the goldens.
    faults: Optional[FaultPlan] = None
    #: Opt into the reliable-channel session layer between the protocol
    #: endpoints and the wire (sequence numbers, acks, retransmission).
    reliable: Optional[ReliableConfig] = None
    #: Opt into the heartbeat failure detector; suspected sites are
    #: quarantined at every coordinator (new globals refused, not hung).
    failure_detector: Optional[FailureDetectorConfig] = None
    #: Opt into the overload-survival layer: admission control with load
    #: shedding, deadline propagation, adaptive resubmission backoff
    #: with GIVEUP escalation, and per-site circuit breakers.  ``None``
    #: keeps the paper's unprotected behaviour — and the goldens.
    overload: Optional[OverloadConfig] = None
    #: Opt into the sharded federation: BEGINs route by key hash to the
    #: owning coordinator, SNs come from leased ranges instead of the
    #: shared generator, and shards can be handed off live.  ``None``
    #: (the default) keeps the single-SN-source behaviour — and the
    #: goldens — even with ``n_coordinators > 1``.
    federation: Optional[FederationConfig] = None
    #: Test-harness hook: build the transport yourself.  Called as
    #: ``factory(kernel, config)`` and must return a
    #: :class:`~repro.net.network.Network` (or subclass); overrides
    #: ``faults``.  The schedule explorer uses this to route every
    #: fault decision through the kernel's choice points.  ``None`` —
    #: the default — keeps the stock wiring and the goldens.
    network_factory: Optional[Callable[[EventKernel, "SystemConfig"], "Network"]] = None

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ConfigError(
                f"unknown method {self.method!r}; pick one of {METHODS}"
            )
        if len(set(self.sites)) != len(self.sites):
            raise ConfigError("duplicate site names")
        if self.n_coordinators < 1:
            raise ConfigError("need at least one coordinator")
        if self.certifier_engine not in ("naive", "indexed"):
            raise ConfigError(
                f"unknown certifier engine {self.certifier_engine!r}; "
                "pick 'naive' or 'indexed'"
            )
        for overrides in (self.ltm_overrides, self.agent_overrides):
            unknown = set(overrides) - set(self.sites)
            if unknown:
                raise ConfigError(
                    f"overrides for unknown sites: {sorted(unknown)}"
                )


@dataclass
class LocalOutcome:
    """What happened to one local transaction."""

    txn: TxnId
    committed: bool
    reason: Optional[RefusalReason] = None
    started_at: float = 0.0
    finished_at: float = 0.0
    results: List[object] = field(default_factory=list)


def certifier_config_for(method: str) -> CertifierConfig:
    """The certifier feature set of each method preset."""
    if method == "2cm":
        return CertifierConfig()
    if method == "2cm-noext":
        return CertifierConfig(prepare_extension=False)
    if method == "2cm-nocommitcert":
        return CertifierConfig(commit_certification=False)
    if method == "2cm-prepare-order":
        return CertifierConfig(
            prepare_extension=False,
            commit_order=CommitOrderPolicy.PREPARE_ORDER,
        )
    if method == "2cm-conflict-aware":
        # The UNSOUND predicate-style variant (E17 ablation): only
        # refuse disjoint intervals when access sets directly intersect.
        return CertifierConfig(conflict_aware_basic=True)
    if method == "naive":
        return CertifierConfig.naive()
    if method == "ticket":
        return CertifierConfig()
    if method == "cgm":
        return CertifierConfig.naive()
    raise ConfigError(f"unknown method {method!r}")


class MultidatabaseSystem:
    """One fully wired HMDBS plus submission and inspection helpers."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.kernel = EventKernel()
        self.history = History()
        if config.network_factory is not None:
            self.network = config.network_factory(self.kernel, config)
        elif config.faults is not None:
            self.network: Network = FaultyNetwork(
                self.kernel,
                latency=config.latency,
                seed=config.seed,
                plan=config.faults,
            )
        else:
            self.network = Network(
                self.kernel, latency=config.latency, seed=config.seed
            )
        #: The endpoint-facing transport: the session layer when the
        #: reliable channel is enabled, the raw network otherwise.
        self.session: Optional[SessionLayer] = None
        if config.reliable is not None:
            self.session = SessionLayer(
                self.kernel, self.network, config.reliable
            )
        self.transport = self.session if self.session is not None else self.network
        #: Shared per-site circuit breakers (overload layer); every
        #: coordinator and feedback source uses this one registry.
        self.breakers: Optional[BreakerRegistry] = None
        if config.overload is not None and config.overload.breaker is not None:
            self.breakers = BreakerRegistry(config.overload.breaker)
            if self.session is not None:

                def _dead_letter_feedback(message, _why: str) -> None:
                    # A channel whose retry budget died towards a site's
                    # agent is breaker food; coordinator-bound replies
                    # say nothing about a *site* being sick.
                    if message.dst.startswith("agent:"):
                        self.breakers.record_failure(
                            message.dst.split(":", 1)[-1], self.kernel.now
                        )

                self.session.on_dead_letter = _dead_letter_feedback
        self.ltms: Dict[str, LocalTransactionManager] = {}
        self.guards: Dict[str, BoundDataGuard] = {}
        self.certifiers: Dict[str, Certifier] = {}
        self.agents: Dict[str, TwoPCAgent] = {}

        cert_config = replace(
            certifier_config_for(config.method),
            max_intervals=config.max_intervals,
            engine=config.certifier_engine,
        )
        if config.federation is not None:
            # Overlapping lease grants would surface as two live entries
            # sharing one SN — make that impossible to miss.
            cert_config = replace(cert_config, assert_unique_sns=True)
        static_denied = (
            frozenset(config.cgm_gu_tables)
            if config.method == "cgm"
            else frozenset()
        )
        for site in config.sites:
            guard = BoundDataGuard(
                self.kernel,
                policy=config.dlu_policy,
                wait_timeout=config.dlu_wait_timeout,
                statically_denied_tables=static_denied,
            )
            ltm = LocalTransactionManager(
                site,
                self.kernel,
                self.history,
                config=config.ltm_overrides.get(site, config.ltm),
                dlu_guard=guard,
            )
            certifier = Certifier(site, cert_config)
            agent_log = None
            if config.durability is not None:
                from repro.durability.agent_log import DurableAgentLog

                agent_log = DurableAgentLog.open_site(site, config.durability)
            agent = TwoPCAgent(
                site,
                self.kernel,
                self.transport,
                self.history,
                ltm,
                certifier,
                dlu_guard=guard,
                config=config.agent_overrides.get(site, config.agent),
                log=agent_log,
                overload=config.overload,
                overload_seed=config.seed ^ zlib.crc32(site.encode()),
            )
            if self.breakers is not None:
                agent.on_resubmit_failure_observers.append(
                    lambda _txn, s=site: self.breakers.record_failure(
                        s, self.kernel.now
                    )
                )
            self.guards[site] = guard
            self.ltms[site] = ltm
            self.certifiers[site] = certifier
            self.agents[site] = agent

        sn_source = "counter" if config.method == "ticket" else config.sn_source
        clocks = {}
        coordinator_sites = [
            f"c{i + 1}" for i in range(config.n_coordinators)
        ]
        for coord_site in coordinator_sites:
            clocks[coord_site] = SiteClock(
                coord_site,
                offset=config.clock_offsets.get(coord_site, 0.0),
                rate=config.clock_rates.get(coord_site, 0.0),
            )
        self.sn_generator = make_sn_generator(sn_source, self.kernel, clocks)

        #: Federation state (all ``None``/empty when not federated).
        self.shard_map: Optional[ShardMap] = None
        self.sn_allocator: Optional[SnAllocator] = None
        self.handoffs = 0
        self.forced_handoffs = 0
        self.handoff_durations: List[float] = []
        self.wrong_shard_forwarded = 0
        if config.federation is not None:
            self.shard_map = ShardMap.initial(
                config.federation.n_shards, coordinator_sites
            )
            if config.durability is not None:
                self.sn_allocator = open_allocator(
                    config.durability,
                    clock=lambda: self.kernel.now,
                    span=config.federation.lease_span,
                )
            else:
                self.sn_allocator = SnAllocator(
                    clock=lambda: self.kernel.now,
                    span=config.federation.lease_span,
                )

        scheduler: Optional[Scheduler] = None
        if config.method == "cgm":
            from repro.baselines.cgm import CGMPartition, CGMScheduler

            partition = (
                CGMPartition.of(*config.cgm_gu_tables)
                if config.cgm_gu_tables
                else None
            )
            scheduler = CGMScheduler(
                self.kernel, timeout=config.cgm_timeout, partition=partition
            )
            for agent in self.agents.values():
                agent.on_ready_observers.append(scheduler.note_prepared)
                agent.on_finalized_observers.append(scheduler.note_finalized)
        self.scheduler = scheduler

        self.coordinators: List[Coordinator] = []
        for coord_site in coordinator_sites:
            decision_log = None
            if config.durability is not None:
                from repro.durability.decision_log import DurableDecisionLog

                decision_log = DurableDecisionLog.open_name(
                    coord_site, config.durability
                )
            admission = None
            if config.overload is not None:
                admission = AdmissionController(
                    config.overload,
                    seed=config.seed ^ zlib.crc32(coord_site.encode()) ^ 0xAD51,
                )
            sn_generator = self.sn_generator
            if self.shard_map is not None:
                # Federated: each coordinator mints from its own leased
                # ranges.  Every accepted lease is force-logged into the
                # coordinator's decision log (when durable) before the
                # first draw, so a restarted coordinator knows its
                # consumed high-water mark.
                sn_generator = LeasedSN(
                    coord_site,
                    request_lease=self._make_lease_request(
                        coord_site, decision_log
                    ),
                    clock=lambda: self.kernel.now,
                )
            self.coordinators.append(
                Coordinator(
                    name=coord_site,
                    site=coord_site,
                    kernel=self.kernel,
                    network=self.transport,
                    history=self.history,
                    sn_generator=sn_generator,
                    sn_at_begin=(config.method == "ticket"),
                    scheduler=scheduler,
                    timeouts=config.coordinator_timeouts,
                    decision_log=decision_log,
                    overload=config.overload,
                    admission=admission,
                    breakers=self.breakers,
                    shard_map=self.shard_map,
                )
            )
        # GC watermark plumbing: a sealed global END record means every
        # ack is in, so agents may forget the transaction (only acted on
        # when AgentConfig.gc_done_txns is set).
        def _note_global_end(txn: TxnId) -> None:
            for agent in self.agents.values():
                agent.note_global_end(txn)

        for coordinator in self.coordinators:
            coordinator.on_end_observers.append(_note_global_end)

        self.failure_detector: Optional[FailureDetector] = None
        if config.failure_detector is not None:

            def _suspect(address: str) -> None:
                site = address.split(":", 1)[-1]
                for coordinator in self.coordinators:
                    coordinator.quarantine(site)

            def _restore(address: str) -> None:
                site = address.split(":", 1)[-1]
                for coordinator in self.coordinators:
                    coordinator.unquarantine(site)

            self.failure_detector = FailureDetector(
                self.kernel,
                self.transport,
                "fd:main",
                config.failure_detector,
                on_suspect=_suspect,
                on_restore=_restore,
            )
            for site in config.sites:
                self.failure_detector.watch(f"agent:{site}")
            self.failure_detector.start()

        self._next_coordinator = 0
        self._local_counter = 0
        self._coordinator_index = {
            c.name: i for i, c in enumerate(self.coordinators)
        }

    def _make_lease_request(self, name: str, decision_log):
        def request():
            lease = self.sn_allocator.grant(name)
            if decision_log is not None:
                decision_log.log_lease(lease.lo, lease.hi)
            return lease

        return request

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, method: str = "2cm", sites: Sequence[str] = ("a", "b"), **kwargs):
        """Convenience constructor: ``build("2cm", sites=("a", "b"), ...)``."""
        return cls(SystemConfig(sites=tuple(sites), method=method, **kwargs))

    def load(self, site: str, table: str, rows: Dict) -> None:
        """Install initial rows at one site."""
        self.ltm(site).store.load(table, rows)

    # ------------------------------------------------------------------
    # Component access
    # ------------------------------------------------------------------

    def ltm(self, site: str) -> LocalTransactionManager:
        if site not in self.ltms:
            raise ConfigError(f"unknown site {site!r}")
        return self.ltms[site]

    def agent(self, site: str) -> TwoPCAgent:
        return self.agents[site]

    def certifier(self, site: str) -> Certifier:
        # Through the agent: a recovered agent rebuilds its certifier.
        return self.agents[site].certifier

    def coordinator(self, index: int = 0) -> Coordinator:
        return self.coordinators[index]

    # ------------------------------------------------------------------
    # Crash / recovery (durability subsystem)
    # ------------------------------------------------------------------

    def crash_agent(self, site: str) -> None:
        """Kill one site's 2PC Agent (see :meth:`TwoPCAgent.crash`)."""
        self.agents[site].crash()

    def recover_agent(self, site: str) -> int:
        """Restart a crashed agent.

        With durability configured, the Agent log is re-opened from
        disk — the crash-recovery path the subsystem exists for; with
        the in-memory log, the surviving object is reused (durable by
        fiat, the paper's simulation stance).
        """
        agent = self.agents[site]
        if not agent.crashed:
            return 0  # a racing injector already healed it; no-op
        log = None
        if self.config.durability is not None:
            from repro.durability.agent_log import DurableAgentLog

            log = DurableAgentLog.open_site(site, self.config.durability)
        return agent.recover(log)

    def close(self) -> None:
        """Close every durable log (drains group-commit windows)."""
        if self.failure_detector is not None:
            self.failure_detector.stop()
        for agent in self.agents.values():
            agent.log.close()
        for coordinator in self.coordinators:
            if coordinator.decision_log is not None:
                coordinator.decision_log.close()
        if self.sn_allocator is not None:
            self.sn_allocator.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, spec: GlobalTransactionSpec, coordinator: Optional[int] = None
    ) -> Event:
        """Submit a global transaction.

        Unfederated: round-robin over coordinators (the historical
        behaviour).  Federated: routed to the owner of the
        transaction's shard; a WRONG_SHARD refusal (lost a race with a
        concurrent handoff) is forwarded to the redirect hint a bounded
        number of times.  An explicit ``coordinator`` index always goes
        straight there, un-forwarded — tests use it to observe raw
        refusals.
        """
        for site, _command in spec.steps:
            if site not in self.ltms:
                raise ConfigError(f"{spec.txn} references unknown site {site!r}")
        if coordinator is not None:
            return self.coordinators[coordinator].submit(spec)
        if self.shard_map is not None:
            return Process(
                self.kernel,
                self._submit_routed(spec),
                name=f"route:{spec.txn}",
            ).completion
        coordinator = self._next_coordinator
        self._next_coordinator = (
            self._next_coordinator + 1
        ) % len(self.coordinators)
        return self.coordinators[coordinator].submit(spec)

    def _submit_routed(self, spec: GlobalTransactionSpec):
        target = self.shard_map.owner_of(spec.txn)
        for _hop in range(4):
            index = self._coordinator_index[target]
            outcome = yield self.coordinators[index].submit(spec)
            if (
                outcome.committed
                or outcome.reason is not RefusalReason.WRONG_SHARD
                or outcome.redirect is None
                or outcome.redirect == target
            ):
                return outcome
            self.wrong_shard_forwarded += 1
            target = outcome.redirect
        return outcome

    def submit_program(
        self,
        txn: TxnId,
        program,
        coordinator: Optional[int] = None,
        think_time: float = 0.0,
    ) -> Event:
        """Submit an interactive application program (see
        :meth:`repro.core.coordinator.Coordinator.submit_program`)."""
        if coordinator is None:
            coordinator = self._next_coordinator
            self._next_coordinator = (
                self._next_coordinator + 1
            ) % len(self.coordinators)
        return self.coordinators[coordinator].submit_program(
            txn, program, think_time=think_time
        )

    def submit_local(
        self,
        site: str,
        commands: Sequence[Command],
        number: Optional[int] = None,
        think_time: float = 0.0,
    ) -> Event:
        """Run a local transaction directly against one LTM.

        Local transactions are invisible to the DTM (the paper's model);
        they exist so experiments can produce indirect conflicts and
        local view distortions.
        """
        if number is None:
            self._local_counter += 1
            number = 9000 + self._local_counter
        txn = local_txn(number, site)
        ltm = self.ltm(site)

        def body():
            outcome = LocalOutcome(
                txn=txn, committed=False, started_at=self.kernel.now
            )
            handle = ltm.begin(SubtxnId(txn, site, 0))
            try:
                for command in commands:
                    result = yield handle.execute(command)
                    outcome.results.append(result)
                    if think_time > 0:
                        yield Sleep(think_time)
                yield handle.commit()
            except TransactionAborted as exc:
                outcome.reason = exc.reason
                outcome.finished_at = self.kernel.now
                return outcome
            outcome.committed = True
            outcome.finished_at = self.kernel.now
            return outcome

        return Process(self.kernel, body(), name=f"local:{txn}").completion

    # ------------------------------------------------------------------
    # Federation: live shard handoff
    # ------------------------------------------------------------------

    #: Drain-poll period during a handoff (simulated seconds).
    HANDOFF_POLL = 0.25

    def handoff(self, shard: int, to: str) -> Event:
        """Migrate ownership of ``shard`` to coordinator ``to``, live.

        Three phases, run as a kernel process while traffic flows:

        1. **Drain** — the current owner stops accepting new globals for
           the shard (refusing with WRONG_SHARD + a redirect to ``to``)
           and its in-flight ones are awaited, bounded by
           ``FederationConfig.drain_timeout``;
        2. **Epoch bump** — the shared map reassigns the shard and bumps
           its epoch; the new owner force-logs the adoption;
        3. **Release** — the old owner drops its drain mark.

        A drain that times out is *forced*: the epoch fence makes it
        safe (any BEGIN the deposed owner still emits is rejected by
        agents that saw the new epoch), at worst costing those stragglers
        an abort.  Yields a summary dict.
        """
        if self.shard_map is None:
            raise ConfigError("handoff requires a federated system")
        if to not in self._coordinator_index:
            raise ConfigError(f"unknown coordinator {to!r}")
        source_name = self.shard_map.owner(shard)
        source = self.coordinators[self._coordinator_index[source_name]]
        target = self.coordinators[self._coordinator_index[to]]

        def body():
            started = self.kernel.now
            forced = False
            if source_name != to:
                source.begin_drain(shard, successor=to)
                deadline = (
                    self.kernel.now + self.config.federation.drain_timeout
                )
                while source.shard_inflight(shard) > 0:
                    if self.kernel.now >= deadline:
                        forced = True
                        break
                    yield Sleep(self.HANDOFF_POLL)
                epoch = self.shard_map.reassign(shard, to)
                target.adopt_shard(shard, epoch)
                source.end_drain(shard)
            else:
                epoch = self.shard_map.epoch(shard)
            duration = self.kernel.now - started
            self.handoffs += 1
            if forced:
                self.forced_handoffs += 1
            self.handoff_durations.append(duration)
            return {
                "shard": shard,
                "from": source_name,
                "to": to,
                "epoch": epoch,
                "forced": forced,
                "duration": duration,
            }

        return Process(
            self.kernel, body(), name=f"handoff:{shard}->{to}"
        ).completion

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        advance: bool = True,
    ):
        """Drain the kernel (optionally bounded)."""
        return self.kernel.run(until=until, max_events=max_events, advance=advance)

    @property
    def now(self) -> float:
        return self.kernel.now
