"""The 2PCA Certifier (the paper's Appendix, algorithms B and C).

The Certifier is the per-site decision core of the method.  It keeps:

* the **alive interval table** — one entry per global subtransaction in
  the prepared state at this site, holding its latest alive interval
  and its serial number;
* the **largest serial number of a locally committed subtransaction** —
  the state behind the prepare-certification *extension* (Sec. 5.3);
* the order in which subtransactions entered the prepared state — used
  only by the ``PREPARE_ORDER`` commit-order policy, the alternative the
  paper examines and rejects (it fails on indirect conflicts, history
  H3), kept for the E4 experiment.

Every check is a pure decision; the surrounding 2PC Agent performs the
aborts, messages and timer manipulation the Appendix pseudo-code
interleaves with them.  All checks are individually switchable so the
baselines (naive resubmission, no-extension, no-commit-certification)
are the same code with features off.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import RefusalReason, SimulationError
from repro.common.ids import SerialNumber, TxnId
from repro.core.intervals import AliveInterval


class CommitOrderPolicy(enum.Enum):
    """How commit certification orders local commits."""

    #: The paper's choice: globally unique serial numbers.
    SERIAL_NUMBER = "sn"
    #: The rejected alternative: order of entering the prepared state.
    PREPARE_ORDER = "prepare-order"


@dataclass(frozen=True)
class CertifierConfig:
    """Feature switches of one site's certifier."""

    #: Basic prepare certification — the alive-interval intersection rule.
    basic_prepare: bool = True
    #: Extended prepare certification — refuse an out-of-order PREPARE.
    prepare_extension: bool = True
    #: Commit certification — issue local commits in global order.
    commit_certification: bool = True
    commit_order: CommitOrderPolicy = CommitOrderPolicy.SERIAL_NUMBER
    #: How many alive intervals to remember per prepared subtransaction.
    #: The paper: "The easiest way to implement the Certifier is to
    #: simply store the last alive time interval ...  As an
    #: optimization, several of them might be stored."  With more than
    #: one, a candidate only needs to intersect *some* remembered alive
    #: interval of each entry — strictly fewer unnecessary refusals.
    max_intervals: int = 1
    #: UNSOUND variant kept for the E17 ablation: only refuse a
    #: disjoint-interval candidate when its access set *directly*
    #: intersects the prepared entry's (the predicate/command-knowledge
    #: approach of the authors' earlier 2PC-Agent paper).  It cannot see
    #: indirect conflicts through local transactions — which is exactly
    #: why the paper's rule is conflict-blind (Conflict Detection Basis
    #: covers "neither directly nor indirectly conflicting").
    conflict_aware_basic: bool = False

    @staticmethod
    def naive() -> "CertifierConfig":
        """Everything off: plain resubmission (baseline S18)."""
        return CertifierConfig(
            basic_prepare=False,
            prepare_extension=False,
            commit_certification=False,
        )


@dataclass
class PreparedEntry:
    """One row of the alive interval table.

    ``interval`` is the current (most recent) alive interval;
    ``archive`` holds the frozen intervals of earlier incarnations when
    the certifier is configured to remember several (``max_intervals``).
    """

    txn: TxnId
    sn: Optional[SerialNumber]
    interval: AliveInterval
    prepare_seq: int
    archive: List[AliveInterval] = field(default_factory=list)
    #: Items accessed by the subtransaction (only consulted by the
    #: unsound conflict-aware variant).
    access_set: frozenset = frozenset()

    def all_intervals(self) -> List[AliveInterval]:
        return self.archive + [self.interval]

    def intersects(self, candidate: AliveInterval) -> bool:
        """Conflict-freeness holds if the candidate shares an instant
        with *any* known alive interval of this entry."""
        return any(candidate.intersects(known) for known in self.all_intervals())


@dataclass(frozen=True)
class CertDecision:
    """Outcome of one certification check."""

    ok: bool
    reason: Optional[RefusalReason] = None
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class Certifier:
    """Per-site certification state and decisions."""

    def __init__(self, site: str, config: Optional[CertifierConfig] = None) -> None:
        self.site = site
        self.config = config or CertifierConfig()
        self._table: Dict[TxnId, PreparedEntry] = {}
        self._max_committed_sn: Optional[SerialNumber] = None
        self._prepare_seq = itertools.count()
        self._max_committed_prepare_seq = -1
        # Decision statistics for the benchmarks.
        self.prepare_checks = 0
        self.prepare_refusals_extension = 0
        self.prepare_refusals_intersection = 0
        self.commit_checks = 0
        self.commit_delays = 0

    # ------------------------------------------------------------------
    # Prepare certification (Appendix B)
    # ------------------------------------------------------------------

    def certify_prepare(
        self,
        txn: TxnId,
        sn: Optional[SerialNumber],
        candidate: AliveInterval,
        access_set: frozenset = frozenset(),
    ) -> CertDecision:
        """Extended + basic prepare certification for ``txn``.

        ``candidate`` is the transaction's own alive interval — "the
        time between the last performed operation and the time of the
        checking moment itself".  The caller performs the subsequent
        alive check and the table insertion (via :meth:`insert`).
        ``access_set`` is only consulted by the unsound conflict-aware
        variant (``CertifierConfig.conflict_aware_basic``).
        """
        self.prepare_checks += 1
        if txn in self._table:
            raise SimulationError(f"{txn} is already in the prepared state at {self.site}")

        if self.config.prepare_extension and sn is not None:
            if self._max_committed_sn is not None and sn < self._max_committed_sn:
                self.prepare_refusals_extension += 1
                return CertDecision(
                    ok=False,
                    reason=RefusalReason.PREPARE_OUT_OF_ORDER,
                    detail=(
                        f"{sn} is older than already-committed "
                        f"{self._max_committed_sn}"
                    ),
                )

        if self.config.basic_prepare:
            for entry in self._table.values():
                if entry.intersects(candidate):
                    continue
                if self.config.conflict_aware_basic and not (
                    access_set & entry.access_set
                ):
                    # The unsound shortcut: "their access sets are
                    # disjoint, so they cannot conflict" — blind to
                    # indirect conflicts through local transactions.
                    continue
                self.prepare_refusals_intersection += 1
                return CertDecision(
                    ok=False,
                    reason=RefusalReason.ALIVE_INTERSECTION,
                    detail=(
                        f"candidate {candidate} does not intersect any "
                        f"known alive interval of {entry.txn.label} "
                        f"(latest {entry.interval})"
                    ),
                )
        return CertDecision(ok=True)

    def insert(
        self,
        txn: TxnId,
        sn: Optional[SerialNumber],
        interval: AliveInterval,
        access_set: frozenset = frozenset(),
    ) -> PreparedEntry:
        """Insert ``txn`` into the alive interval table (move to prepared)."""
        if txn in self._table:
            raise SimulationError(f"{txn} already in alive interval table")
        entry = PreparedEntry(
            txn=txn,
            sn=sn,
            interval=interval,
            prepare_seq=next(self._prepare_seq),
            access_set=access_set,
        )
        self._table[txn] = entry
        return entry

    # ------------------------------------------------------------------
    # Alive interval maintenance (Appendix A)
    # ------------------------------------------------------------------

    def extend_interval(self, txn: TxnId, now: float) -> None:
        """A successful alive check: move the interval's end to ``now``."""
        entry = self._entry(txn)
        entry.interval = entry.interval.extended_to(now)

    def restart_interval(self, txn: TxnId, now: float) -> None:
        """Resubmission complete: "a new interval is always initiated
        after the resubmission of all the commands is complete".

        With ``max_intervals`` > 1, the previous incarnation's interval
        is archived (up to the configured memory) rather than dropped —
        the paper's optional optimization.
        """
        entry = self._entry(txn)
        if self.config.max_intervals > 1:
            entry.archive.append(entry.interval)
            keep = self.config.max_intervals - 1
            entry.archive = entry.archive[-keep:]
        entry.interval = AliveInterval.instant(now)

    # ------------------------------------------------------------------
    # Commit certification (Appendix C)
    # ------------------------------------------------------------------

    def certify_commit(self, txn: TxnId) -> CertDecision:
        """May ``txn`` commit locally now?

        Under the SN policy: every *other* subtransaction in the alive
        interval table must have a bigger serial number.  Under the
        rejected PREPARE_ORDER policy: every other entry must have
        entered the prepared state later.
        """
        self.commit_checks += 1
        entry = self._entry(txn)
        if not self.config.commit_certification:
            return CertDecision(ok=True)
        for other in self._table.values():
            if other.txn == txn:
                continue
            if self.config.commit_order is CommitOrderPolicy.SERIAL_NUMBER:
                if entry.sn is None or other.sn is None:
                    continue
                if other.sn < entry.sn:
                    self.commit_delays += 1
                    return CertDecision(
                        ok=False,
                        detail=(
                            f"{other.txn.label} holds smaller {other.sn} < {entry.sn}"
                        ),
                    )
            else:
                if other.prepare_seq < entry.prepare_seq:
                    self.commit_delays += 1
                    return CertDecision(
                        ok=False,
                        detail=f"{other.txn.label} prepared earlier",
                    )
        return CertDecision(ok=True)

    def restore_max_committed_sn(self, sn: Optional[SerialNumber]) -> None:
        """Reload the extension's durable register (agent recovery)."""
        if sn is None:
            return
        if self._max_committed_sn is None or sn > self._max_committed_sn:
            self._max_committed_sn = sn

    def record_local_commit(self, txn: TxnId) -> None:
        """Track the biggest committed SN (state of the extension)."""
        entry = self._table.get(txn)
        if entry is None:
            return
        if entry.sn is not None:
            if self._max_committed_sn is None or entry.sn > self._max_committed_sn:
                self._max_committed_sn = entry.sn
        self._max_committed_prepare_seq = max(
            self._max_committed_prepare_seq, entry.prepare_seq
        )

    def remove(self, txn: TxnId) -> None:
        """Drop ``txn`` from the table (local commit done or rollback)."""
        self._table.pop(txn, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _entry(self, txn: TxnId) -> PreparedEntry:
        entry = self._table.get(txn)
        if entry is None:
            raise SimulationError(f"{txn} not in alive interval table at {self.site}")
        return entry

    def prepared_txns(self) -> List[TxnId]:
        return sorted(self._table)

    def interval_of(self, txn: TxnId) -> AliveInterval:
        return self._entry(txn).interval

    def sn_of(self, txn: TxnId) -> Optional[SerialNumber]:
        return self._entry(txn).sn

    @property
    def max_committed_sn(self) -> Optional[SerialNumber]:
        return self._max_committed_sn

    def contains(self, txn: TxnId) -> bool:
        return txn in self._table

    def table_size(self) -> int:
        return len(self._table)
