"""The 2PCA Certifier (the paper's Appendix, algorithms B and C).

The Certifier is the per-site decision core of the method.  It keeps:

* the **alive interval table** — one entry per global subtransaction in
  the prepared state at this site, holding its latest alive interval
  and its serial number;
* the **largest serial number of a locally committed subtransaction** —
  the state behind the prepare-certification *extension* (Sec. 5.3);
* the order in which subtransactions entered the prepared state — used
  only by the ``PREPARE_ORDER`` commit-order policy, the alternative the
  paper examines and rejects (it fails on indirect conflicts, history
  H3), kept for the E4 experiment.

Every check is a pure decision; the surrounding 2PC Agent performs the
aborts, messages and timer manipulation the Appendix pseudo-code
interleaves with them.  All checks are individually switchable so the
baselines (naive resubmission, no-extension, no-commit-certification)
are the same code with features off.

Two certification **engines** implement the same decisions:

* ``naive`` — the literal Appendix linear scan, O(table) per check.
  It is the differential-testing oracle and the default.
* ``indexed`` — sorted-endpoint + SN indexes (lazy heaps) answering
  the same queries in O(log n) amortized, with epoch-based GC keeping
  the index bounded under sustained load.  Decision-for-decision
  equivalent to ``naive`` (same ``ok``, same ``reason``, same
  counters); only the *witness* named in ``CertDecision.detail`` may
  differ, because a refusal can have several witnesses and the index
  surfaces an extremal one while the scan surfaces the first in
  insertion order.

Why an endpoint index suffices for the intersection rule: a candidate
``[s, e]`` fails to intersect *every* interval of some entry iff

* the entry's **maximum end** is ``< s`` (the entry died before the
  candidate was born), or
* the entry's **minimum start** is ``> e`` (the entry was born after
  the candidate died), or
* the candidate falls entirely inside a **gap** between two of the
  entry's archived intervals (requires ``max_intervals > 1``).

The first two are answered by one peek at a min-end heap and a
max-start heap; the third by a linear pass over only the (few) entries
that actually hold archived intervals.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, RefusalReason, SimulationError
from repro.common.ids import SerialNumber, TxnId
from repro.core.intervals import AliveInterval


class CommitOrderPolicy(enum.Enum):
    """How commit certification orders local commits."""

    #: The paper's choice: globally unique serial numbers.
    SERIAL_NUMBER = "sn"
    #: The rejected alternative: order of entering the prepared state.
    PREPARE_ORDER = "prepare-order"


#: Valid values of :attr:`CertifierConfig.engine`.
CERTIFIER_ENGINES = ("naive", "indexed")


@dataclass(frozen=True)
class CertifierConfig:
    """Feature switches of one site's certifier."""

    #: Basic prepare certification — the alive-interval intersection rule.
    basic_prepare: bool = True
    #: Extended prepare certification — refuse an out-of-order PREPARE.
    prepare_extension: bool = True
    #: Commit certification — issue local commits in global order.
    commit_certification: bool = True
    commit_order: CommitOrderPolicy = CommitOrderPolicy.SERIAL_NUMBER
    #: How many alive intervals to remember per prepared subtransaction.
    #: The paper: "The easiest way to implement the Certifier is to
    #: simply store the last alive time interval ...  As an
    #: optimization, several of them might be stored."  With more than
    #: one, a candidate only needs to intersect *some* remembered alive
    #: interval of each entry — strictly fewer unnecessary refusals.
    max_intervals: int = 1
    #: UNSOUND variant kept for the E17 ablation: only refuse a
    #: disjoint-interval candidate when its access set *directly*
    #: intersects the prepared entry's (the predicate/command-knowledge
    #: approach of the authors' earlier 2PC-Agent paper).  It cannot see
    #: indirect conflicts through local transactions — which is exactly
    #: why the paper's rule is conflict-blind (Conflict Detection Basis
    #: covers "neither directly nor indirectly conflicting").
    conflict_aware_basic: bool = False
    #: Certification engine: ``naive`` (the Appendix linear scan, the
    #: differential oracle) or ``indexed`` (lazy endpoint/SN heaps).
    engine: str = "naive"
    #: Indexed engine only: an epoch GC sweep compacts a lazy heap once
    #: it holds more than ``max(gc_min_entries, gc_stale_factor * live)``
    #: records, bounding index memory under sustained load.
    gc_min_entries: int = 64
    gc_stale_factor: float = 4.0
    #: Fail loudly when two live prepared entries carry the same serial
    #: number.  Every real SN source guarantees uniqueness, and with
    #: federated lease allocators a collision means overlapping grants —
    #: protocol corruption.  Off by default because the differential
    #: fuzzer feeds synthetic duplicate SNs on purpose; the federated
    #: system builder turns it on.
    assert_unique_sns: bool = False

    @staticmethod
    def naive() -> "CertifierConfig":
        """Everything off: plain resubmission (baseline S18)."""
        return CertifierConfig(
            basic_prepare=False,
            prepare_extension=False,
            commit_certification=False,
        )


@dataclass
class PreparedEntry:
    """One row of the alive interval table.

    ``interval`` is the current (most recent) alive interval;
    ``archive`` holds the frozen intervals of earlier incarnations when
    the certifier is configured to remember several (``max_intervals``).
    """

    txn: TxnId
    sn: Optional[SerialNumber]
    interval: AliveInterval
    prepare_seq: int
    archive: List[AliveInterval] = field(default_factory=list)
    #: Items accessed by the subtransaction (only consulted by the
    #: unsound conflict-aware variant).
    access_set: frozenset = frozenset()

    def all_intervals(self) -> List[AliveInterval]:
        return self.archive + [self.interval]

    def intersects(self, candidate: AliveInterval) -> bool:
        """Conflict-freeness holds if the candidate shares an instant
        with *any* known alive interval of this entry."""
        if candidate.intersects(self.interval):
            return True
        for known in self.archive:
            if candidate.intersects(known):
                return True
        return False


def _max_end(entry: PreparedEntry) -> float:
    """Latest end over all of the entry's remembered intervals."""
    end = entry.interval.end
    for known in entry.archive:
        if known.end > end:
            end = known.end
    return end


def _min_start(entry: PreparedEntry) -> float:
    """Earliest start over all of the entry's remembered intervals."""
    start = entry.interval.start
    for known in entry.archive:
        if known.start < start:
            start = known.start
    return start


@dataclass(frozen=True)
class CertDecision:
    """Outcome of one certification check."""

    ok: bool
    reason: Optional[RefusalReason] = None
    detail: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


class _CertIndex:
    """Lazy endpoint/SN indexes over the alive interval table.

    Four heaps keyed on values derived from the *current* table entry:

    * ``_ends``   — min-heap of ``(max interval end, txn)``;
    * ``_starts`` — max-heap of ``(-min interval start, txn)``;
    * ``_sns``    — min-heap of ``(sn, txn)`` for SN-bearing entries;
    * ``_seqs``   — min-heap of ``(prepare_seq, txn)``.

    Mutations never delete from the heaps; they push the entry's new
    key.  A heap record is *valid* iff its transaction is still in the
    table and its key equals the value re-derived from the live entry.
    Queries pop invalid records off the top; because every live entry's
    current key is always present, the first valid top is the true
    extremum — a stale record can only hide behind it, never shadow it.
    This holds even when keys move backwards (interval restarts), which
    matters because certification times are not assumed monotonic.

    ``_gapped`` tracks the entries that hold archived intervals: only
    those can refuse a candidate that sits between the global bounds
    (in a gap between two incarnations), so only those need a scan.

    Epoch GC (:meth:`compact`) rebuilds the heaps from the live table
    once stale records dominate.  It discards exactly the records the
    validity check would have skipped, so it cannot change any answer.
    """

    __slots__ = (
        "_ends",
        "_starts",
        "_sns",
        "_seqs",
        "_gapped",
        "_gc_min",
        "_gc_factor",
        "compactions",
        "reclaimed",
    )

    def __init__(self, gc_min_entries: int, gc_stale_factor: float) -> None:
        self._ends: List[Tuple[float, TxnId]] = []
        self._starts: List[Tuple[float, TxnId]] = []
        self._sns: List[Tuple[SerialNumber, TxnId]] = []
        self._seqs: List[Tuple[int, TxnId]] = []
        self._gapped: Dict[TxnId, PreparedEntry] = {}
        self._gc_min = gc_min_entries
        self._gc_factor = gc_stale_factor
        self.compactions = 0
        self.reclaimed = 0

    # -- maintenance ---------------------------------------------------

    def on_insert(self, entry: PreparedEntry) -> None:
        heapq.heappush(self._ends, (_max_end(entry), entry.txn))
        heapq.heappush(self._starts, (-_min_start(entry), entry.txn))
        if entry.sn is not None:
            heapq.heappush(self._sns, (entry.sn, entry.txn))
        heapq.heappush(self._seqs, (entry.prepare_seq, entry.txn))
        if entry.archive:
            self._gapped[entry.txn] = entry

    def on_interval_change(self, entry: PreparedEntry) -> None:
        heapq.heappush(self._ends, (_max_end(entry), entry.txn))
        heapq.heappush(self._starts, (-_min_start(entry), entry.txn))
        if entry.archive:
            self._gapped[entry.txn] = entry

    def on_remove(self, txn: TxnId) -> None:
        # Heap records die lazily; only the gap set is exact.
        self._gapped.pop(txn, None)

    def depth(self) -> int:
        return len(self._ends) + len(self._starts) + len(self._sns) + len(self._seqs)

    def maybe_compact(self, table: Dict[TxnId, PreparedEntry]) -> None:
        limit = max(self._gc_min, int(self._gc_factor * max(1, len(table))))
        if (
            len(self._ends) > limit
            or len(self._starts) > limit
            or len(self._sns) > limit
            or len(self._seqs) > limit
        ):
            self.compact(table)

    def compact(self, table: Dict[TxnId, PreparedEntry]) -> None:
        """Epoch GC: rebuild every heap from the live table."""
        before = self.depth()
        entries = list(table.values())
        self._ends = [(_max_end(e), e.txn) for e in entries]
        self._starts = [(-_min_start(e), e.txn) for e in entries]
        self._sns = [(e.sn, e.txn) for e in entries if e.sn is not None]
        self._seqs = [(e.prepare_seq, e.txn) for e in entries]
        heapq.heapify(self._ends)
        heapq.heapify(self._starts)
        heapq.heapify(self._sns)
        heapq.heapify(self._seqs)
        self._gapped = {e.txn: e for e in entries if e.archive}
        self.compactions += 1
        self.reclaimed += before - self.depth()

    # -- queries -------------------------------------------------------

    def min_end_entry(
        self, table: Dict[TxnId, PreparedEntry]
    ) -> Optional[PreparedEntry]:
        """The live entry with the earliest maximum interval end."""
        heap = self._ends
        while heap:
            end, txn = heap[0]
            entry = table.get(txn)
            if entry is not None and _max_end(entry) == end:
                return entry
            heapq.heappop(heap)
        return None

    def max_start_entry(
        self, table: Dict[TxnId, PreparedEntry]
    ) -> Optional[PreparedEntry]:
        """The live entry with the latest minimum interval start."""
        heap = self._starts
        while heap:
            neg_start, txn = heap[0]
            entry = table.get(txn)
            if entry is not None and _min_start(entry) == -neg_start:
                return entry
            heapq.heappop(heap)
        return None

    def gapped_entries(self) -> List[PreparedEntry]:
        return list(self._gapped.values())

    def miss_witness(
        self, table: Dict[TxnId, PreparedEntry], candidate: AliveInterval
    ) -> Optional[PreparedEntry]:
        """A live entry none of whose intervals intersect ``candidate``,
        or None if the candidate intersects every entry."""
        entry = self.min_end_entry(table)
        if entry is not None and _max_end(entry) < candidate.start:
            return entry
        entry = self.max_start_entry(table)
        if entry is not None and _min_start(entry) > candidate.end:
            return entry
        for entry in self._gapped.values():
            if not entry.intersects(candidate):
                return entry
        return None

    def _min_excluding(
        self,
        heap: List[tuple],
        table: Dict[TxnId, PreparedEntry],
        key_of: Callable[[PreparedEntry], object],
        pivot: TxnId,
    ) -> Optional[PreparedEntry]:
        """The valid heap minimum whose transaction is not ``pivot``."""
        pivot_record = None
        result = None
        while heap:
            key, txn = heap[0]
            entry = table.get(txn)
            if entry is None or key_of(entry) != key:
                heapq.heappop(heap)
                continue
            if txn == pivot:
                pivot_record = heapq.heappop(heap)
                continue
            result = entry
            break
        if pivot_record is not None:
            heapq.heappush(heap, pivot_record)
        return result

    def min_sn_other(
        self, table: Dict[TxnId, PreparedEntry], pivot: TxnId
    ) -> Optional[PreparedEntry]:
        return self._min_excluding(self._sns, table, lambda e: e.sn, pivot)

    def min_seq_other(
        self, table: Dict[TxnId, PreparedEntry], pivot: TxnId
    ) -> Optional[PreparedEntry]:
        return self._min_excluding(self._seqs, table, lambda e: e.prepare_seq, pivot)


class Certifier:
    """Per-site certification state and decisions."""

    def __init__(self, site: str, config: Optional[CertifierConfig] = None) -> None:
        self.site = site
        self.config = config or CertifierConfig()
        if self.config.engine not in CERTIFIER_ENGINES:
            raise ConfigError(
                f"unknown certifier engine {self.config.engine!r}; "
                f"expected one of {CERTIFIER_ENGINES}"
            )
        self._table: Dict[TxnId, PreparedEntry] = {}
        self._index: Optional[_CertIndex] = (
            _CertIndex(self.config.gc_min_entries, self.config.gc_stale_factor)
            if self.config.engine == "indexed"
            else None
        )
        self._max_committed_sn: Optional[SerialNumber] = None
        self._prepare_seq = itertools.count()
        self._max_committed_prepare_seq = -1
        #: SN → txn over the live table: the global-uniqueness check.
        #: With federated SN allocators, an overlapping lease grant
        #: would first surface here as two live entries sharing one SN
        #: — a protocol-corruption bug, so it fails loudly.
        self._live_sns: Dict[SerialNumber, TxnId] = {}
        # Decision statistics for the benchmarks.
        self.prepare_checks = 0
        self.prepare_refusals_extension = 0
        self.prepare_refusals_intersection = 0
        self.commit_checks = 0
        self.commit_delays = 0

    # ------------------------------------------------------------------
    # Prepare certification (Appendix B)
    # ------------------------------------------------------------------

    def certify_prepare(
        self,
        txn: TxnId,
        sn: Optional[SerialNumber],
        candidate: AliveInterval,
        access_set: frozenset = frozenset(),
    ) -> CertDecision:
        """Extended + basic prepare certification for ``txn``.

        ``candidate`` is the transaction's own alive interval — "the
        time between the last performed operation and the time of the
        checking moment itself".  The caller performs the subsequent
        alive check and the table insertion (via :meth:`insert`).
        ``access_set`` is only consulted by the unsound conflict-aware
        variant (``CertifierConfig.conflict_aware_basic``).
        """
        self.prepare_checks += 1
        if txn in self._table:
            raise SimulationError(f"{txn} is already in the prepared state at {self.site}")
        refusal = self._check_extension(sn)
        if refusal is not None:
            return refusal
        return self._check_basic(candidate, access_set)

    def _check_extension(self, sn: Optional[SerialNumber]) -> Optional[CertDecision]:
        """The extension: refuse a PREPARE below a committed SN."""
        if self.config.prepare_extension and sn is not None:
            if self._max_committed_sn is not None and sn < self._max_committed_sn:
                self.prepare_refusals_extension += 1
                return CertDecision(
                    ok=False,
                    reason=RefusalReason.PREPARE_OUT_OF_ORDER,
                    detail=(
                        f"{sn} is older than already-committed "
                        f"{self._max_committed_sn}"
                    ),
                )
        return None

    def _check_basic(
        self, candidate: AliveInterval, access_set: frozenset
    ) -> CertDecision:
        """The alive time intersection rule over the whole table."""
        if not self.config.basic_prepare:
            return CertDecision(ok=True)
        if self._index is not None and not self.config.conflict_aware_basic:
            # The conflict-aware ablation needs per-entry access sets on
            # every miss, so it stays on the linear scan below.
            witness = self._index.miss_witness(self._table, candidate)
            if witness is not None:
                return self._refuse_intersection(witness, candidate)
            return CertDecision(ok=True)
        for entry in self._table.values():
            if entry.intersects(candidate):
                continue
            if self.config.conflict_aware_basic and not (
                access_set & entry.access_set
            ):
                # The unsound shortcut: "their access sets are
                # disjoint, so they cannot conflict" — blind to
                # indirect conflicts through local transactions.
                continue
            return self._refuse_intersection(entry, candidate)
        return CertDecision(ok=True)

    def _refuse_intersection(
        self, entry: PreparedEntry, candidate: AliveInterval
    ) -> CertDecision:
        self.prepare_refusals_intersection += 1
        return CertDecision(
            ok=False,
            reason=RefusalReason.ALIVE_INTERSECTION,
            detail=(
                f"candidate {candidate} does not intersect any "
                f"known alive interval of {entry.txn.label} "
                f"(latest {entry.interval})"
            ),
        )

    def insert(
        self,
        txn: TxnId,
        sn: Optional[SerialNumber],
        interval: AliveInterval,
        access_set: frozenset = frozenset(),
    ) -> PreparedEntry:
        """Insert ``txn`` into the alive interval table (move to prepared)."""
        if txn in self._table:
            raise SimulationError(f"{txn} already in alive interval table")
        if sn is not None and self.config.assert_unique_sns:
            holder = self._live_sns.get(sn)
            if holder is not None and holder != txn:
                raise SimulationError(
                    f"duplicate serial number at {self.site}: {sn} carried by "
                    f"both {holder.label} and {txn.label} — SN sources "
                    "(lease allocators) issued overlapping ranges"
                )
            self._live_sns[sn] = txn
        entry = PreparedEntry(
            txn=txn,
            sn=sn,
            interval=interval,
            prepare_seq=next(self._prepare_seq),
            access_set=access_set,
        )
        self._table[txn] = entry
        if self._index is not None:
            self._index.on_insert(entry)
            self._index.maybe_compact(self._table)
        return entry

    def begin_prepare_batch(self) -> "PrepareBatch":
        """Start certifying a group of PREPAREs with one index pass.

        See :class:`PrepareBatch`.  Under the naive engine (or the
        conflict-aware ablation) the batch transparently degrades to
        per-call :meth:`certify_prepare`, so it is always safe to use.
        """
        return PrepareBatch(self)

    # ------------------------------------------------------------------
    # Alive interval maintenance (Appendix A)
    # ------------------------------------------------------------------

    def extend_interval(self, txn: TxnId, now: float) -> None:
        """A successful alive check: move the interval's end to ``now``."""
        entry = self._entry(txn)
        entry.interval = entry.interval.extended_to(now)
        if self._index is not None:
            self._index.on_interval_change(entry)
            self._index.maybe_compact(self._table)

    def restart_interval(self, txn: TxnId, now: float) -> None:
        """Resubmission complete: "a new interval is always initiated
        after the resubmission of all the commands is complete".

        With ``max_intervals`` > 1, the previous incarnation's interval
        is archived (up to the configured memory) rather than dropped —
        the paper's optional optimization.
        """
        entry = self._entry(txn)
        if self.config.max_intervals > 1:
            entry.archive.append(entry.interval)
            keep = self.config.max_intervals - 1
            entry.archive = entry.archive[-keep:]
        entry.interval = AliveInterval.instant(now)
        if self._index is not None:
            self._index.on_interval_change(entry)
            self._index.maybe_compact(self._table)

    # ------------------------------------------------------------------
    # Commit certification (Appendix C)
    # ------------------------------------------------------------------

    def certify_commit(self, txn: TxnId) -> CertDecision:
        """May ``txn`` commit locally now?

        Under the SN policy: every *other* subtransaction in the alive
        interval table must have a bigger serial number.  Under the
        rejected PREPARE_ORDER policy: every other entry must have
        entered the prepared state later.
        """
        self.commit_checks += 1
        entry = self._entry(txn)
        if not self.config.commit_certification:
            return CertDecision(ok=True)
        if self._index is not None:
            return self._certify_commit_indexed(entry)
        for other in self._table.values():
            if other is entry:
                continue
            if self.config.commit_order is CommitOrderPolicy.SERIAL_NUMBER:
                if entry.sn is None or other.sn is None:
                    continue
                if other.sn < entry.sn:
                    self.commit_delays += 1
                    return CertDecision(
                        ok=False,
                        detail=(
                            f"{other.txn.label} holds smaller {other.sn} < {entry.sn}"
                        ),
                    )
            else:
                if other.prepare_seq < entry.prepare_seq:
                    self.commit_delays += 1
                    return CertDecision(
                        ok=False,
                        detail=f"{other.txn.label} prepared earlier",
                    )
        return CertDecision(ok=True)

    def _certify_commit_indexed(self, entry: PreparedEntry) -> CertDecision:
        """Commit certification via one peek at the SN/seq heap."""
        assert self._index is not None
        if self.config.commit_order is CommitOrderPolicy.SERIAL_NUMBER:
            if entry.sn is None:
                return CertDecision(ok=True)
            other = self._index.min_sn_other(self._table, entry.txn)
            if other is not None and other.sn is not None and other.sn < entry.sn:
                self.commit_delays += 1
                return CertDecision(
                    ok=False,
                    detail=(
                        f"{other.txn.label} holds smaller {other.sn} < {entry.sn}"
                    ),
                )
        else:
            other = self._index.min_seq_other(self._table, entry.txn)
            if other is not None and other.prepare_seq < entry.prepare_seq:
                self.commit_delays += 1
                return CertDecision(
                    ok=False,
                    detail=f"{other.txn.label} prepared earlier",
                )
        return CertDecision(ok=True)

    def restore_max_committed_sn(self, sn: Optional[SerialNumber]) -> None:
        """Reload the extension's durable register (agent recovery)."""
        if sn is None:
            return
        if self._max_committed_sn is None or sn > self._max_committed_sn:
            self._max_committed_sn = sn

    def record_local_commit(self, txn: TxnId) -> None:
        """Track the biggest committed SN (state of the extension)."""
        entry = self._table.get(txn)
        if entry is None:
            return
        if entry.sn is not None:
            if self._max_committed_sn is None or entry.sn > self._max_committed_sn:
                self._max_committed_sn = entry.sn
        self._max_committed_prepare_seq = max(
            self._max_committed_prepare_seq, entry.prepare_seq
        )

    def remove(self, txn: TxnId) -> None:
        """Drop ``txn`` from the table (local commit done or rollback)."""
        entry = self._table.pop(txn, None)
        if entry is not None and entry.sn is not None:
            if self._live_sns.get(entry.sn) == txn:
                del self._live_sns[entry.sn]
        if entry is not None and self._index is not None:
            self._index.on_remove(txn)
            self._index.maybe_compact(self._table)

    # ------------------------------------------------------------------
    # Index introspection / garbage collection
    # ------------------------------------------------------------------

    def collect_garbage(self) -> int:
        """Force an epoch GC sweep; returns reclaimed index records.

        A no-op (returns 0) under the naive engine, which keeps no
        index.  Safe at any point: compaction only drops records the
        lazy validity check would have skipped anyway.
        """
        if self._index is None:
            return 0
        before = self._index.reclaimed
        self._index.compact(self._table)
        return self._index.reclaimed - before

    def index_depth(self) -> int:
        """Total records currently held across the lazy heaps (0 = naive)."""
        return self._index.depth() if self._index is not None else 0

    @property
    def gc_compactions(self) -> int:
        return self._index.compactions if self._index is not None else 0

    @property
    def gc_reclaimed(self) -> int:
        return self._index.reclaimed if self._index is not None else 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _entry(self, txn: TxnId) -> PreparedEntry:
        entry = self._table.get(txn)
        if entry is None:
            raise SimulationError(f"{txn} not in alive interval table at {self.site}")
        return entry

    def prepared_txns(self) -> List[TxnId]:
        return sorted(self._table)

    def interval_of(self, txn: TxnId) -> AliveInterval:
        return self._entry(txn).interval

    def sn_of(self, txn: TxnId) -> Optional[SerialNumber]:
        return self._entry(txn).sn

    @property
    def max_committed_sn(self) -> Optional[SerialNumber]:
        return self._max_committed_sn

    def contains(self, txn: TxnId) -> bool:
        return txn in self._table

    def table_size(self) -> int:
        return len(self._table)


class PrepareBatch:
    """Certify a group of commuting PREPAREs with one index pass.

    The batch snapshots the table's extremal entries (min end, max
    start, gapped entries) once, then answers each member's basic check
    in O(1) against the snapshot plus the *running bounds* of members
    already admitted: a candidate intersects every admitted
    single-interval entry iff its start is ≤ the minimum admitted end
    and its end is ≥ the maximum admitted start.  Admitting a member
    (:meth:`admit`) inserts it into the table and folds its endpoints
    into the running bounds, so later members are checked against it
    without touching the index again.

    Decision-equivalent to calling :meth:`Certifier.certify_prepare`
    then :meth:`Certifier.insert` sequentially for each member (same
    ``ok``/``reason``/counters; the refusal witness may differ).  Under
    the naive engine — or when the conflict-aware ablation or a
    disabled basic check makes the snapshot useless — every call
    degrades to the sequential path.
    """

    def __init__(self, certifier: Certifier) -> None:
        self._certifier = certifier
        self._snapshot = False
        self._min_end: Optional[Tuple[float, PreparedEntry]] = None
        self._max_start: Optional[Tuple[float, PreparedEntry]] = None
        self._gapped: List[PreparedEntry] = []
        index = certifier._index
        config = certifier.config
        if (
            index is not None
            and config.basic_prepare
            and not config.conflict_aware_basic
        ):
            self._snapshot = True
            low = index.min_end_entry(certifier._table)
            if low is not None:
                self._min_end = (_max_end(low), low)
            high = index.max_start_entry(certifier._table)
            if high is not None:
                self._max_start = (_min_start(high), high)
            self._gapped = index.gapped_entries()

    def certify(
        self,
        txn: TxnId,
        sn: Optional[SerialNumber],
        candidate: AliveInterval,
        access_set: frozenset = frozenset(),
    ) -> CertDecision:
        certifier = self._certifier
        if not self._snapshot:
            return certifier.certify_prepare(txn, sn, candidate, access_set=access_set)
        certifier.prepare_checks += 1
        if txn in certifier._table:
            raise SimulationError(
                f"{txn} is already in the prepared state at {certifier.site}"
            )
        refusal = certifier._check_extension(sn)
        if refusal is not None:
            return refusal
        if self._min_end is not None and self._min_end[0] < candidate.start:
            return certifier._refuse_intersection(self._min_end[1], candidate)
        if self._max_start is not None and self._max_start[0] > candidate.end:
            return certifier._refuse_intersection(self._max_start[1], candidate)
        for entry in self._gapped:
            if not entry.intersects(candidate):
                return certifier._refuse_intersection(entry, candidate)
        return CertDecision(ok=True)

    def admit(
        self,
        txn: TxnId,
        sn: Optional[SerialNumber],
        interval: AliveInterval,
        access_set: frozenset = frozenset(),
    ) -> PreparedEntry:
        """Insert an accepted member and fold it into the running bounds."""
        entry = self._certifier.insert(txn, sn, interval, access_set=access_set)
        if self._snapshot:
            if self._min_end is None or interval.end < self._min_end[0]:
                self._min_end = (interval.end, entry)
            if self._max_start is None or interval.start > self._max_start[0]:
                self._max_start = (interval.start, entry)
        return entry
