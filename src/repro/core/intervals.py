"""Alive time intervals and the intersection rule (paper Sec. 4.2).

A subtransaction is *alive* when all of its DML commands are completely
executed and it has been neither locally committed nor aborted.  The
Certifier maintains, for every subtransaction in the prepared state, an
interval of time during which it is known to have been alive:

* the interval starts when the last command (or resubmission) finished;
* each successful alive check extends the interval's end to "now";
* a failed alive check (unilateral abort detected) freezes it — a new
  interval is only initiated after resubmission completes.

**Alive time intersection rule**: if the intersection of two alive time
intervals is non-empty then there is no conflict between the
corresponding subtransactions — because under a rigorous LTM two
subtransactions alive at the same instant cannot have conflicting
(directly or indirectly) elementary operations (the paper's Conflict
Detection Basis).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class AliveInterval:
    """A closed interval ``[start, end]`` of simulated time."""

    # Manual __slots__ (dataclass(slots=True) needs 3.10; the repo
    # supports 3.9): the certifier holds one of these per prepared
    # subtransaction and probes millions of them in the benchmarks.
    __slots__ = ("start", "end")

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigError(
                f"alive interval ends before it starts: [{self.start}, {self.end}]"
            )

    def intersects(self, other: "AliveInterval") -> bool:
        """Non-empty intersection of two closed intervals."""
        return max(self.start, other.start) <= min(self.end, other.end)

    def extended_to(self, end: float) -> "AliveInterval":
        """The interval with its end moved forward to ``end``."""
        if end < self.end:
            return self
        return AliveInterval(self.start, end)

    @staticmethod
    def instant(at: float) -> "AliveInterval":
        """A degenerate interval ``[at, at]`` (a fresh resubmission)."""
        return AliveInterval(at, at)

    @property
    def length(self) -> float:
        return self.end - self.start

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.start:g}, {self.end:g}]"
