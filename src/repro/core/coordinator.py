"""The Coordinator (system S10): global transaction execution + 2PC.

The Coordinator decomposes a global transaction into global
subtransactions (at most one per participating site), submits the DML
commands one by one, and — when the application issues the global
Commit — draws the serial number ``SN(k)`` and runs the standard 2PC
protocol against the 2PC Agents:

    PREPARE(sn) → READY/REFUSE → COMMIT/ROLLBACK → acks.

The global commit decision ``C_k`` is recorded (durably, in the model:
into the history) *after* every participant voted READY and *before*
any COMMIT message is sent, matching the paper's ordering invariant
(1): ``P^i_k < C_k < C^s_k``.

Two extension points serve the baselines:

* ``sn_at_begin`` draws the serial number when the transaction starts
  instead of at commit submission — this turns SN order into ticket
  (submission) order, the restrictive predefined-order scheme of
  Elmagarmid & Du the paper argues against (baseline S19);
* an optional ``scheduler`` is consulted before every command and
  before the prepare phase — the CGM baseline (S17) plugs its global
  lock manager and commit-graph admission in here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.errors import (
    RefusalReason,
    SimulationError,
    TransactionAborted,
    reason_of,
)

if TYPE_CHECKING:  # avoid a core ↔ durability import knot at runtime
    from repro.durability.decision_log import DurableDecisionLog
from repro.common.ids import SerialNumber, TxnId
from repro.core.serial import SNGenerator
from repro.federation.shard import ShardMap
from repro.history.model import History
from repro.kernel.events import Event, EventKernel
from repro.kernel.process import Process, Sleep
from repro.ldbs.commands import Command
from repro.net.messages import Message, MsgType
from repro.net.network import Network
from repro.overload.admission import AdmissionController
from repro.overload.breaker import BreakerRegistry
from repro.overload.config import OverloadConfig

#: Abort reasons that indicate the *site* failed the transaction (and
#: should charge its circuit breaker), as opposed to self-inflicted
#: coordinator decisions or ordinary certification contention.
_BREAKER_FAILURE_REASONS = frozenset(
    {
        RefusalReason.SITE_UNREACHABLE,
        RefusalReason.NOT_ALIVE,
        RefusalReason.UNILATERAL,
        RefusalReason.RESUBMIT_BUDGET,
    }
)


@dataclass(frozen=True)
class GlobalTransactionSpec:
    """One global transaction: an ordered list of (site, command) steps.

    The step order is the submission order the application would
    produce; steps at different sites may be given in any interleaving
    (the paper's examples rely on specific cross-site orders).
    ``think_time`` models the application computation between steps,
    performed at the Coordinating Site.
    """

    txn: TxnId
    steps: Tuple[Tuple[str, Command], ...]
    think_time: float = 0.0
    #: Absolute simulated time after which the outcome no longer matters
    #: to the submitter.  ``None`` defers to the overload layer's
    #: ``default_deadline`` (or no deadline at all when that is off).
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.txn.is_local:
            raise SimulationError(f"{self.txn} is a local transaction id")
        if not self.steps:
            raise SimulationError(f"{self.txn} has no steps")

    @property
    def sites(self) -> List[str]:
        """Participating sites in first-use order."""
        seen: List[str] = []
        for site, _command in self.steps:
            if site not in seen:
                seen.append(site)
        return seen

    @staticmethod
    def from_site_commands(
        txn: TxnId,
        per_site: Dict[str, Sequence[Command]],
        think_time: float = 0.0,
    ) -> "GlobalTransactionSpec":
        """Build a spec that runs each site's commands site by site."""
        steps: List[Tuple[str, Command]] = []
        for site in sorted(per_site):
            for command in per_site[site]:
                steps.append((site, command))
        return GlobalTransactionSpec(
            txn=txn, steps=tuple(steps), think_time=think_time
        )


@dataclass
class GlobalOutcome:
    """What happened to one global transaction."""

    txn: TxnId
    committed: bool
    sn: Optional[SerialNumber] = None
    reason: Optional[RefusalReason] = None
    refusing_sites: List[str] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    results: List[object] = field(default_factory=list)
    #: WRONG_SHARD refusals only: the coordinator that (as far as the
    #: refusing one knows) owns the transaction's shard — the client
    #: resubmits there instead of probing the whole federation.
    redirect: Optional[str] = None

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


def _static_program(steps):
    """Adapt a static step list to the interactive-program protocol."""
    for site, command in steps:
        yield (site, command)


class AbortRequested(Exception):
    """Raised by an application program to abort its global transaction."""

    def __init__(self, note: str = "") -> None:
        self.note = note
        super().__init__(note)


class Scheduler:
    """Admission interface for centralized baselines (CGM).

    The decentralized 2CM never uses it; every method returns an
    immediately successful event by default.
    """

    def before_command(
        self, kernel: EventKernel, txn: TxnId, site: str, command: Command
    ) -> Event:
        event = Event(kernel)
        event.succeed(None)
        return event

    def before_prepare(
        self, kernel: EventKernel, txn: TxnId, sites: Sequence[str]
    ) -> Event:
        event = Event(kernel)
        event.succeed(None)
        return event

    def on_end(self, txn: TxnId, committed: bool) -> None:
        """Called once per transaction after the 2PC outcome is final."""


@dataclass(frozen=True)
class CoordinatorTimeouts:
    """Opt-in liveness knobs for runs where agents can crash.

    All ``None`` by default: the failure-free goldens depend on the
    coordinator waiting forever (every expected message arrives in the
    paper's Network model).  Crash injection breaks that assumption —
    a dead agent's in-flight handler never answers — so these put
    bounds on every wait:

    * ``result_timeout`` — a COMMAND whose result never comes is
      treated as a failed command (global abort);
    * ``vote_timeout`` — a PREPARE whose vote never comes counts as a
      REFUSE with :attr:`RefusalReason.SITE_UNREACHABLE`; the silent
      site *is* rolled back (unlike a refusing one, it may recover into
      the prepared state and must be told);
    * ``ack_timeout`` — an unacknowledged COMMIT/ROLLBACK is re-sent
      (agents treat duplicates idempotently), at most ``max_resends``
      times before the run is declared broken.
    """

    result_timeout: Optional[float] = None
    vote_timeout: Optional[float] = None
    ack_timeout: Optional[float] = None
    max_resends: int = 25


#: Coordinator-side protocol points a kill probe can target.  They
#: bracket the DECISION record exactly the way the agent's CRASH_POINTS
#: bracket the prepare record:
#:
#: * ``sn_drawn`` — the commit-path SN exists, nothing is logged yet
#:   (a crash here loses the transaction; agents unilaterally abort);
#: * ``decision_logged`` — the DECISION is forced to stable storage and
#:   the global commit is journaled, but **no COMMIT has been sent**
#:   (the in-doubt window ``resume_in_doubt`` must re-drive);
#: * ``mid_broadcast`` — some participants got their COMMIT, some did
#:   not (fires only when there are >= 2 participants, after the first
#:   half of the broadcast).
COORDINATOR_KILL_POINTS = ("sn_drawn", "decision_logged", "mid_broadcast")


class Coordinator:
    """One Coordinating Site's transaction manager half."""

    def __init__(
        self,
        name: str,
        site: str,
        kernel: EventKernel,
        network: Network,
        history: History,
        sn_generator: SNGenerator,
        sn_at_begin: bool = False,
        scheduler: Optional[Scheduler] = None,
        timeouts: Optional[CoordinatorTimeouts] = None,
        decision_log: Optional["DurableDecisionLog"] = None,
        takeover: bool = False,
        overload: Optional[OverloadConfig] = None,
        admission: Optional[AdmissionController] = None,
        breakers: Optional[BreakerRegistry] = None,
        shard_map: Optional[ShardMap] = None,
    ) -> None:
        self.name = name
        self.site = site
        self.address = f"coord:{name}"
        self.kernel = kernel
        self.network = network
        self.history = history
        self.sn_generator = sn_generator
        self.sn_at_begin = sn_at_begin
        self.scheduler = scheduler
        self.timeouts = timeouts or CoordinatorTimeouts()
        #: Optional durable decision log: the DECISION record is forced
        #: before any COMMIT leaves, so a successor coordinator can
        #: finish delivery of every in-doubt outcome (resume_in_doubt).
        self.decision_log = decision_log
        self._pending: Dict[Tuple[TxnId, str, str], Event] = {}
        #: Sites the failure detector currently suspects.  New global
        #: transactions touching them are refused up front (graceful
        #: degradation) instead of being left to hang on a dead site;
        #: in-flight ones still run — the timeouts own those.
        self.quarantined: Set[str] = set()
        self.quarantine_refusals = 0
        self.quarantine_events = 0
        #: Overload layer (all ``None`` when the layer is off, which
        #: keeps every new code path dormant).
        self.overload = overload
        self.admission = admission
        self.breakers = breakers
        #: Transactions currently being driven by this coordinator;
        #: GIVEUP escalations for anything else are stale and ignored.
        self._active: Set[TxnId] = set()
        #: Sites that escalated GIVEUP per active transaction.
        self._giveups: Dict[TxnId, Set[str]] = {}
        #: Federation (``None`` = not federated, every check dormant).
        #: The map is shared or pushed by the system/supervisor; this
        #: coordinator only *reads* it, except through adopt_shard.
        self.shard_map = shard_map
        #: Shards being drained for handoff: new BEGINs refused with
        #: WRONG_SHARD (+ redirect to the successor) while in-flight
        #: globals finish.
        self._draining: Set[int] = set()
        self._drain_target: Dict[int, str] = {}
        self._shard_inflight: Dict[int, int] = {}
        self.shard_inflight_peak = 0
        self.wrong_shard_refusals = 0
        self.overload_refusals = 0
        self.deadline_aborts = 0
        self.breaker_refusals = 0
        self.giveup_aborts = 0
        self.committed = 0
        self.aborted = 0
        self.aborts_by_reason: Dict[RefusalReason, int] = {}
        self.vote_timeouts = 0
        self.result_timeouts = 0
        self.resends = 0
        self.inquiries = 0
        self.inquiries_presumed_abort = 0
        #: Durable decision records written (the paper: the Coordinator
        #: "recorded, in a stable storage, the decision").  Counted so
        #: the force-write I/O accounting covers both ends of 2PC.
        self.decisions_logged = 0
        #: Fired when the global END record is sealed (every ack is in):
        #: the GC watermark — no site can still need state for the
        #: transaction, so agents may forget it.
        self.on_end_observers: List[Callable[[TxnId], None]] = []
        #: Crash-injection hook mirroring ``TwoPCAgent.crash_probe``:
        #: called with ``(point, txn)`` at each COORDINATOR_KILL_POINTS
        #: hit.  The runtime installs a probe that SIGKILLs the process
        #: there; ``None`` (the default) keeps every golden untouched.
        self.kill_probe: Optional[Callable[[str, TxnId], None]] = None
        network.register(self.address, self._on_message, replace=takeover)

    # ------------------------------------------------------------------
    # Message plumbing
    # ------------------------------------------------------------------

    _KIND_OF = {
        MsgType.COMMAND_RESULT: "result",
        MsgType.READY: "vote",
        MsgType.REFUSE: "vote",
        MsgType.COMMIT_ACK: "commit-ack",
        MsgType.ROLLBACK_ACK: "rollback-ack",
    }

    def _on_message(self, msg: Message) -> None:
        if msg.type is MsgType.GIVEUP:
            # Advisory escalation: an agent's resubmission budget ran
            # out.  Honoured only while the global decision is still
            # open — checked at the decision gate in _run_admitted.
            if msg.sn is not None:
                self.sn_generator.witness(self.site, msg.sn)
            if msg.txn in self._active:
                self._giveups.setdefault(msg.txn, set()).add(
                    msg.src.split(":", 1)[-1]
                )
            return
        if msg.type is MsgType.INQUIRE:
            if msg.sn is not None:
                self.sn_generator.witness(self.site, msg.sn)
            self._on_inquire(msg)
            return
        kind = self._KIND_OF.get(msg.type)
        if kind is None:
            raise SimulationError(f"coordinator {self.name} got unexpected {msg}")
        if msg.sn is not None:
            # Logical-clock SN sources advance on every witnessed SN, so
            # causally later commits always draw bigger numbers; no-op
            # for the clock and counter generators.
            self.sn_generator.witness(self.site, msg.sn)
        self._expect(msg.txn, msg.src, kind).succeed(msg)

    def _on_inquire(self, msg: Message) -> None:
        """Answer a participant's overdue-decision inquiry.

        Three cases, in order of precedence:

        * The transaction is still actively being driven — stay silent;
          the run (or resume) loop delivers the decision itself, and a
          concurrent reply here could race it.
        * A decision is logged — resend it to the inquiring site.  The
          resend is fire-and-forget: if a resume loop is awaiting the
          ack it consumes it; an extra ack after END lands on a fresh
          pending event and is harmless (both decision handlers on the
          agent are idempotent).
        * Nothing is known — reply ROLLBACK (*presumed abort*).  The
          DECISION record is forced before the first COMMIT message
          leaves this coordinator, so a transaction absent from both
          the active set and the decision log can never have committed
          at any site; aborting the orphaned prepared subtransaction is
          the only safe answer, and it releases the locks the orphan
          was holding against every later transaction.
        """
        self.inquiries += 1
        site = msg.src.split(":", 1)[-1]
        if msg.txn in self._active:
            return
        decision = (
            self.decision_log.decision(msg.txn)
            if self.decision_log is not None
            else None
        )
        if decision is not None:
            self._send(
                MsgType.COMMIT if decision.committed else MsgType.ROLLBACK,
                msg.txn,
                site,
            )
            return
        self.inquiries_presumed_abort += 1
        self._send(MsgType.ROLLBACK, msg.txn, site)

    def _expect(self, txn: TxnId, agent_address: str, kind: str) -> Event:
        key = (txn, agent_address, kind)
        event = self._pending.get(key)
        if event is None or event.done:
            event = Event(self.kernel, name=f"{kind}:{txn}:{agent_address}")
            self._pending[key] = event
        return event

    def _send(self, type_: MsgType, txn: TxnId, site: str, **kwargs) -> None:
        self.network.send(
            Message(
                type=type_,
                src=self.address,
                dst=f"agent:{site}",
                txn=txn,
                **kwargs,
            )
        )

    def _race(self, wait: Event, timeout: Optional[float]) -> Event:
        """``wait``, bounded: yields the message, or ``None`` on timeout.

        With ``timeout=None`` this is ``wait`` itself — the zero-cost
        default keeps the failure-free goldens byte-identical.
        """
        if timeout is None:
            return wait
        race = Event(self.kernel, name=f"race:{wait.name}")

        def on_msg(event: Event) -> None:
            if not race.done:
                race.succeed(event._value)  # noqa: SLF001 - relaying

        def on_timeout() -> None:
            if not race.done:
                race.succeed(None)

        wait.subscribe(on_msg)
        self.kernel.schedule(timeout, on_timeout)
        return race

    def _await_ack(
        self, txn: TxnId, site: str, kind: str, resend: MsgType, wait: Event
    ):
        """Wait for one decision ack, re-sending on ack timeout.

        ``wait`` is the event registered *before* the decision message
        was sent (so an early ack is never lost).  A crashed agent
        drops the in-flight COMMIT/ROLLBACK; once it recovers, the
        resend reaches it and the (idempotent) handler acknowledges.
        Bounded by ``max_resends`` so a truly dead site fails the run
        loudly instead of hanging it.
        """
        timeout = self.timeouts.ack_timeout
        attempts = 0
        while True:
            reply = yield self._race(wait, timeout)
            if reply is not None:
                return
            attempts += 1
            if attempts > self.timeouts.max_resends:
                raise SimulationError(
                    f"coordinator {self.name}: no {kind} from {site} for "
                    f"{txn} after {attempts} attempts"
                )
            self.resends += 1
            wait = self._expect(txn, f"agent:{site}", kind)
            self._send(resend, txn, site)

    def _log_decision(
        self, txn: TxnId, committed: bool, sn, sites: Sequence[str]
    ) -> None:
        self.decisions_logged += 1
        if self.decision_log is not None:
            from repro.durability.decision_log import Decision

            self.decision_log.log_decision(
                Decision(txn=txn, committed=committed, sn=sn, sites=tuple(sites))
            )

    def _log_end(self, txn: TxnId) -> None:
        if self.decision_log is not None:
            self.decision_log.log_end(txn)
        for observer in self.on_end_observers:
            observer(txn)

    # ------------------------------------------------------------------
    # Quarantine (failure-detector integration)
    # ------------------------------------------------------------------

    def quarantine(self, site: str) -> None:
        """Stop sending new subtransactions to a suspected site.

        Wired to the failure detector's ``on_suspect`` callback; the
        suspicion may be wrong (a partition looks like a crash), which
        is why quarantine only *refuses new work* — nothing already
        decided is touched, and :meth:`unquarantine` undoes it fully.
        """
        if site not in self.quarantined:
            self.quarantined.add(site)
            self.quarantine_events += 1

    def unquarantine(self, site: str) -> None:
        """The suspected site was heard from again; accept work for it."""
        self.quarantined.discard(site)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, spec: GlobalTransactionSpec) -> Event:
        """Run ``spec`` to completion; the event yields a GlobalOutcome."""
        process = Process(
            self.kernel, self._run(spec), name=f"coord:{spec.txn}"
        )
        return process.completion

    def submit_program(
        self, txn: TxnId, program, think_time: float = 0.0
    ) -> Event:
        """Run an *interactive* application program as a global txn.

        ``program`` is a generator: it yields ``(site, command)`` steps
        and receives each command's :class:`CommandResult` back — the
        paper's "the Coordinator ... returns the results to the
        application which performs the necessary computation".
        Returning commits; raising :class:`AbortRequested` rolls the
        transaction back.  Because the application computation happens
        at the Coordinating Site *before* the global Commit, it is never
        re-run on resubmission — the agents replay only the decided
        command sequence from their logs.
        """
        spec = GlobalTransactionSpec(
            txn=txn,
            steps=(("<dynamic>", None),),  # placeholder; program drives
            think_time=think_time,
        )
        process = Process(
            self.kernel,
            self._run(spec, program=program),
            name=f"coord:{txn}",
        )
        return process.completion

    def _run(self, spec: GlobalTransactionSpec, program=None):
        outcome = GlobalOutcome(
            txn=spec.txn, committed=False, started_at=self.kernel.now
        )
        shard: Optional[int] = None
        if self.shard_map is not None:
            shard = self.shard_map.shard_of(spec.txn)
            owner = self.shard_map.owner(shard)
            if owner != self.name or shard in self._draining:
                # Not this coordinator's bucket (or mid-handoff): refuse
                # before any BEGIN leaves, pointing the client at the
                # owner — for a draining shard, at the successor.
                self.wrong_shard_refusals += 1
                outcome.reason = RefusalReason.WRONG_SHARD
                outcome.redirect = (
                    self._drain_target.get(shard, owner)
                    if owner == self.name
                    else owner
                )
                outcome.finished_at = self.kernel.now
                self.aborted += 1
                self.aborts_by_reason[RefusalReason.WRONG_SHARD] = (
                    self.aborts_by_reason.get(RefusalReason.WRONG_SHARD, 0) + 1
                )
                return outcome
        if self.admission is not None and not self.admission.try_admit():
            # Shed at the front door: no BEGIN was sent anywhere, so
            # there is nothing to roll back and nothing in the history.
            self.overload_refusals += 1
            outcome.reason = RefusalReason.OVERLOADED
            outcome.finished_at = self.kernel.now
            self.aborted += 1
            self.aborts_by_reason[RefusalReason.OVERLOADED] = (
                self.aborts_by_reason.get(RefusalReason.OVERLOADED, 0) + 1
            )
            return outcome
        deadline = spec.deadline
        if (
            deadline is None
            and self.overload is not None
            and self.overload.default_deadline is not None
        ):
            deadline = self.kernel.now + self.overload.default_deadline
        self._active.add(spec.txn)
        if shard is not None:
            live = self._shard_inflight.get(shard, 0) + 1
            self._shard_inflight[shard] = live
            self.shard_inflight_peak = max(self.shard_inflight_peak, live)
        try:
            return (
                yield from self._run_admitted(spec, program, outcome, deadline)
            )
        finally:
            self._active.discard(spec.txn)
            self._giveups.pop(spec.txn, None)
            if shard is not None:
                self._shard_inflight[shard] -= 1
            if self.admission is not None:
                self.admission.release()

    def _run_admitted(
        self,
        spec: GlobalTransactionSpec,
        program,
        outcome: GlobalOutcome,
        deadline: Optional[float],
    ):
        sn: Optional[SerialNumber] = None
        if self.sn_at_begin:
            sn = self.sn_generator.generate(self.site)
        shard: Optional[int] = None
        shard_epoch: Optional[int] = None
        if self.shard_map is not None:
            # Stamp BEGINs with the ownership claim so agents can fence
            # a deposed owner's fresh transactions after a handoff.
            shard = self.shard_map.shard_of(spec.txn)
            shard_epoch = self.shard_map.epoch(shard)
        begun: List[str] = []

        # -- active phase: submit the commands, one by one --------------
        if program is None:
            program = _static_program(spec.steps)
        last_result = None
        while True:
            try:
                site, command = program.send(
                    None if last_result is None else last_result
                )
            except StopIteration:
                break
            except AbortRequested as exc:
                yield from self._global_abort(
                    spec, begun, outcome, RefusalReason.REQUESTED, None
                )
                return outcome
            if self.scheduler is not None:
                try:
                    yield self.scheduler.before_command(
                        self.kernel, spec.txn, site, command
                    )
                except TransactionAborted as exc:
                    yield from self._global_abort(
                        spec, begun, outcome, reason_of(exc), site
                    )
                    return outcome
            if site not in begun:
                if site in self.quarantined:
                    # Graceful degradation: refuse up front rather than
                    # hang the transaction on a suspected-dead site.
                    self.quarantine_refusals += 1
                    yield from self._global_abort(
                        spec,
                        begun,
                        outcome,
                        RefusalReason.SITE_QUARANTINED,
                        site,
                    )
                    return outcome
                if self.breakers is not None and not self.breakers.allow(
                    site, self.kernel.now
                ):
                    # The site's breaker is open: its recent error rate
                    # says new work would very likely die there too.
                    self.breaker_refusals += 1
                    yield from self._global_abort(
                        spec,
                        begun,
                        outcome,
                        RefusalReason.SITE_BREAKER_OPEN,
                        site,
                    )
                    return outcome
                self._send(
                    MsgType.BEGIN,
                    spec.txn,
                    site,
                    deadline=deadline,
                    shard=shard,
                    shard_epoch=shard_epoch,
                )
                begun.append(site)
            wait = self._expect(spec.txn, f"agent:{site}", "result")
            self._send(
                MsgType.COMMAND, spec.txn, site, payload=command, deadline=deadline
            )
            reply = yield self._race(wait, self.timeouts.result_timeout)
            if reply is None:
                # The site went silent mid-command (crash injection):
                # give the transaction up, telling every begun site.
                self.result_timeouts += 1
                yield from self._global_abort(
                    spec,
                    begun,
                    outcome,
                    RefusalReason.SITE_UNREACHABLE,
                    site,
                )
                return outcome
            if isinstance(reply.payload, BaseException):
                yield from self._global_abort(
                    spec, begun, outcome, reason_of(reply.payload), site
                )
                return outcome
            outcome.results.append(reply.payload)
            last_result = reply.payload
            if spec.think_time > 0:
                yield Sleep(spec.think_time)
        if not begun:
            # A program that issued no commands: nothing to decide.
            outcome.committed = True
            outcome.finished_at = self.kernel.now
            self.committed += 1
            return outcome

        # -- the application submits the global Commit ------------------
        if self.scheduler is not None:
            try:
                yield self.scheduler.before_prepare(self.kernel, spec.txn, begun)
            except TransactionAborted as exc:
                yield from self._global_abort(
                    spec, begun, outcome, reason_of(exc), None
                )
                return outcome
        blocked = [site for site in begun if site in self.quarantined]
        if blocked:
            # A participant was quarantined while the transaction was
            # still active: abort now instead of PREPARE-ing into a
            # suspected-dead site and blocking on the vote.
            self.quarantine_refusals += 1
            yield from self._global_abort(
                spec,
                begun,
                outcome,
                RefusalReason.SITE_QUARANTINED,
                blocked[0],
            )
            return outcome
        if deadline is not None and self.kernel.now >= deadline:
            # Vote gate: the submitter stopped caring; aborting is
            # strictly cheaper than PREPARE-ing work nobody wants.
            self.deadline_aborts += 1
            yield from self._global_abort(
                spec, begun, outcome, RefusalReason.DEADLINE_EXPIRED, None
            )
            return outcome
        if sn is None:
            sn = self.sn_generator.generate(self.site)
        outcome.sn = sn
        if self.kill_probe is not None:
            self.kill_probe("sn_drawn", spec.txn)

        # -- 2PC voting phase -------------------------------------------
        votes: List[Tuple[str, Event]] = []
        for site in begun:
            votes.append((site, self._expect(spec.txn, f"agent:{site}", "vote")))
            self._send(MsgType.PREPARE, spec.txn, site, sn=sn, deadline=deadline)
        ready_sites: List[str] = []
        silent_sites: List[str] = []
        for site, wait in votes:
            reply = yield self._race(wait, self.timeouts.vote_timeout)
            if reply is None:
                # No vote: count the silence as a REFUSE — but unlike a
                # refusing site (which already aborted itself), a silent
                # one may recover into the prepared state, so it must be
                # in the rollback set.
                self.vote_timeouts += 1
                silent_sites.append(site)
                outcome.refusing_sites.append(site)
                if outcome.reason is None:
                    outcome.reason = RefusalReason.SITE_UNREACHABLE
            elif reply.type is MsgType.READY:
                ready_sites.append(site)
            else:
                outcome.refusing_sites.append(site)
                if outcome.reason is None:
                    outcome.reason = reply.reason

        if outcome.refusing_sites:
            yield from self._global_abort(
                spec,
                ready_sites + silent_sites,
                outcome,
                outcome.reason,
                None,
                record=True,
            )
            return outcome
        if deadline is not None and self.kernel.now >= deadline:
            # The deadline expired while the votes were in flight: all
            # participants are prepared, none has committed — rolling
            # back is still safe, and committing would be useless.
            self.deadline_aborts += 1
            yield from self._global_abort(
                spec, begun, outcome, RefusalReason.DEADLINE_EXPIRED, None
            )
            return outcome
        giveups = self._giveups.get(spec.txn)
        if giveups:
            # A participant exhausted its resubmission budget while the
            # decision was still open: honour the escalation.  (After
            # this point the commit is logged and GIVEUPs are ignored —
            # the agent keeps resubmitting until COMMIT lands.)
            self.giveup_aborts += 1
            yield from self._global_abort(
                spec,
                begun,
                outcome,
                RefusalReason.RESUBMIT_BUDGET,
                min(giveups),
            )
            return outcome

        # -- decision: global commit -------------------------------------
        self._log_decision(spec.txn, True, sn, begun)
        self.history.record_global_commit(self.kernel.now, spec.txn)
        if self.kill_probe is not None:
            self.kill_probe("decision_logged", spec.txn)
        acks: List[Tuple[str, Event]] = []
        half = (len(begun) + 1) // 2
        for index, site in enumerate(begun):
            acks.append((site, self._expect(spec.txn, f"agent:{site}", "commit-ack")))
            self._send(MsgType.COMMIT, spec.txn, site)
            if (
                self.kill_probe is not None
                and len(begun) >= 2
                and index + 1 == half
            ):
                self.kill_probe("mid_broadcast", spec.txn)
        for site, wait in acks:
            yield from self._await_ack(
                spec.txn, site, "commit-ack", MsgType.COMMIT, wait
            )
        self._log_end(spec.txn)
        outcome.committed = True
        outcome.finished_at = self.kernel.now
        self.committed += 1
        if self.breakers is not None:
            for site in begun:
                self.breakers.record_success(site, self.kernel.now)
        if self.scheduler is not None:
            self.scheduler.on_end(spec.txn, committed=True)
        return outcome

    def _global_abort(
        self,
        spec: GlobalTransactionSpec,
        rollback_sites: List[str],
        outcome: GlobalOutcome,
        reason: Optional[RefusalReason],
        failing_site: Optional[str],
        record: bool = True,
    ):
        """Record ``A_k`` and roll back every participant that needs it."""
        outcome.reason = outcome.reason or reason or RefusalReason.REQUESTED
        if failing_site is not None and failing_site not in outcome.refusing_sites:
            outcome.refusing_sites.append(failing_site)
        if record:
            self._log_decision(spec.txn, False, outcome.sn, rollback_sites)
            self.history.record_global_abort(
                self.kernel.now, spec.txn, reason=outcome.reason
            )
        acks: List[Tuple[str, Event]] = []
        for site in rollback_sites:
            acks.append(
                (site, self._expect(spec.txn, f"agent:{site}", "rollback-ack"))
            )
            self._send(MsgType.ROLLBACK, spec.txn, site)
        for site, wait in acks:
            yield from self._await_ack(
                spec.txn, site, "rollback-ack", MsgType.ROLLBACK, wait
            )
        if record:
            self._log_end(spec.txn)
        outcome.finished_at = self.kernel.now
        self.aborted += 1
        self.aborts_by_reason[outcome.reason] = (
            self.aborts_by_reason.get(outcome.reason, 0) + 1
        )
        if (
            self.breakers is not None
            and outcome.reason in _BREAKER_FAILURE_REASONS
        ):
            for site in outcome.refusing_sites:
                self.breakers.record_failure(site, self.kernel.now)
        if self.scheduler is not None:
            self.scheduler.on_end(spec.txn, committed=False)

    # ------------------------------------------------------------------
    # Federation: shard handoff (drain / adopt)
    # ------------------------------------------------------------------

    def begin_drain(self, shard: int, successor: Optional[str] = None) -> int:
        """Stop accepting new globals for ``shard`` (handoff phase 1).

        In-flight globals keep running — the handoff waits for
        :meth:`shard_inflight` to reach zero (or a timeout; the epoch
        fence makes forcing safe).  Returns the current in-flight count.
        """
        self._draining.add(shard)
        if successor is not None:
            self._drain_target[shard] = successor
        return self.shard_inflight(shard)

    def end_drain(self, shard: int) -> None:
        """Handoff finished (or was abandoned): drop the drain mark."""
        self._draining.discard(shard)
        self._drain_target.pop(shard, None)

    def shard_inflight(self, shard: int) -> int:
        return self._shard_inflight.get(shard, 0)

    def shard_inflight_by_shard(self) -> Dict[int, int]:
        """Live per-shard gauge (only shards that ever saw traffic)."""
        return {s: n for s, n in self._shard_inflight.items() if n > 0}

    def adopt_shard(self, shard: int, epoch: int) -> None:
        """Take ownership of ``shard`` at ``epoch`` (handoff phase 2).

        Forced into the decision log before any BEGIN is stamped with
        the new epoch: a recovered successor must keep claiming at
        least this epoch, or the agents' fence would reject it.
        """
        if self.decision_log is not None:
            self.decision_log.log_shard_epoch(shard, epoch)

    # ------------------------------------------------------------------
    # Recovery: finishing in-doubt decisions from the decision log
    # ------------------------------------------------------------------

    def resume_in_doubt(self) -> int:
        """Re-drive delivery of every logged-but-unfinished decision.

        A coordinator (this one restarted, or a successor built with
        ``takeover=True`` on the dead one's address and decision log)
        calls this after opening the decision log: each DECISION record
        without a matching END is re-sent to its participant sites —
        COMMIT for sealed commits, ROLLBACK for sealed aborts — until
        all acks arrive, then the END record is written.  Outcome
        counters and the history are *not* touched: the original
        coordinator recorded those before (or while) the decision was
        forced; only delivery was interrupted.

        Returns the number of in-doubt transactions being re-driven.
        """
        if self.decision_log is None:
            return 0
        pending = self.decision_log.in_doubt()
        for decision in pending:
            Process(
                self.kernel,
                self._finish_decision(decision),
                name=f"resume:{decision.txn}",
            )
        return len(pending)

    def _finish_decision(self, decision):
        msg_type = MsgType.COMMIT if decision.committed else MsgType.ROLLBACK
        kind = "commit-ack" if decision.committed else "rollback-ack"
        acks: List[Tuple[str, Event]] = []
        for site in decision.sites:
            acks.append(
                (site, self._expect(decision.txn, f"agent:{site}", kind))
            )
            self._send(msg_type, decision.txn, site)
        for site, wait in acks:
            yield from self._await_ack(decision.txn, site, kind, msg_type, wait)
        self._log_end(decision.txn)
