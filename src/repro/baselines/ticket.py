"""The predefined-total-order ("ticket") baseline — system S19.

Sec. 5.2 of the paper considers — and rejects — guaranteeing a unique
commit order by "pick[ing] transaction identifiers from a totally
ordered set used by each Certifier", citing Elmagarmid & Du's paradigm.
The objection: *"it would require all global transactions to be
serialized in the same order even if they could not have caused any
problems"*, and when local systems serialize transactions differently
from the predefined order, transactions "become aborted in vain".

We realize the scheme with two deviations from 2CM, both through
existing switches:

* the serial number is drawn **at BEGIN time** from a **central
  counter**, so SN order is submission order — fixed before anyone
  knows the real serialization order;
* prepare/commit certification then enforce that predefined order:
  a transaction whose PREPARE arrives after a younger ticket already
  committed locally is refused (aborted in vain — the measurable
  restrictiveness of E7), and commits wait for all older tickets at the
  site.

Everything else (agents, resubmission, alive intervals) matches 2CM, so
the comparison isolates exactly the ordering policy.
"""

from __future__ import annotations

from repro.core.dtm import MultidatabaseSystem, SystemConfig


def build_ticket_system(**kwargs) -> MultidatabaseSystem:
    """A system running the ticket method (sugar over the preset)."""
    kwargs.setdefault("method", "ticket")
    if "sites" in kwargs:
        kwargs["sites"] = tuple(kwargs["sites"])
    return MultidatabaseSystem(SystemConfig(**kwargs))
