"""Baseline transaction-management methods (systems S17–S19).

* :mod:`repro.baselines.cgm` — the Commit Graph Method of Breitbart,
  Silberschatz & Thompson (SIGMOD 1990), the paper's main comparator: a
  *centralized* scheduler with global coarse-granularity strict 2PL and
  a bipartite commit graph whose loops veto commits.
* :mod:`repro.baselines.naive` — resubmission without certification;
  exhibits exactly the anomalies (H1, H2, H3) the certifier exists to
  prevent.
* :mod:`repro.baselines.ticket` — a predefined-total-order scheme in
  the spirit of Elmagarmid & Du, which the paper rejects as overly
  restrictive ("it would require all global transactions to be
  serialized in the same order even if they could not have caused any
  problems").

The naive and ticket baselines reuse the 2CM machinery with different
feature sets (see ``repro.core.dtm.certifier_config_for``); this package
provides their documented constructors so experiments read naturally.
"""

from repro.baselines.cgm import CGMScheduler
from repro.baselines.naive import build_naive_system
from repro.baselines.ticket import build_ticket_system

__all__ = ["CGMScheduler", "build_naive_system", "build_ticket_system"]
