"""The Commit Graph Method (CGM) baseline — system S17.

Reimplementation of the method of Breitbart, Silberschatz & Thompson,
"Reliable Transaction Management in a Multidatabase System" (SIGMOD
1990), to the level of detail the paper's Sec. 6 comparison needs:

* **centralized scheduling** — a single :class:`CGMScheduler` instance
  serves every coordinator (the architectural contrast to the fully
  decentralized 2CM);
* **global strict 2PL at table granularity** — each DML command first
  acquires a global lock on ``(site, table)`` (S for reads, X for
  updates), held until the global transaction ends.  This is the
  "coarse granularity (e.g. site, database or table) locking" the paper
  says a contemporary implementation would need, and it protects
  against global view distortion without per-site certifiers;
* **commit graph admission** — an undirected bipartite graph with
  transaction nodes and site nodes; an edge joins ``T`` and ``S`` while
  ``T``'s subtransaction at ``S`` is in the prepared state.  A commit is
  admitted only if adding the transaction's edges keeps the graph
  loop-free; otherwise the commit *waits* (and times out into an abort)
  — the site-granularity conservatism the restrictiveness experiment E7
  measures.

Like 2CM, CGM recovers failed subtransactions by resubmission (our
agents do that regardless of method); unlike 2CM it needs no alive
intervals, serial numbers or commit certification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.common.errors import RefusalReason, TransactionAborted
from repro.common.ids import SubtxnId, TxnId
from repro.core.coordinator import Scheduler
from repro.kernel.events import Event, EventHandle, EventKernel
from repro.ldbs.commands import Command
from repro.ldbs.locks import LockManager, LockMode


@dataclass(frozen=True)
class CGMPartition:
    """CGM's static data partition (Breitbart et al., Sec. 3 there).

    ``globally_updatable_tables`` is the GU set at table granularity;
    everything else is locally updatable (LU).  The rules the paper's
    Sec. 6 summarizes:

    * local transactions may update only the LU set (enforced at the
      LTM through :class:`~repro.ldbs.dlu.BoundDataGuard`'s static
      denial list, wired by the system builder);
    * global transactions may update only the GU set;
    * a global transaction that updates anything may not read the LU
      set ("the results of the local transactions are not readily
      available to global transactions").
    """

    globally_updatable_tables: frozenset

    @staticmethod
    def of(*tables: str) -> "CGMPartition":
        return CGMPartition(globally_updatable_tables=frozenset(tables))

    def is_gu(self, table: str) -> bool:
        return table in self.globally_updatable_tables


@dataclass
class _Admission:
    txn: TxnId
    sites: List[str]
    event: Event
    timeout_handle: Optional[EventHandle] = None


class CGMScheduler(Scheduler):
    """The centralized DTM brain of the CGM baseline."""

    def __init__(
        self,
        kernel: EventKernel,
        timeout: float = 400.0,
        partition: Optional[CGMPartition] = None,
    ) -> None:
        self._kernel = kernel
        self.timeout = timeout
        self.partition = partition
        #: Global table-granularity lock manager.  Owners are synthetic
        #: SubtxnIds at the pseudo-site "@global".
        self.global_locks = LockManager(kernel, default_timeout=timeout)
        #: Commit graph: transaction -> sites it has prepared edges to.
        self._edges: Dict[TxnId, Set[str]] = {}
        self._waiting: List[_Admission] = []
        #: Partition-rule 3 bookkeeping: per-transaction flags.
        self._updated: Set[TxnId] = set()
        self._read_lu: Set[TxnId] = set()
        self.admissions = 0
        self.admission_waits = 0
        self.admission_timeouts = 0
        self.partition_violations = 0

    # ------------------------------------------------------------------
    # Global locking (before every command)
    # ------------------------------------------------------------------

    def _owner(self, txn: TxnId) -> SubtxnId:
        return SubtxnId(txn, "@global", 0)

    def before_command(
        self, kernel: EventKernel, txn: TxnId, site: str, command: Command
    ) -> Event:
        violation = self._partition_check(txn, command)
        if violation is not None:
            self.partition_violations += 1
            event = Event(kernel, name=f"cgm-partition:{txn}")
            event.fail(
                TransactionAborted(RefusalReason.PARTITION, violation)
            )
            return event
        mode = LockMode.X if command.is_update() else LockMode.S
        resource = ("gtable", (site, command.table))
        return self.global_locks.acquire(self._owner(txn), resource, mode)

    def _partition_check(self, txn: TxnId, command: Command) -> Optional[str]:
        """CGM partition rules for *global* transactions."""
        if self.partition is None:
            return None
        is_lu = not self.partition.is_gu(command.table)
        if command.is_update():
            if is_lu:
                return (
                    f"global update of locally-updatable table "
                    f"{command.table!r}"
                )
            self._updated.add(txn)
            if txn in self._read_lu:
                return "updating transaction previously read the LU set"
        elif is_lu:
            self._read_lu.add(txn)
            if txn in self._updated:
                return "updating transaction may not read the LU set"
        return None

    # ------------------------------------------------------------------
    # Commit graph admission (before the prepare phase)
    # ------------------------------------------------------------------

    def before_prepare(
        self, kernel: EventKernel, txn: TxnId, sites: Sequence[str]
    ) -> Event:
        event = Event(kernel, name=f"cgm-admit:{txn}")
        admission = _Admission(txn=txn, sites=list(sites), event=event)
        if self._admissible(admission):
            self._admit(admission)
            event.succeed(None)
            return event
        self.admission_waits += 1
        admission.timeout_handle = kernel.schedule(
            self.timeout, lambda: self._admission_timeout(admission)
        )
        self._waiting.append(admission)
        return event

    def _admissible(self, admission: _Admission) -> bool:
        """Loop check: adding ``txn``'s edges must not close a cycle.

        Sites already connected to each other (through other prepared
        transactions) may not be bridged again: a transaction node with
        edges to two sites of one connected component closes a loop.
        """
        components = self._site_components()
        seen: Set[int] = set()
        for site in admission.sites:
            component = components.get(site, -1)
            if component == -1:
                continue  # isolated site: no loop possible through it
            if component in seen:
                return False
            seen.add(component)
        return True

    def _site_components(self) -> Dict[str, int]:
        """Connected components over site nodes induced by current edges."""
        parent: Dict[str, str] = {}

        def find(site: str) -> str:
            parent.setdefault(site, site)
            while parent[site] != site:
                parent[site] = parent[parent[site]]
                site = parent[site]
            return site

        for sites in self._edges.values():
            ordered = sorted(sites)
            for other in ordered[1:]:
                parent[find(ordered[0])] = find(other)
        labels: Dict[str, int] = {}
        numbering: Dict[str, int] = {}
        for site in parent:
            root = find(site)
            labels[site] = numbering.setdefault(root, len(numbering))
        return labels

    def _admit(self, admission: _Admission) -> None:
        self.admissions += 1
        self._edges[admission.txn] = set(admission.sites)

    # ------------------------------------------------------------------
    # Edge maintenance (driven by the agents' observers)
    # ------------------------------------------------------------------

    def note_prepared(self, txn: TxnId, site: str) -> None:
        """A subtransaction entered the prepared state (edge confirmed)."""
        if txn in self._edges:
            self._edges[txn].add(site)

    def note_finalized(self, txn: TxnId, site: str) -> None:
        """A subtransaction left the prepared state: drop its edge."""
        sites = self._edges.get(txn)
        if sites is None:
            return
        sites.discard(site)
        if not sites:
            del self._edges[txn]
        self._recheck_waiting()

    def on_end(self, txn: TxnId, committed: bool) -> None:
        """Transaction over: release global locks and any leftovers."""
        self._edges.pop(txn, None)
        self._updated.discard(txn)
        self._read_lu.discard(txn)
        self.global_locks.release_all(self._owner(txn))
        self._recheck_waiting()

    def _recheck_waiting(self) -> None:
        admitted: List[_Admission] = []
        for admission in self._waiting:
            if admission.event.done:
                admitted.append(admission)
                continue
            if self._admissible(admission):
                if admission.timeout_handle is not None:
                    admission.timeout_handle.cancel()
                self._admit(admission)
                admission.event.succeed(None)
                admitted.append(admission)
        for admission in admitted:
            self._waiting.remove(admission)

    def _admission_timeout(self, admission: _Admission) -> None:
        if admission.event.done:
            return
        if admission in self._waiting:
            self._waiting.remove(admission)
        self.admission_timeouts += 1
        admission.event.fail(
            TransactionAborted(
                RefusalReason.COMMIT_GRAPH_CYCLE,
                f"{admission.txn} would close a commit-graph loop over "
                f"{admission.sites}",
            )
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def edges(self) -> Dict[TxnId, Set[str]]:
        return {txn: set(sites) for txn, sites in self._edges.items()}

    def waiting_admissions(self) -> int:
        return len(self._waiting)
