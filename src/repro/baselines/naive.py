"""The naive-resubmission baseline — system S18.

"Naive" keeps the whole 2PC Agent architecture — the agent log, the
simulated prepared state, unilateral-abort detection and resubmission —
but switches **every certification check off**: PREPAREs are answered
READY regardless of alive-interval intersections or serial numbers, and
COMMITs are executed as soon as they arrive (resubmitting first if the
incarnation died).

This is exactly the strawman the paper's anomaly histories are built
against: with failures injected, the naive system reproduces

* **H1** — global view distortion: a resubmitted subtransaction reads a
  different view (and may decompose differently) than the original;
* **H2/H3** — local view distortion: local commits land in different
  orders at different sites, the commit-order graph ``CG(C(H))`` turns
  cyclic and local transactions observe non-serializable views.

Without failures the naive system is perfectly correct (the paper:
"If no unilateral aborts of prepared local subtransactions occur, then
no anomalies can occur"), which experiment E8 confirms as its zero-
failure data point.
"""

from __future__ import annotations

from repro.core.dtm import MultidatabaseSystem, SystemConfig


def build_naive_system(**kwargs) -> MultidatabaseSystem:
    """A system running the naive method (sugar over the preset)."""
    kwargs.setdefault("method", "naive")
    if "sites" in kwargs:
        kwargs["sites"] = tuple(kwargs["sites"])
    return MultidatabaseSystem(SystemConfig(**kwargs))
