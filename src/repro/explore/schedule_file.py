"""``.schedule`` files: a failing schedule you can check in and replay.

A schedule file is a small JSON document carrying everything needed to
reproduce one explored run bit-for-bit: the full
:class:`~repro.explore.harness.ExploreSpec` (config-matrix point,
workload knobs, fault budgets, mutant), the choice trace, the expected
history fingerprint, and — for the human reading the repro — the
violation reports and a rendering of each non-default decision.

``python -m repro explore --replay f.schedule`` re-runs the schedule
and fails unless the violation kinds *and* the fingerprint match.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.explore.harness import ExploreSpec, RunResult, run_once
from repro.explore.trace import TraceChooser, strip_trailing_defaults

FORMAT_VERSION = 1


def schedule_payload(
    result: RunResult,
    *,
    found_by: Optional[str] = None,
) -> Dict[str, object]:
    """The JSON document for one (usually shrunk) failing run."""
    return {
        "version": FORMAT_VERSION,
        "found_by": found_by,
        "spec": result.spec.to_dict(),
        "trace": strip_trailing_defaults(result.trace),
        "fingerprint": result.fingerprint,
        "violations": [v.to_dict() for v in result.violations],
        # Redundant with ``trace`` but human-readable: what actually
        # deviates from the default schedule.
        "deviations": [
            p.describe() for p in result.points if p.choice != 0
        ],
    }


def save_schedule(
    path: str,
    result: RunResult,
    *,
    found_by: Optional[str] = None,
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(schedule_payload(result, found_by=found_by), handle, indent=2)
        handle.write("\n")


def load_schedule(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported schedule version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    for key in ("spec", "trace"):
        if key not in data:
            raise ValueError(f"{path}: schedule file missing {key!r}")
    return data


@dataclass
class ReplayReport:
    """Replay of a schedule file, checked against what it promised."""

    result: RunResult
    expected_fingerprint: Optional[str]
    expected_kinds: Set[str]

    @property
    def fingerprint_matches(self) -> bool:
        return (
            self.expected_fingerprint is None
            or self.result.fingerprint == self.expected_fingerprint
        )

    @property
    def kinds_match(self) -> bool:
        if not self.expected_kinds:
            return self.result.ok
        return bool(self.expected_kinds & self.result.violation_kinds())

    @property
    def ok(self) -> bool:
        return self.fingerprint_matches and self.kinds_match

    def summary(self) -> str:
        lines: List[str] = []
        kinds = ",".join(sorted(self.result.violation_kinds())) or "none"
        lines.append(f"replayed {len(self.result.trace)} choices")
        lines.append(f"violations: {kinds}")
        lines.append(
            "fingerprint: "
            + ("match" if self.fingerprint_matches else "MISMATCH")
            + f" ({self.result.fingerprint[:12]})"
        )
        if not self.kinds_match:
            expected = ",".join(sorted(self.expected_kinds)) or "none"
            lines.append(f"expected violation kinds not reproduced: {expected}")
        return "\n".join(lines)


def replay_schedule(path: str) -> ReplayReport:
    """Re-run a schedule file and verify its promises hold."""
    data = load_schedule(path)
    spec = ExploreSpec.from_dict(dict(data["spec"]))
    trace = [int(c) for c in data["trace"]]
    result = run_once(spec, TraceChooser(trace))
    expected_kinds = {
        str(v["kind"]) for v in data.get("violations", []) if "kind" in v
    }
    return ReplayReport(
        result=result,
        expected_fingerprint=data.get("fingerprint"),
        expected_kinds=expected_kinds,
    )
