"""Seeded regressions the explorer must find — the harness's proof.

Each mutant deliberately reintroduces a protocol bug the 2CM machinery
exists to prevent, patched into a *built* system behind an explicit
flag (never reachable from production configs).  CI runs the explorer
against every mutant and fails unless each one is found, shrunk, and
replayed — a silent oracle or a toothless search breaks the gate, not
just coverage numbers.

The three shipped mutants attack three different layers, and are
caught by three different checkers:

* ``cert-blind`` — prepare certification approves everything (the
  pre-certification "naive" behaviour the paper opens with).  One
  unilateral abort releases the LDBS locks while the 2PC Agent still
  simulates the prepared state; a conflicting transaction then
  prepares into the open window → the Correctness Invariant (part 1)
  fires, usually with a serializability violation in tow.
* ``refuse-blind`` — the coordinator miscounts a REFUSE vote as READY
  (a vote-tally off-by-one).  The refusing site already rolled back
  locally, the rest commit on the coordinator's say-so → atomic
  commitment fires.
* ``rollback-blind`` — the agent drops a ROLLBACK for a prepared
  subtransaction whose local incarnation is still healthy (a lost
  state-transition edge: "prepared and alive can only mean commit is
  coming", forgetting that a *remote* site's refusal aborts the global
  transaction too).  The prepared state never ends → the
  orphaned-PREPARED scan fires and the run fails to quiesce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.agent import AgentPhase
from repro.core.certifier import CertDecision
from repro.core.dtm import MultidatabaseSystem
from repro.net.messages import MsgType


@dataclass(frozen=True)
class Mutant:
    """One reintroduced bug: a name, its story, and the patch."""

    name: str
    description: str
    #: The violation kinds the oracle is expected to report (any match
    #: counts as "found").
    expected_kinds: tuple
    apply: Callable[[MultidatabaseSystem], None]


def _apply_cert_blind(system: MultidatabaseSystem) -> None:
    approve = CertDecision(ok=True)
    for certifier in system.certifiers.values():
        certifier.certify_prepare = (  # type: ignore[method-assign]
            lambda txn, sn, candidate, access_set=None, _ok=approve: _ok
        )


def _apply_refuse_blind(system: MultidatabaseSystem) -> None:
    for coordinator in system.coordinators:
        original = coordinator._on_message

        def patched(msg, _original=original):
            if msg.type is MsgType.REFUSE:
                msg.type = MsgType.READY
                msg.reason = None
            _original(msg)

        # The network holds the bound method captured at registration,
        # so re-register the wrapper rather than patching the attribute.
        system.network.register(coordinator.address, patched, replace=True)


def _apply_rollback_blind(system: MultidatabaseSystem) -> None:
    for site in system.config.sites:
        agent = system.agent(site)
        original = agent._on_rollback

        def patched(msg, _agent=agent, _original=original):
            state = _agent._txns.get(msg.txn)
            if (
                state is not None
                and state.phase is AgentPhase.PREPARED
                and not state.uan
                and not state.resubmitting
                and _agent.ltm.is_alive(state.local.subtxn)
            ):
                # "A healthy prepared subtransaction can only be told to
                # commit" — the decision-phase abort edge (some *other*
                # site refused) is dropped, the coordinator is pacified
                # with an ack, and the prepared state never ends.
                _agent._reply(msg, MsgType.ROLLBACK_ACK)
                return
            _original(msg)

        agent._on_rollback = patched  # type: ignore[method-assign]


MUTANTS: Dict[str, Mutant] = {
    mutant.name: mutant
    for mutant in (
        Mutant(
            name="cert-blind",
            description=(
                "prepare certification approves everything; one unilateral "
                "abort lets a conflicting transaction prepare into the "
                "still-open prepared window (CI part 1)"
            ),
            expected_kinds=("ci.1", "ci.2", "audit.viewser", "audit.distortion"),
            apply=_apply_cert_blind,
        ),
        Mutant(
            name="refuse-blind",
            description=(
                "the coordinator counts a REFUSE vote as READY; the refusing "
                "site rolled back, the others commit (atomicity)"
            ),
            expected_kinds=("atomicity",),
            apply=_apply_refuse_blind,
        ),
        Mutant(
            name="rollback-blind",
            description=(
                "the agent drops ROLLBACK for a healthy prepared "
                "subtransaction (a remote refusal aborts the global "
                "transaction, but this site never lets go); the prepared "
                "state never ends (orphaned-PREPARED)"
            ),
            expected_kinds=("orphaned-prepared", "quiesce"),
            apply=_apply_rollback_blind,
        ),
    )
}


def get_mutant(name: str) -> Mutant:
    try:
        return MUTANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutant {name!r}; known: {sorted(MUTANTS)}"
        ) from None
