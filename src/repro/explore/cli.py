"""``python -m repro explore`` — search, shrink, replay, gate.

Modes (mutually exclusive):

* default — explore one spec (or the whole config matrix) with one
  strategy (or all three), shrink any failure, optionally write
  ``.schedule`` files; exit 1 on violation.
* ``--mutant NAME --expect-find`` — the CI gate: the run *fails unless*
  the explorer finds the seeded regression (and the shrunk trace
  replays with the same violation kinds and fingerprint).
* ``--replay FILE`` — re-run a ``.schedule`` file; exit 0 iff the
  recorded violation kinds and history fingerprint reproduce.
* ``--list-mutants`` — show the seeded regressions.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional, Tuple

from repro.explore.harness import ExploreSpec, matrix, run_once
from repro.explore.mutants import MUTANTS
from repro.explore.schedule_file import replay_schedule, save_schedule
from repro.explore.shrink import ShrinkResult, shrink
from repro.explore.strategies import STRATEGIES, Exploration, explore
from repro.explore.trace import TraceChooser


def _spec_from_args(args) -> ExploreSpec:
    return ExploreSpec(
        seed=args.seed,
        certifier_engine=args.engine,
        durability=args.durability,
        n_coordinators=args.coordinators,
        mutant=args.mutant,
    )


def _schedule_path(out_dir: str, spec: ExploreSpec, strategy: str) -> str:
    tag = f"{strategy}-{spec.certifier_engine}"
    tag += "-dur" if spec.durability else ""
    tag += f"-c{spec.n_coordinators}"
    if spec.mutant:
        tag += f"-{spec.mutant}"
    return os.path.join(out_dir, f"{tag}.schedule")


def _explore_one(
    spec: ExploreSpec, strategy: str, args
) -> Tuple[Exploration, Optional[ShrinkResult]]:
    kwargs = {"stop_on_failure": True}
    if args.runs is not None:
        kwargs["max_runs"] = args.runs
    if args.time_budget is not None:
        kwargs["time_budget"] = args.time_budget
    if strategy in ("random", "coverage"):
        kwargs["seed"] = args.seed
    if strategy == "dfs" and args.max_deviations is not None:
        kwargs["max_deviations"] = args.max_deviations

    exploration = explore(spec, strategy, **kwargs)
    print(f"[{spec.describe()}] {exploration.summary()}")

    shrunk: Optional[ShrinkResult] = None
    if exploration.found and not args.no_shrink:
        shrunk = shrink(exploration.failures[0])
        print(shrunk.summary())
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = _schedule_path(args.out, spec, strategy)
            save_schedule(path, shrunk.minimized, found_by=strategy)
            print(f"wrote {path}")
    return exploration, shrunk


def _cmd_explore(args) -> int:
    if args.list_mutants:
        for mutant in MUTANTS.values():
            kinds = ",".join(mutant.expected_kinds)
            print(f"{mutant.name}: {mutant.description} [{kinds}]")
        return 0

    if args.replay:
        report = replay_schedule(args.replay)
        print(report.summary())
        return 0 if report.ok else 1

    base = _spec_from_args(args)
    specs = matrix(base) if args.matrix else [base]
    strategies = (
        list(STRATEGIES) if args.strategy == "all" else [args.strategy]
    )

    explorations: List[dict] = []
    found_any = False
    replays_ok = True
    for spec in specs:
        for strategy in strategies:
            exploration, shrunk = _explore_one(spec, strategy, args)
            record = {
                "spec": spec.to_dict(),
                "strategy": strategy,
                "runs": exploration.runs,
                "elapsed": round(exploration.elapsed, 3),
                "stopped": exploration.stopped,
                "found": exploration.found,
                "coverage": len(exploration.coverage),
            }
            if exploration.found:
                found_any = True
                first = exploration.failures[0]
                record["violations"] = [
                    v.to_dict() for v in first.violations
                ]
                if shrunk is not None:
                    record["shrunk_trace"] = shrunk.trace
                    record["shrink_ratio"] = round(shrunk.ratio, 4)
                    # A shrunk repro is worthless unless it replays:
                    # same violation kinds, byte-identical fingerprint.
                    again = run_once(spec, TraceChooser(shrunk.trace))
                    replayed = (
                        again.fingerprint == shrunk.minimized.fingerprint
                        and again.violation_kinds() & shrunk.kinds
                    )
                    record["replay_ok"] = bool(replayed)
                    if not replayed:
                        replays_ok = False
                        print("REPLAY MISMATCH for shrunk trace")
                    else:
                        print(
                            "replay ok: fingerprint "
                            f"{again.fingerprint[:12]} reproduced"
                        )
            explorations.append(record)

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(
                {"explorations": explorations, "found": found_any},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.expect_find:
        if not found_any:
            print(
                "EXPECTED a violation (seeded mutant "
                f"{args.mutant!r}) but the explorer found none"
            )
            return 1
        if not replays_ok:
            print("mutant found but its shrunk repro did not replay")
            return 1
        print(f"gate ok: mutant {args.mutant!r} found, shrunk, replayed")
        return 0
    return 1 if found_any or not replays_ok else 0


def add_explore_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "explore",
        help="deterministic schedule explorer (search, shrink, replay)",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--strategy",
        choices=[*STRATEGIES, "all"],
        default="dfs",
        help="search strategy (default: dfs)",
    )
    parser.add_argument(
        "--runs", type=int, default=None, help="max runs per strategy"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        help="wall-clock budget per strategy, seconds",
    )
    parser.add_argument(
        "--max-deviations",
        type=int,
        default=None,
        help="DFS deviation bound (default 2)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--engine",
        choices=("naive", "indexed"),
        default="naive",
        help="certifier engine for the explored system",
    )
    parser.add_argument(
        "--durability",
        action="store_true",
        help="explore with the WAL-backed durability layer on",
    )
    parser.add_argument(
        "--coordinators",
        type=int,
        default=1,
        help="federation fan-out (n_coordinators)",
    )
    parser.add_argument(
        "--matrix",
        action="store_true",
        help="explore the full engine x durability x coordinators matrix",
    )
    parser.add_argument(
        "--mutant",
        choices=sorted(MUTANTS),
        default=None,
        help="patch in a seeded regression (the harness's self-test)",
    )
    parser.add_argument(
        "--expect-find",
        action="store_true",
        help="CI gate: exit 1 unless a violation IS found",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging the failing trace",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory for .schedule files of shrunk failures",
    )
    parser.add_argument(
        "--json", default=None, help="write a machine-readable summary here"
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay a .schedule file and verify it reproduces",
    )
    parser.add_argument(
        "--list-mutants",
        action="store_true",
        help="list the seeded regressions and exit",
    )
    parser.set_defaults(run=_cmd_explore)
