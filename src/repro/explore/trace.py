"""Choice traces: the recorded decisions of one simulated run.

Every nondeterministic decision a run makes flows through
:meth:`~repro.kernel.events.EventKernel.choose`, which asks the
installed *chooser* to pick one of ``n`` options.  A chooser therefore
fully determines a run, and the flat list of picks it made — the
*choice trace* — replays it: feed the same trace back through a
:class:`TraceChooser` and the simulation takes the identical path,
event for event, byte for byte.

Option 0 is always the system's default behaviour, so the all-zero
trace is the fault-free golden run and *shrinking* a failing trace
means pushing entries toward 0 and dropping suffixes (a shorter trace
pads with defaults).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence


@dataclass(frozen=True)
class ChoicePoint:
    """One recorded decision: what was asked, and what was picked."""

    index: int
    kind: str
    n: int
    choice: int
    context: Optional[str] = None

    def describe(self) -> str:
        ctx = f" ({self.context})" if self.context else ""
        return f"[{self.index}] {self.kind}: {self.choice}/{self.n}{ctx}"


class RecordingChooser:
    """Base chooser: records every decision as a :class:`ChoicePoint`.

    Subclasses implement :meth:`_decide`; the recorded pick sequence is
    available as :attr:`trace` afterwards.
    """

    def __init__(self) -> None:
        self.points: List[ChoicePoint] = []

    def choose(self, kind: str, n: int, context: Any = None) -> int:
        index = len(self.points)
        choice = self._decide(kind, n, context, index)
        self.points.append(
            ChoicePoint(
                index=index,
                kind=kind,
                n=n,
                choice=choice,
                context=context if isinstance(context, str) else None,
            )
        )
        return choice

    def _decide(self, kind: str, n: int, context: Any, index: int) -> int:
        raise NotImplementedError

    @property
    def trace(self) -> List[int]:
        """The flat pick sequence (one int per decision, in order)."""
        return [p.choice for p in self.points]

    def deviations(self) -> List[ChoicePoint]:
        """The non-default decisions — the interesting part of a trace."""
        return [p for p in self.points if p.choice != 0]


class DefaultChooser(RecordingChooser):
    """Always picks option 0: the fault-free, seq-order default run."""

    def _decide(self, kind: str, n: int, context: Any, index: int) -> int:
        return 0


class TraceChooser(RecordingChooser):
    """Replays a recorded trace; past its end, every pick is default.

    Out-of-range entries (possible after shrinking shifted alignment)
    degrade to the default rather than erroring, so *any* int list is a
    valid — and still deterministic — trace.
    """

    def __init__(self, trace: Sequence[int]) -> None:
        super().__init__()
        self._replay = list(trace)

    def _decide(self, kind: str, n: int, context: Any, index: int) -> int:
        if index < len(self._replay):
            choice = self._replay[index]
            if 0 <= choice < n:
                return choice
        return 0


#: Per-decision-class probability of deviating from the default, used
#: by the random strategies.  Keys are matched by prefix against the
#: choice-point ``kind``; unlisted kinds use ``"*"``.  Tuned empirically:
#: unilateral aborts are the door into every interesting protocol race
#: (under rigorous 2PL a certification conflict *requires* a prior
#: abort-released lock), while wire faults mostly just shift timing —
#: a walk that sprays drops and delays drowns the conflict structure it
#: is trying to hit.
DEFAULT_DEVIATION_PROBS = {
    "tie": 0.03,
    "msg": 0.01,
    "crash": 0.01,
    "abort": 0.30,
    "*": 0.05,
}


def _prob_for(kind: str, probs: dict) -> float:
    head = kind.split(":", 1)[0]
    if head in probs:
        return probs[head]
    return probs.get("*", 0.1)


class UniformChooser(RecordingChooser):
    """Uniform over all options (including the default) — the plain
    fuzzing draw, used by the adversarial configuration search."""

    def __init__(self, rng: random.Random) -> None:
        super().__init__()
        self._rng = rng

    def _decide(self, kind: str, n: int, context: Any, index: int) -> int:
        return self._rng.randrange(n)


class RandomChooser(RecordingChooser):
    """Seeded random walk: deviates from the default with a per-kind
    probability, uniformly among the non-default options."""

    def __init__(
        self,
        rng: random.Random,
        probs: Optional[dict] = None,
    ) -> None:
        super().__init__()
        self._rng = rng
        self._probs = dict(DEFAULT_DEVIATION_PROBS)
        if probs:
            self._probs.update(probs)

    def _decide(self, kind: str, n: int, context: Any, index: int) -> int:
        if self._rng.random() < _prob_for(kind, self._probs):
            return self._rng.randrange(1, n)
        return 0


class HybridChooser(RecordingChooser):
    """Replay a prefix exactly, then continue as a random walk.

    The coverage-guided strategy mutates interesting traces this way:
    keep the prefix that reached a novel state, explore fresh suffixes
    behind it.
    """

    def __init__(
        self,
        prefix: Sequence[int],
        rng: random.Random,
        probs: Optional[dict] = None,
    ) -> None:
        super().__init__()
        self._prefix = list(prefix)
        self._rng = rng
        self._probs = dict(DEFAULT_DEVIATION_PROBS)
        if probs:
            self._probs.update(probs)

    def _decide(self, kind: str, n: int, context: Any, index: int) -> int:
        if index < len(self._prefix):
            choice = self._prefix[index]
            return choice if 0 <= choice < n else 0
        if self._rng.random() < _prob_for(kind, self._probs):
            return self._rng.randrange(1, n)
        return 0


def strip_trailing_defaults(trace: Sequence[int]) -> List[int]:
    """Drop the all-default suffix — replay pads it back implicitly."""
    out = list(trace)
    while out and out[-1] == 0:
        out.pop()
    return out
