"""Delta-debugging shrinker: a failing trace down to its essence.

A trace is fully characterized by its *deviations* — the choice points
where it departs from the all-default schedule (replay pads defaults
past the end, and out-of-range picks degrade to default).  Shrinking
therefore works on the sparse deviation set, not the flat list:

1. drop the all-default suffix (free — replay regenerates it);
2. *ddmin* over the deviations: try removing ever-smaller chunks of
   non-default picks, keeping any candidate that still reproduces a
   violation of the original kind(s);
3. a final one-at-a-time pass guarantees 1-minimality: every surviving
   deviation is individually load-bearing.

The result is typically one or two deviations — "abort t3@b just after
its prepare, then abort t5@a" — short enough to read as a repro recipe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.explore.harness import ExploreSpec, RunResult, run_once
from repro.explore.trace import TraceChooser, strip_trailing_defaults


@dataclass
class ShrinkResult:
    """The minimized counterexample and how it was reached."""

    original: RunResult
    minimized: RunResult
    #: Replay runs spent shrinking.
    runs: int = 0
    elapsed: float = 0.0
    #: Violation kinds the shrink preserved (⊆ the original's kinds).
    kinds: Set[str] = field(default_factory=set)

    @property
    def trace(self) -> List[int]:
        return strip_trailing_defaults(self.minimized.trace)

    @property
    def ratio(self) -> float:
        """Shrunk choice count over original choice count."""
        original = len(self.original.trace)
        return len(self.trace) / original if original else 0.0

    def summary(self) -> str:
        deviations = [p for p in self.minimized.points if p.choice != 0]
        lines = [
            f"shrunk {len(self.original.trace)} -> {len(self.trace)} choices "
            f"({self.ratio:.0%}), {len(deviations)} deviation(s), "
            f"{self.runs} replays in {self.elapsed:.1f}s:",
        ]
        lines.extend(f"  {p.describe()}" for p in deviations)
        return "\n".join(lines)


def _trace_from(deviations: Dict[int, int]) -> List[int]:
    """The shortest flat trace realizing a sparse deviation set."""
    if not deviations:
        return []
    length = max(deviations) + 1
    trace = [0] * length
    for index, choice in deviations.items():
        trace[index] = choice
    return trace


def shrink(
    failing: RunResult,
    *,
    max_runs: int = 400,
    time_budget: Optional[float] = None,
    target_kinds: Optional[Set[str]] = None,
) -> ShrinkResult:
    """ddmin a failing run's trace to a minimal repro.

    A candidate is accepted iff its replay reports at least one
    violation whose kind is in ``target_kinds`` (default: the kinds the
    original run reported) — the shrink preserves *the* bug, not just
    *a* bug.
    """
    spec: ExploreSpec = failing.spec
    kinds = set(target_kinds or failing.violation_kinds())
    deadline = time.monotonic() + time_budget if time_budget else None
    started = time.monotonic()
    runs = 0

    best_devs: Dict[int, int] = {
        p.index: p.choice for p in failing.points if p.choice != 0
    }
    best_run = failing

    def out_of_budget() -> bool:
        return runs >= max_runs or (
            deadline is not None and time.monotonic() >= deadline
        )

    def attempt(deviations: Dict[int, int]) -> Optional[RunResult]:
        nonlocal runs
        runs += 1
        result = run_once(spec, TraceChooser(_trace_from(deviations)))
        if result.violation_kinds() & kinds:
            return result
        return None

    # -- ddmin over the deviation set ----------------------------------
    indices: List[int] = sorted(best_devs)
    granularity = 2
    while len(indices) >= 2 and not out_of_budget():
        chunk = max(1, len(indices) // granularity)
        reduced = False
        start = 0
        while start < len(indices) and not out_of_budget():
            keep = indices[:start] + indices[start + chunk :]
            candidate = {i: best_devs[i] for i in keep}
            result = attempt(candidate)
            if result is not None:
                indices = keep
                best_devs = candidate
                best_run = result
                granularity = max(granularity - 1, 2)
                reduced = True
            else:
                start += chunk
        if not reduced:
            if granularity >= len(indices):
                break
            granularity = min(len(indices), granularity * 2)

    # -- 1-minimality: every surviving deviation is load-bearing -------
    for index in sorted(best_devs):
        if out_of_budget():
            break
        if len(best_devs) <= 1:
            break
        candidate = {i: c for i, c in best_devs.items() if i != index}
        result = attempt(candidate)
        if result is not None:
            best_devs = candidate
            best_run = result

    if best_run is failing:
        # Even a no-op shrink re-runs once so the minimized result's
        # trace is the *replayed* (stripped) form, not the original's.
        result = attempt(dict(best_devs))
        if result is not None:
            best_run = result

    return ShrinkResult(
        original=failing,
        minimized=best_run,
        runs=runs,
        elapsed=time.monotonic() - started,
        kinds=kinds & best_run.violation_kinds(),
    )
