"""One explored run: build, drive, oracle, fingerprint.

:func:`run_once` is the explorer's unit of work — a fully wired
system with the choice-driven nemesis installed, a small contended
workload, and the invariant battery as the oracle over the terminal
state.  Everything nondeterministic flows through the chooser, so
``run_once(spec, TraceChooser(trace))`` is a *replay*: identical
choices, identical history, identical SHA-256 fingerprint.
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.coordinator import CoordinatorTimeouts
from repro.core.dtm import MultidatabaseSystem, SystemConfig
from repro.explore.mutants import get_mutant
from repro.explore.nemesis import (
    ChoiceAbortInjector,
    ChoiceCrashInjector,
    ChoiceNetwork,
    FaultBudget,
)
from repro.explore.trace import ChoicePoint
from repro.history.invariants import Violation
from repro.sim.failures import invariant_battery, wal_battery
from repro.workload.generator import WorkloadConfig, WorkloadGenerator


@dataclass(frozen=True)
class ExploreSpec:
    """One point in the exploration config matrix, workload included.

    The workload is deliberately small and contended (few keys, hot
    set, mostly updates, overlapping arrivals): exploration wins by
    trying many interleavings of a dense conflict structure, not by
    pushing volume through a sparse one.
    """

    seed: int = 0
    sites: Tuple[str, ...] = ("a", "b")
    n_global: int = 6
    n_local: int = 2
    #: Config matrix dimensions (certifier engine × durability ×
    #: federation fan-out).
    certifier_engine: str = "naive"
    durability: bool = False
    n_coordinators: int = 1
    method: str = "2cm"
    #: Name of a seeded regression to patch in (None = healthy system).
    mutant: Optional[str] = None
    #: Fault budgets for the choice-driven nemesis.
    budget: FaultBudget = field(default_factory=FaultBudget)
    #: Workload contention knobs.
    keys_per_site: int = 4
    hot_keys: int = 2
    hot_access_fraction: float = 0.7
    update_fraction: float = 0.8
    mean_interarrival: float = 25.0
    #: Safety bounds: simulated-time horizon and event cap per run.
    horizon: float = 20_000.0
    max_events: int = 200_000

    def describe(self) -> str:
        parts = [
            f"seed={self.seed}",
            f"engine={self.certifier_engine}",
            f"durability={'on' if self.durability else 'off'}",
            f"coordinators={self.n_coordinators}",
        ]
        if self.mutant:
            parts.append(f"mutant={self.mutant}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "sites": list(self.sites),
            "n_global": self.n_global,
            "n_local": self.n_local,
            "certifier_engine": self.certifier_engine,
            "durability": self.durability,
            "n_coordinators": self.n_coordinators,
            "method": self.method,
            "mutant": self.mutant,
            "budget": {
                "drops": self.budget.drops,
                "dups": self.budget.dups,
                "delays": self.budget.delays,
                "partitions": self.budget.partitions,
                "crashes": self.budget.crashes,
                "aborts": self.budget.aborts,
            },
            "keys_per_site": self.keys_per_site,
            "hot_keys": self.hot_keys,
            "hot_access_fraction": self.hot_access_fraction,
            "update_fraction": self.update_fraction,
            "mean_interarrival": self.mean_interarrival,
            "horizon": self.horizon,
            "max_events": self.max_events,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ExploreSpec":
        budget_data = dict(data.get("budget", {}))
        known = {f for f in ExploreSpec.__dataclass_fields__}
        kwargs = {k: v for k, v in data.items() if k in known and k != "budget"}
        kwargs["sites"] = tuple(kwargs.get("sites", ("a", "b")))
        return ExploreSpec(budget=FaultBudget(**budget_data), **kwargs)


@dataclass
class RunResult:
    """Everything one explored run produced."""

    spec: ExploreSpec
    points: List[ChoicePoint]
    trace: List[int]
    violations: List[Violation]
    fingerprint: str
    coverage: FrozenSet[str]
    committed: int = 0
    aborted: int = 0
    sim_time: float = 0.0
    pending: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation_kinds(self) -> Set[str]:
        return {v.kind for v in self.violations}


def build_system(spec: ExploreSpec, durability_root: Optional[str] = None):
    """Wire one system with the choice-driven nemesis installed."""
    durability = None
    if spec.durability:
        if durability_root is None:
            raise ValueError("durability spec needs a durability_root")
        from repro.durability.config import DurabilityConfig

        durability = DurabilityConfig(root=durability_root)

    budget = spec.budget.copy()

    def network_factory(kernel, config):
        return ChoiceNetwork(
            kernel,
            budget=budget,
            latency=config.latency,
            seed=config.seed,
        )

    system = MultidatabaseSystem(
        SystemConfig(
            sites=spec.sites,
            n_coordinators=spec.n_coordinators,
            method=spec.method,
            seed=spec.seed,
            certifier_engine=spec.certifier_engine,
            durability=durability,
            coordinator_timeouts=CoordinatorTimeouts(
                result_timeout=400.0,
                vote_timeout=400.0,
                ack_timeout=120.0,
                max_resends=50,
            ),
            network_factory=network_factory,
        )
    )
    ChoiceCrashInjector(system, budget)
    ChoiceAbortInjector(system, budget)
    if spec.mutant is not None:
        get_mutant(spec.mutant).apply(system)
    return system


def run_fingerprint(system, outcomes: Dict) -> str:
    """SHA-256 over the rendered history, per-txn outcomes and the
    quiescence time — byte-identical iff the runs are."""
    digest = hashlib.sha256()
    digest.update(system.history.render().encode())
    for txn in sorted(outcomes, key=str):
        outcome = outcomes[txn]
        line = f"{txn}={'committed' if outcome.committed else 'aborted'}"
        if not outcome.committed and outcome.reason is not None:
            line += f"({outcome.reason})"
        digest.update(line.encode())
    digest.update(f"{system.kernel.now:.6f}".encode())
    return digest.hexdigest()


def _coverage_of(system, outcomes, violations) -> FrozenSet[str]:
    """Bucketized protocol-state features for the coverage strategy."""
    from repro.sim.metrics import collect_metrics

    metrics = collect_metrics(system)
    features: Set[str] = set()
    for reason in metrics.aborts_by_reason:
        features.add(f"abort:{reason}")
    for reason in metrics.refusals_by_reason:
        features.add(f"refuse:{reason}")
    for name in (
        "resubmissions",
        "unilateral_aborts",
        "commit_delays",
        "lock_timeouts",
        "messages_lost",
        "messages_duplicated",
        "messages_spiked",
        "partition_drops",
        "agent_crashes",
        "agent_restarts",
        "dead_letters",
    ):
        value = getattr(metrics, name)
        if value:
            # Log-bucketed so "more of the same" is not novelty.
            bucket = value.bit_length() if isinstance(value, int) else 1
            features.add(f"{name}:{bucket}")
    committed = sum(1 for o in outcomes.values() if o.committed)
    features.add(f"committed:{committed}/{len(outcomes)}")
    for violation in violations:
        features.add(f"violation:{violation.kind}")
    return frozenset(features)


def run_once(spec: ExploreSpec, chooser) -> RunResult:
    """Build, explore, oracle — one deterministic run under ``chooser``."""
    durability_root = None
    if spec.durability:
        durability_root = tempfile.mkdtemp(prefix="repro-explore-")
    try:
        system = build_system(spec, durability_root)
        system.kernel.chooser = chooser

        workload = WorkloadGenerator(
            WorkloadConfig(
                sites=spec.sites,
                n_global=spec.n_global,
                n_local=spec.n_local,
                keys_per_site=spec.keys_per_site,
                hot_keys=spec.hot_keys,
                hot_access_fraction=spec.hot_access_fraction,
                update_fraction=spec.update_fraction,
                sites_min=len(spec.sites),
                sites_max=len(spec.sites),
                mean_interarrival=spec.mean_interarrival,
                seed=spec.seed,
            )
        ).generate()
        for site, tables in workload.initial_data.items():
            for table, rows in tables.items():
                system.load(site, table, rows)

        outcomes: Dict = {}
        violations: List[Violation] = []

        def submit_global(entry) -> None:
            completion = system.submit(entry.spec)

            def done(event) -> None:
                if event.error is not None:
                    violations.append(
                        Violation(
                            kind="coordinator-death",
                            detail=(
                                f"coordinator process for {entry.spec.txn} "
                                f"died: {event.error!r}"
                            ),
                            txns=(str(entry.spec.txn),),
                        )
                    )
                    return
                outcomes[entry.spec.txn] = event.value

            completion.subscribe(done)

        for entry in workload.globals_:
            system.kernel.schedule(entry.at, lambda e=entry: submit_global(e))
        for entry in workload.locals_:
            system.kernel.schedule(
                entry.at,
                lambda e=entry: system.submit_local(
                    e.site, e.commands, number=e.number, think_time=e.think_time
                ),
            )

        try:
            system.run(
                until=spec.horizon, max_events=spec.max_events, advance=False
            )
        except Exception as exc:  # a protocol bug surfacing as a crash
            violations.append(
                Violation(
                    kind="exception",
                    detail=f"unhandled {type(exc).__name__}: {exc}",
                    context={"type": type(exc).__name__},
                )
            )

        pending = system.kernel.pending
        if pending:
            violations.append(
                Violation(
                    kind="quiesce",
                    detail=(
                        f"run did not quiesce within the horizon "
                        f"({pending} events pending)"
                    ),
                    context={"pending": pending},
                )
            )

        violations.extend(invariant_battery(system, include_ci=True))
        system.kernel.chooser = None
        fingerprint = run_fingerprint(system, outcomes)
        coverage = _coverage_of(system, outcomes, violations)
        system.close()
        if durability_root is not None:
            violations.extend(wal_battery(durability_root))

        trace_len = len(chooser.points)
        deviations = [p.index for p in chooser.deviations()]
        violations = [
            v.with_context(trace_length=trace_len, deviations=deviations)
            for v in violations
        ]
        return RunResult(
            spec=spec,
            points=list(chooser.points),
            trace=chooser.trace,
            violations=violations,
            fingerprint=fingerprint,
            coverage=coverage,
            committed=sum(1 for o in outcomes.values() if o.committed),
            aborted=sum(1 for o in outcomes.values() if not o.committed),
            sim_time=system.kernel.now,
            pending=pending,
        )
    finally:
        if durability_root is not None:
            shutil.rmtree(durability_root, ignore_errors=True)


def matrix(base: ExploreSpec) -> List[ExploreSpec]:
    """The config matrix: certifier engine × durability × federation."""
    specs = []
    for engine in ("naive", "indexed"):
        for durability in (False, True):
            for n_coordinators in (1, 2):
                specs.append(
                    replace(
                        base,
                        certifier_engine=engine,
                        durability=durability,
                        n_coordinators=n_coordinators,
                    )
                )
    return specs
