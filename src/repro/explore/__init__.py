"""Deterministic schedule exploration: search, shrink, replay.

Every nondeterministic decision of a simulated run — which same-time
event fires first, whether a message is dropped/duplicated/delayed,
whether an agent crashes at a protocol point, whether the LDBS
unilaterally aborts a prepared subtransaction — flows through the
kernel's choice-point API and is recorded as a flat *choice trace*.
The explorer searches trace space (DFS, random walks, coverage-guided
walks), runs the invariant battery as the oracle on every terminal
state, shrinks failures to minimal traces, and persists them as
replayable ``.schedule`` files.

See ``docs/TESTING.md`` for the workflow and ``python -m repro
explore --help`` for the CLI.
"""

from repro.explore.harness import ExploreSpec, RunResult, matrix, run_once
from repro.explore.mutants import MUTANTS, get_mutant
from repro.explore.schedule_file import (
    load_schedule,
    replay_schedule,
    save_schedule,
)
from repro.explore.shrink import ShrinkResult, shrink
from repro.explore.strategies import (
    Exploration,
    STRATEGIES,
    explore,
    explore_coverage,
    explore_dfs,
    explore_random,
)
from repro.explore.trace import (
    ChoicePoint,
    DefaultChooser,
    HybridChooser,
    RandomChooser,
    RecordingChooser,
    TraceChooser,
    strip_trailing_defaults,
)

__all__ = [
    "ChoicePoint",
    "DefaultChooser",
    "Exploration",
    "ExploreSpec",
    "HybridChooser",
    "MUTANTS",
    "RandomChooser",
    "RecordingChooser",
    "RunResult",
    "STRATEGIES",
    "ShrinkResult",
    "TraceChooser",
    "explore",
    "explore_coverage",
    "explore_dfs",
    "explore_random",
    "get_mutant",
    "load_schedule",
    "matrix",
    "replay_schedule",
    "run_once",
    "save_schedule",
    "shrink",
    "strip_trailing_defaults",
]
