"""Choice-driven fault injection: every fault is an explicit decision.

The chaos nemesis (:mod:`repro.sim.failures`) draws its faults from
seeded coins; here the same fault vocabulary — drop, duplicate, delay,
partition from :mod:`repro.net.faults`, agent crashes at the
:data:`~repro.core.agent.CRASH_POINTS`, unilateral aborts of prepared
subtransactions — is routed through
:meth:`~repro.kernel.events.EventKernel.choose`, so the explorer's
strategies decide *exactly* which fault fires where, and a recorded
trace replays the schedule bit for bit.

Two properties keep every explored run terminating:

* **budgets** — each fault class has a finite budget
  (:class:`FaultBudget`); once spent, the corresponding options are no
  longer offered, so traces stay finite and the system quiesces;
* **healable menus** — only faults the configured recovery machinery
  can absorb are offered.  Drops are limited to messages the
  coordinator's vote/result/ack timeouts retry or abort around;
  duplicates to messages the agents handle idempotently (a duplicated
  COMMAND would double-execute, a duplicated COMMAND_RESULT could
  answer the *next* command — neither is a protocol bug, so neither is
  offered); delays stay inside the paper's per-channel FIFO model
  (extra latency, channel clock still enforced); partitions isolate
  one site for a bounded window.  Crashed agents always restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.core.dtm import MultidatabaseSystem
from repro.history.model import OpKind, Operation
from repro.net.faults import FaultPlan, FaultyNetwork
from repro.net.messages import Message, MsgType
from repro.net.network import LatencyModel
from repro.sim.failures import abort_current_incarnation


#: Messages whose loss the coordinator timeout machinery heals (votes
#: and results time out into aborts, decisions are resent on ack
#: timeout).  BEGIN is deliberately absent: the paper's protocol has no
#: BEGIN retry, so its loss would wedge the submission, not test it.
DROPPABLE = frozenset(
    {
        MsgType.PREPARE,
        MsgType.READY,
        MsgType.REFUSE,
        MsgType.COMMAND_RESULT,
        MsgType.COMMIT,
        MsgType.ROLLBACK,
        MsgType.COMMIT_ACK,
        MsgType.ROLLBACK_ACK,
    }
)

#: Messages the receiving endpoint handles idempotently (duplicate
#: PREPARE re-votes, duplicate COMMIT/ROLLBACK re-acks, duplicate
#: votes/acks land in already-completed wait events).
DUPPABLE = frozenset(
    {
        MsgType.PREPARE,
        MsgType.READY,
        MsgType.REFUSE,
        MsgType.COMMIT,
        MsgType.ROLLBACK,
        MsgType.COMMIT_ACK,
        MsgType.ROLLBACK_ACK,
    }
)

#: Messages that may be given extra (FIFO-preserving) latency.
DELAYABLE = frozenset(
    {
        MsgType.BEGIN,
        MsgType.COMMAND,
        MsgType.COMMAND_RESULT,
        MsgType.PREPARE,
        MsgType.READY,
        MsgType.REFUSE,
        MsgType.COMMIT,
        MsgType.ROLLBACK,
        MsgType.COMMIT_ACK,
        MsgType.ROLLBACK_ACK,
    }
)


@dataclass
class FaultBudget:
    """Remaining injections per fault class; 0 removes the option."""

    drops: int = 2
    dups: int = 1
    delays: int = 2
    partitions: int = 1
    crashes: int = 1
    aborts: int = 2

    def copy(self) -> "FaultBudget":
        return FaultBudget(
            drops=self.drops,
            dups=self.dups,
            delays=self.delays,
            partitions=self.partitions,
            crashes=self.crashes,
            aborts=self.aborts,
        )


class ChoiceNetwork(FaultyNetwork):
    """A transport whose every fault is a recorded choice point.

    Per protocol message the chooser sees one ``msg:<TYPE>`` decision
    whose menu is the budget-gated subset of {deliver, drop, dup,
    delay, partition}; option 0 is always plain FIFO delivery.  With
    no chooser installed the menu collapses to option 0 and the wire
    behaves exactly like the perfect transport.
    """

    def __init__(
        self,
        kernel,
        budget: FaultBudget,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        extra_delay: float = 60.0,
        partition_duration: float = 250.0,
    ) -> None:
        super().__init__(kernel, latency=latency, seed=seed, plan=FaultPlan())
        self.budget = budget
        self.extra_delay = extra_delay
        self.partition_duration = partition_duration
        #: ``(isolated_address, end_time)`` — live partition windows.
        self._partitions: List[Tuple[str, float]] = []

    # ------------------------------------------------------------------

    def _severed_now(self, src: str, dst: str) -> bool:
        now = self._kernel.now
        for isolated, end in self._partitions:
            if now < end and (src == isolated) != (dst == isolated):
                return True
        return False

    def send(self, message: Message) -> float:
        channel = (message.src, message.dst)
        if channel in self._paused:
            return super(FaultyNetwork, self).send(message)
        if message.dst not in self._handlers:
            raise SimulationError(f"no endpoint registered for {message.dst!r}")
        if self._severed_now(message.src, message.dst):
            self.messages_sent += 1
            self.partition_drops += 1
            self._note_fault("partition", message)
            return float("inf")

        budget = self.budget
        menu = ["deliver"]
        mtype = message.type
        if budget.drops > 0 and mtype in DROPPABLE:
            menu.append("drop")
        if budget.dups > 0 and mtype in DUPPABLE:
            menu.append("dup")
        if budget.delays > 0 and mtype in DELAYABLE:
            menu.append("delay")
        if budget.partitions > 0 and mtype in DELAYABLE:
            menu.append("partition")
        if len(menu) == 1:
            return super(FaultyNetwork, self).send(message)

        pick = self._kernel.choose(
            f"msg:{mtype.name}",
            len(menu),
            context=f"{message.src}->{message.dst} {message.txn}",
        )
        action = menu[pick]
        if action == "deliver":
            return super(FaultyNetwork, self).send(message)
        if action == "drop":
            budget.drops -= 1
            self.messages_sent += 1
            self.messages_lost += 1
            self._note_fault("loss", message)
            return float("inf")
        if action == "dup":
            budget.dups -= 1
            delivery = super(FaultyNetwork, self).send(message)
            # The copy rides the same FIFO channel, right behind the
            # original — receivers must absorb it idempotently.
            super(FaultyNetwork, self).send(message)
            self.messages_duplicated += 1
            self._note_fault("duplicate", message)
            return delivery
        if action == "delay":
            budget.delays -= 1
            return self._send_delayed(message, self.extra_delay)
        # action == "partition": isolate the destination endpoint for a
        # bounded window; this message is its first casualty.
        budget.partitions -= 1
        end = self._kernel.now + self.partition_duration
        self._partitions.append((message.dst, end))
        self.messages_sent += 1
        self.partition_drops += 1
        self._note_fault("partition", message)
        return float("inf")

    def _send_delayed(self, message: Message, extra: float) -> float:
        """Extra latency *inside* the FIFO discipline: the channel clock
        still clamps, so same-channel order is preserved and only
        cross-channel races move — the paper's Network model intact."""
        now = self._kernel.now
        delay = self._latency.sample(message.src, message.dst, self._rng) + extra
        channel = (message.src, message.dst)
        earliest = self._channel_clock.get(channel, now)
        delivery = max(now + delay, earliest)
        self._channel_clock[channel] = delivery + 1e-9
        self.messages_sent += 1
        self.messages_spiked += 1
        self._note_fault("delay", message)
        self._record_trace(now, delivery, message)
        self._kernel.schedule_at(delivery, lambda: self._deliver(message))
        return delivery


class ChoiceCrashInjector:
    """Agent kills at protocol crash points, decided per passage.

    Every time an agent passes a :data:`~repro.core.agent.CRASH_POINTS`
    probe (and crash budget remains), the chooser decides live-or-die;
    a killed agent always restarts from its log ``downtime`` later, so
    explored runs never wedge on a permanently dead site.
    """

    def __init__(
        self,
        system: MultidatabaseSystem,
        budget: FaultBudget,
        downtime: float = 150.0,
    ) -> None:
        self.system = system
        self.budget = budget
        self.downtime = downtime
        #: ``(time, site, point, txn)`` per kill, in kill order.
        self.crash_log: List[Tuple[float, str, str, object]] = []
        for site in system.config.sites:
            system.agent(site).crash_probe = self._probe_for(site)

    def _probe_for(self, site: str):
        def probe(point: str, txn) -> bool:
            if self.budget.crashes <= 0:
                return False
            pick = self.system.kernel.choose(
                "crash", 2, context=f"{site}:{point}:{txn}"
            )
            if pick == 0:
                return False
            self.budget.crashes -= 1
            self.crash_log.append((self.system.kernel.now, site, point, txn))
            self.system.kernel.schedule(self.downtime, lambda: self._recover(site))
            return True

        return probe

    def _recover(self, site: str) -> None:
        if self.system.agent(site).crashed:
            self.system.recover_agent(site)


class ChoiceAbortInjector:
    """Unilateral aborts of prepared subtransactions, decided per prepare.

    The paper's failure model: the LDBS may throw away a prepared
    subtransaction at any time.  Each PREPARE recorded in the history
    (while abort budget remains) becomes a three-way choice — leave it,
    abort it almost immediately (inside the vote/decision race window),
    or abort it late (after the global decision has likely landed, the
    H1/H2 resubmission window).
    """

    SOON = 1.0
    LATE = 30.0

    def __init__(self, system: MultidatabaseSystem, budget: FaultBudget) -> None:
        self.system = system
        self.budget = budget
        #: ``(txn, site, delay)`` per scheduled abort.
        self.abort_log: List[Tuple[object, str, float]] = []
        system.history.subscribe(self._observe)

    def _observe(self, op: Operation) -> None:
        if op.kind is not OpKind.PREPARE or op.site is None:
            return
        if self.budget.aborts <= 0:
            return
        pick = self.system.kernel.choose(
            "abort", 3, context=f"{op.txn}@{op.site}"
        )
        if pick == 0:
            return
        self.budget.aborts -= 1
        delay = self.SOON if pick == 1 else self.LATE
        txn, site = op.txn, op.site
        self.abort_log.append((txn, site, delay))
        self.system.kernel.schedule(
            delay, lambda: abort_current_incarnation(self.system, txn, site)
        )
