"""The three search strategies over the choice-point state space.

All three drive :func:`~repro.explore.harness.run_once` and differ only
in *which* traces they try:

* **DFS** (:func:`explore_dfs`) — systematic deviation-bounded search,
  the delay-bounding idea transplanted to choice points: first every
  single deviation from the default schedule, then pairs, expanding
  the most protocol-relevant decision kinds first (unilateral aborts
  before crashes before wire faults before tie-breaks — under rigorous
  2PL a certification conflict needs an abort-released lock, so abort
  choices open every interesting door).  Deterministic: same spec ⇒
  same visit order ⇒ same first counterexample.
* **Random** (:func:`explore_random`) — seeded random walks with
  per-kind deviation probabilities
  (:data:`~repro.explore.trace.DEFAULT_DEVIATION_PROBS`).  Breadth over
  depth: each seed explores an independent schedule, good at stumbling
  into races DFS's ordering postpones.
* **Coverage** (:func:`explore_coverage`) — a walker biased toward
  unvisited protocol states: every run's
  :attr:`~repro.explore.harness.RunResult.coverage` features feed a
  corpus of interesting traces; new walks replay a prefix of a corpus
  trace and explore a fresh random suffix behind it
  (:class:`~repro.explore.trace.HybridChooser`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.explore.harness import ExploreSpec, RunResult, run_once
from repro.explore.trace import (
    DEFAULT_DEVIATION_PROBS,
    DefaultChooser,
    HybridChooser,
    RandomChooser,
    TraceChooser,
)

#: Deviation-expansion order for DFS: the decision kinds most likely to
#: expose a protocol bug come first (matched by prefix before ``:``).
KIND_PRIORITY: Tuple[str, ...] = ("abort", "crash", "msg", "tie")


@dataclass
class Exploration:
    """What one strategy run over one spec did and found."""

    strategy: str
    spec: ExploreSpec
    runs: int = 0
    elapsed: float = 0.0
    #: Why the search stopped: ``failure`` | ``budget`` | ``exhausted``.
    stopped: str = "exhausted"
    #: Failing runs, in discovery order (first is the counterexample).
    failures: List[RunResult] = field(default_factory=list)
    #: Union of coverage features over every run.
    coverage: Set[str] = field(default_factory=set)

    @property
    def found(self) -> bool:
        return bool(self.failures)

    def summary(self) -> str:
        head = (
            f"{self.strategy}: {self.runs} runs in {self.elapsed:.1f}s "
            f"({self.stopped}), coverage={len(self.coverage)}"
        )
        if not self.failures:
            return head + ", no violations"
        first = self.failures[0]
        kinds = ",".join(sorted(first.violation_kinds()))
        return (
            head
            + f", VIOLATION [{kinds}] at trace of {len(first.trace)} choices"
        )


class _Budget:
    """Run-count and wall-clock stop conditions shared by strategies."""

    def __init__(self, max_runs: int, time_budget: Optional[float]) -> None:
        self.max_runs = max_runs
        self.deadline = (
            time.monotonic() + time_budget if time_budget is not None else None
        )
        self.started = time.monotonic()

    def exhausted(self, runs: int) -> bool:
        if runs >= self.max_runs:
            return True
        return self.deadline is not None and time.monotonic() >= self.deadline

    def elapsed(self) -> float:
        return time.monotonic() - self.started


def _kind_rank(kind: str) -> int:
    head = kind.split(":", 1)[0]
    try:
        return KIND_PRIORITY.index(head)
    except ValueError:
        return len(KIND_PRIORITY)


def _deviation_sites(result: RunResult, after: int = -1) -> List[Tuple[int, int]]:
    """``(index, alternative)`` pairs to try next, priority-ordered.

    Only points strictly after ``after`` are offered, so a DFS child
    never revisits (and never un-does) its parent's deviations.
    """
    sites: List[Tuple[int, int]] = []
    for point in result.points:
        if point.index <= after or point.n <= 1:
            continue
        for alternative in range(1, point.n):
            if alternative != point.choice:
                sites.append((point.index, alternative))
    sites.sort(key=lambda site: (_kind_rank(result.points[site[0]].kind), site))
    return sites


def _observe(
    exploration: Exploration,
    result: RunResult,
    stop_on_failure: bool,
) -> bool:
    """Fold one run into the exploration; True = stop searching."""
    exploration.runs += 1
    exploration.coverage |= result.coverage
    if not result.ok:
        exploration.failures.append(result)
        if stop_on_failure:
            exploration.stopped = "failure"
            return True
    return False


def explore_dfs(
    spec: ExploreSpec,
    *,
    max_deviations: int = 2,
    max_runs: int = 3_000,
    time_budget: Optional[float] = None,
    stop_on_failure: bool = True,
    on_run: Optional[Callable[[RunResult], None]] = None,
) -> Exploration:
    """Deviation-bounded DFS from the default schedule.

    Depth d enumerates every trace that deviates from the default run
    at exactly d choice points; deviations are appended strictly
    left-to-right, and candidate points are expanded in
    :data:`KIND_PRIORITY` order so the cheap, high-yield deviations
    (unilateral aborts: 8 points in the default config) are exhausted
    before the long tail of wire-fault interleavings.
    """
    exploration = Exploration(strategy="dfs", spec=spec)
    budget = _Budget(max_runs, time_budget)

    base = run_once(spec, DefaultChooser())
    if on_run is not None:
        on_run(base)
    done = _observe(exploration, base, stop_on_failure)

    # Each frontier entry is a run plus the index of its last deviation;
    # children deviate at strictly later points.  Breadth over depth:
    # all single deviations before any pair.
    frontier: List[Tuple[RunResult, int]] = [(base, -1)]
    depth = 0
    while not done and frontier and depth < max_deviations:
        depth += 1
        next_frontier: List[Tuple[RunResult, int]] = []
        for parent, last in frontier:
            if done:
                break
            for index, alternative in _deviation_sites(parent, after=last):
                if budget.exhausted(exploration.runs):
                    exploration.stopped = "budget"
                    done = True
                    break
                trace = parent.trace[:index] + [alternative]
                child = run_once(spec, TraceChooser(trace))
                if on_run is not None:
                    on_run(child)
                if _observe(exploration, child, stop_on_failure):
                    done = True
                    break
                next_frontier.append((child, index))
        frontier = next_frontier

    exploration.elapsed = budget.elapsed()
    return exploration


def explore_random(
    spec: ExploreSpec,
    *,
    seed: int = 0,
    max_runs: int = 200,
    time_budget: Optional[float] = None,
    probs: Optional[Dict[str, float]] = None,
    stop_on_failure: bool = True,
    on_run: Optional[Callable[[RunResult], None]] = None,
) -> Exploration:
    """Seeded random walks; walk i uses ``random.Random(seed * 10007 + i)``."""
    exploration = Exploration(strategy="random", spec=spec)
    budget = _Budget(max_runs, time_budget)
    for i in range(max_runs):
        if budget.exhausted(exploration.runs):
            exploration.stopped = "budget"
            break
        chooser = RandomChooser(random.Random(seed * 10007 + i), probs)
        result = run_once(spec, chooser)
        if on_run is not None:
            on_run(result)
        if _observe(exploration, result, stop_on_failure):
            break
    exploration.elapsed = budget.elapsed()
    return exploration


def explore_coverage(
    spec: ExploreSpec,
    *,
    seed: int = 0,
    max_runs: int = 200,
    time_budget: Optional[float] = None,
    probs: Optional[Dict[str, float]] = None,
    corpus_size: int = 24,
    stop_on_failure: bool = True,
    on_run: Optional[Callable[[RunResult], None]] = None,
) -> Exploration:
    """Coverage-guided walker: keep traces that reach novel protocol
    states, mutate them by replaying a prefix and re-randomizing the
    suffix.

    Novelty is judged against the union of
    :attr:`~repro.explore.harness.RunResult.coverage` features seen so
    far (abort/refusal reasons, log-bucketed fault counters, commit
    tallies from :class:`~repro.sim.metrics.SystemMetrics`).  A run
    contributing a new feature enters the corpus; walks pick a corpus
    trace (recency-weighted), keep a random prefix, and explore a fresh
    suffix behind it.
    """
    exploration = Exploration(strategy="coverage", spec=spec)
    budget = _Budget(max_runs, time_budget)
    rng = random.Random(seed * 20011 + 1)
    probs = dict(DEFAULT_DEVIATION_PROBS if probs is None else probs)
    corpus: List[RunResult] = []

    def fold(result: RunResult) -> bool:
        if on_run is not None:
            on_run(result)
        novel = bool(result.coverage - exploration.coverage)
        stop = _observe(exploration, result, stop_on_failure)
        if novel:
            corpus.append(result)
            del corpus[:-corpus_size]
        return stop

    if fold(run_once(spec, DefaultChooser())):
        exploration.elapsed = budget.elapsed()
        return exploration

    while not budget.exhausted(exploration.runs):
        if corpus and rng.random() < 0.7:
            # Mutate: recency-weighted corpus pick, random cut point.
            parent = corpus[int(len(corpus) * rng.random() ** 2) - 1]
            cut = rng.randrange(len(parent.trace) + 1)
            chooser = HybridChooser(parent.trace[:cut], rng, probs)
        else:
            chooser = RandomChooser(rng, probs)
        if fold(run_once(spec, chooser)):
            break
    else:
        exploration.stopped = "budget"

    exploration.elapsed = budget.elapsed()
    return exploration


STRATEGIES: Dict[str, Callable[..., Exploration]] = {
    "dfs": explore_dfs,
    "random": explore_random,
    "coverage": explore_coverage,
}


def explore(
    spec: ExploreSpec,
    strategy: str = "dfs",
    **kwargs,
) -> Exploration:
    """Run one named strategy over one spec."""
    try:
        runner = STRATEGIES[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; known: {sorted(STRATEGIES)}"
        ) from None
    return runner(spec, **kwargs)
