"""Cluster launcher/supervisor: coordinators + agents as subprocesses.

``python -m repro serve cluster`` spawns one coordinator and N agents
by default; ``--coordinators M`` switches on the sharded federation —
M coordinator processes, plus one SN-lease allocator process, with the
shard map and full coordinator route table in ``cluster.json``
(see docs/FEDERATION.md).  Each role is its own OS
process (``python -m repro serve coordinator|agent|allocator``) listening on an
ephemeral port (``--listen 127.0.0.1:0``), blocks on each child's JSON
readiness line (no sleep-polling, no port collisions), distributes the
full route table to every child over a control frame, writes
``cluster.json`` into the data root for clients, and then supervises:
a child that dies unexpectedly — say, SIGKILLed mid-prepare — is
respawned *on the same port* (routes held by its peers stay valid) and
WAL/journal recovery happens automatically in the new process, because
recovery is driven purely by what the data root contains.

Stdout protocol (``--json``): one ``{"event": "ready", "role":
"cluster", ...}`` line once the cluster is serving, then one
``exited`` + ``restarted`` line pair per supervised respawn (plus
``respawn-failed`` / ``gave-up`` when the crash-loop guard trips). The
storm client's ``--launch`` mode consumes these.

``--nemesis`` inserts a :class:`~repro.rt.nemesis.NemesisProxy` relay
between every ordered peer pair: the route table each child receives
points at the relays, so every protocol byte between cluster processes
is fault-injectable live over the nemesis control socket (advertised
in ``cluster.json`` under ``"nemesis"``). Supervisor↔child control
frames stay direct — supervision survives partitions.

Crash-loop guard: a child that keeps dying right after becoming ready
is respawned with exponential backoff, and after ``max_restarts``
respawns the supervisor gives up on it (``gave-up`` event, recorded in
``cluster.json``) instead of burning CPU forever.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import sys
import time
from collections import deque
from typing import Dict, List, Optional

from repro.rt.codec import FRAME_CONTROL, encode_frame
from repro.rt.nemesis import NemesisProxy, link_key
from repro.rt.node import (
    agent_address,
    agent_control,
    allocator_control,
    coordinator_address,
    coordinator_control,
)
from repro.rt.tuning import BankConfig, RtTuning

READY_TIMEOUT = 30.0
STOP_TIMEOUT = 5.0
#: A child that died sooner than this after becoming ready is "hot
#: failing": its next respawn is delayed with exponential backoff.
MIN_UPTIME = 2.0
BACKOFF_BASE = 0.5
BACKOFF_MAX = 10.0


async def send_control_frame(host: str, port: int, body: dict) -> None:
    """One-shot control frame over a raw TCP connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_frame(FRAME_CONTROL, dict(body)))
        await writer.drain()
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


class _Child:
    """One supervised subprocess and its last known coordinates."""

    def __init__(self, role: str, name: str) -> None:
        self.role = role  # "coordinator" | "agent" | "allocator"
        self.name = name  # coordinator name, site, or allocator name
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.host: Optional[str] = None
        self.port: int = 0
        self.pid: int = 0
        self.drain_task: Optional[asyncio.Task] = None
        self.stderr_task: Optional[asyncio.Task] = None
        #: Last stderr lines, kept for readiness/give-up diagnostics.
        self.stderr_tail: deque = deque(maxlen=40)
        self.restarts = 0
        self.backoff = 0.0
        self.started_at = 0.0
        self.gave_up = False

    def stderr_excerpt(self) -> str:
        return "".join(self.stderr_tail)[-2000:]

    @property
    def process_name(self) -> str:
        prefix = {
            "coordinator": "coord",
            "agent": "agent",
            "allocator": "alloc",
        }[self.role]
        return f"{prefix}-{self.name}"

    @property
    def control_address(self) -> str:
        if self.role == "coordinator":
            return coordinator_control(self.name)
        if self.role == "allocator":
            return allocator_control()
        return agent_control(self.name)

    @property
    def addresses(self) -> List[str]:
        if self.role == "coordinator":
            return [coordinator_address(self.name), self.control_address]
        if self.role == "allocator":
            return [self.control_address]
        return [agent_address(self.name), self.control_address]


class ClusterSupervisor:
    """Spawn, introduce, and keep alive M coordinators + N agents.

    ``federation`` (a dict with ``n_shards`` / ``lease_span`` /
    ``drain_timeout``) turns on the sharded multi-coordinator mode:
    every name in ``coordinators`` becomes its own coordinator process,
    one extra :class:`~repro.rt.node.AllocatorNode` child serves the
    SN-lease authority, and ``cluster.json`` gains a ``"federation"``
    section (shard map, coordinator route table, allocator coordinates)
    that the storm client's router consumes.  Without it the layout is
    the original 1-coordinator cluster, byte-compatible.
    """

    def __init__(
        self,
        data_root: str,
        *,
        coordinator: str = "c1",
        coordinators: Optional[List[str]] = None,
        federation: Optional[dict] = None,
        bank: Optional[BankConfig] = None,
        tuning: Optional[RtTuning] = None,
        json_mode: bool = False,
        nemesis: bool = False,
        max_restarts: int = 10,
    ) -> None:
        self.data_root = data_root
        self.bank = bank if bank is not None else BankConfig()
        self.tuning = tuning if tuning is not None else RtTuning()
        self.json_mode = json_mode
        self.coordinator_names = list(coordinators) if coordinators else [coordinator]
        self.federation = dict(federation) if federation is not None else None
        if self.federation is not None:
            self.federation["coordinators"] = list(self.coordinator_names)
        self.children: List[_Child] = [
            _Child("coordinator", name) for name in self.coordinator_names
        ]
        self.children.extend(_Child("agent", site) for site in self.bank.sites)
        if self.federation is not None:
            self.children.append(_Child("allocator", "alloc"))
        self.stop = asyncio.Event()
        self.shutting_down = False
        self.restarts = 0
        self.max_restarts = max_restarts
        self.nemesis: Optional[NemesisProxy] = NemesisProxy() if nemesis else None
        self._supervisors: List[asyncio.Task] = []

    # -- reporting ------------------------------------------------------------

    def _emit(self, event: dict) -> None:
        if self.json_mode:
            print(json.dumps(event, sort_keys=True), flush=True)
        else:
            detail = ", ".join(
                f"{k}={v}" for k, v in event.items() if k != "event"
            )
            print(f"[cluster] {event['event']}: {detail}", flush=True)

    # -- child lifecycle ------------------------------------------------------

    def _child_argv(self, child: _Child, port: int) -> List[str]:
        argv = [sys.executable, "-m", "repro", "serve"]
        if child.role == "agent":
            argv += [
                "agent",
                "--site",
                child.name,
                "--bank-sites",
                ",".join(self.bank.sites),
                "--accounts",
                str(self.bank.accounts_per_branch),
                "--tellers",
                str(self.bank.tellers_per_branch),
                "--balance",
                str(self.bank.initial_account_balance),
            ]
        elif child.role == "allocator":
            argv += ["allocator", "--name", child.name]
            if self.federation is not None:
                argv += ["--lease-span", str(self.federation.get("lease_span", 64))]
        else:
            argv += ["coordinator", "--name", child.name]
            if self.federation is not None:
                argv += [
                    "--federation-json",
                    json.dumps(self.federation, sort_keys=True),
                ]
        argv += [
            "--data-root",
            self.data_root,
            "--listen",
            f"127.0.0.1:{port}",
            "--json",
            "--tuning-json",
            json.dumps(self.tuning.to_dict(), sort_keys=True),
        ]
        return argv

    async def _start_child(self, child: _Child, port: int = 0) -> dict:
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        child.stderr_tail.clear()
        child.started_at = time.monotonic()
        child.proc = await asyncio.create_subprocess_exec(
            *self._child_argv(child, port),
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.PIPE,
            env=env,
        )
        child.stderr_task = asyncio.ensure_future(self._drain_stderr(child))
        try:
            line = await asyncio.wait_for(
                child.proc.stdout.readline(), READY_TIMEOUT
            )
        except asyncio.TimeoutError:
            await self._reap(child)
            raise RuntimeError(
                f"{child.process_name} never became ready within "
                f"{READY_TIMEOUT}s{self._stderr_suffix(child)}"
            )
        if not line:
            # Dead before the readiness line: reap it and say *why*
            # (its stderr), instead of leaving a zombie and a mystery.
            await self._reap(child)
            raise RuntimeError(
                f"{child.process_name} exited before its ready line "
                f"(rc={child.proc.returncode}){self._stderr_suffix(child)}"
            )
        try:
            status = json.loads(line)
        except ValueError:
            await self._reap(child)
            raise RuntimeError(
                f"{child.process_name} printed a non-JSON ready line "
                f"{line!r}{self._stderr_suffix(child)}"
            )
        child.host = status["host"]
        child.port = int(status["port"])
        child.pid = int(status["pid"])
        child.drain_task = asyncio.ensure_future(self._drain_stdout(child))
        return status

    async def _reap(self, child: _Child) -> None:
        """Kill + wait a half-started child and collect its stderr."""
        if child.proc.returncode is None:
            with contextlib.suppress(ProcessLookupError):
                child.proc.kill()
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(child.proc.wait(), STOP_TIMEOUT)
        if child.stderr_task is not None:
            with contextlib.suppress(asyncio.TimeoutError, Exception):
                await asyncio.wait_for(child.stderr_task, 1.0)

    def _stderr_suffix(self, child: _Child) -> str:
        excerpt = child.stderr_excerpt().strip()
        return f"; stderr: {excerpt}" if excerpt else ""

    async def _drain_stdout(self, child: _Child) -> None:
        # children stay quiet after their ready line, but anything they
        # do print must not fill the pipe and block them.
        proc = child.proc
        with contextlib.suppress(Exception):
            while True:
                line = await proc.stdout.readline()
                if not line:
                    return
                print(
                    f"[{child.process_name}] {line.decode().rstrip()}",
                    file=sys.stderr,
                    flush=True,
                )

    async def _drain_stderr(self, child: _Child) -> None:
        proc = child.proc
        with contextlib.suppress(Exception):
            while True:
                line = await proc.stderr.readline()
                if not line:
                    return
                child.stderr_tail.append(line.decode(errors="replace"))
                print(
                    f"[{child.process_name}!] {line.decode(errors='replace').rstrip()}",
                    file=sys.stderr,
                    flush=True,
                )

    def _cancel_drains(self, child: _Child) -> None:
        for task in (child.drain_task, child.stderr_task):
            if task is not None:
                task.cancel()

    def _peers_for(self, viewer: _Child) -> List[dict]:
        """The route table ``viewer`` receives.

        Under the nemesis every *other* peer's coordinates are the
        viewer→peer relay, so each ordered pair crosses its own
        fault-injectable hop (a partition of (a, b) blocks both
        directions without touching anyone else's links).
        """
        peers = []
        for child in self.children:
            host, port = child.host, child.port
            if self.nemesis is not None and child is not viewer:
                link = self.nemesis.links.get(
                    link_key(viewer.process_name, child.process_name)
                )
                if link is not None and link.listen is not None:
                    host, port = link.listen
            peers.append(
                {
                    "name": child.process_name,
                    "host": host,
                    "port": port,
                    "addresses": child.addresses,
                }
            )
        return peers

    async def _send_routes(self, child: _Child) -> None:
        await send_control_frame(
            child.host,
            child.port,
            {
                "dst": child.control_address,
                "op": "routes",
                "peers": self._peers_for(child),
            },
        )

    def _write_cluster_json(self) -> str:
        def entry(child: _Child) -> dict:
            return {
                "name": child.name,
                "host": child.host,
                "port": child.port,
                "pid": child.pid,
                "restarts": child.restarts,
                "gave_up": child.gave_up,
            }

        coordinators = [c for c in self.children if c.role == "coordinator"]
        agents = [c for c in self.children if c.role == "agent"]
        allocators = [c for c in self.children if c.role == "allocator"]
        info = {
            # Singular "coordinator" (the first one) stays for pre-
            # federation clients; "coordinators" is the full route table.
            "coordinator": entry(coordinators[0]),
            "coordinators": [entry(c) for c in coordinators],
            "agents": [
                {
                    "site": child.name,
                    "host": child.host,
                    "port": child.port,
                    "pid": child.pid,
                    "restarts": child.restarts,
                    "gave_up": child.gave_up,
                }
                for child in agents
            ],
            "bank": self.bank.to_dict(),
            "tuning": self.tuning.to_dict(),
            "data_root": self.data_root,
            "max_restarts": self.max_restarts,
        }
        if self.federation is not None:
            from repro.federation.shard import ShardMap

            info["federation"] = {
                "n_shards": int(self.federation["n_shards"]),
                "lease_span": int(self.federation.get("lease_span", 64)),
                "drain_timeout": float(self.federation.get("drain_timeout", 5.0)),
                "coordinators": list(self.coordinator_names),
                # The *initial* assignment (deterministic round-robin).
                # Live handoffs are pushed to the coordinators directly;
                # a client attaching later starts here and follows
                # WRONG_SHARD redirects to the current owner.
                "shard_map": ShardMap.initial(
                    int(self.federation["n_shards"]), self.coordinator_names
                ).to_dict(),
                "allocator": entry(allocators[0]) if allocators else None,
            }
        if self.nemesis is not None:
            info["nemesis"] = self.nemesis.describe()
        path = os.path.join(self.data_root, "cluster.json")
        with open(path, "w") as fh:
            json.dump(info, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    # -- supervision ----------------------------------------------------------

    async def _supervise(self, child: _Child) -> None:
        while not self.shutting_down:
            returncode = await child.proc.wait()
            self._cancel_drains(child)
            if self.shutting_down:
                return
            uptime = time.monotonic() - child.started_at
            self._emit(
                {
                    "event": "exited",
                    "role": child.role,
                    "name": child.name,
                    "returncode": returncode,
                    "uptime_s": round(uptime, 3),
                }
            )
            # Crash-loop guard: a bounded respawn budget, and
            # exponential backoff between attempts while the child
            # keeps dying young (a genuinely broken child otherwise
            # hot-loops the supervisor).
            if child.restarts >= self.max_restarts:
                child.gave_up = True
                self._emit(
                    {
                        "event": "gave-up",
                        "role": child.role,
                        "name": child.name,
                        "restarts": child.restarts,
                        "stderr": child.stderr_excerpt().strip(),
                    }
                )
                self._write_cluster_json()
                return
            if uptime < MIN_UPTIME:
                child.backoff = min(
                    max(child.backoff * 2.0, BACKOFF_BASE), BACKOFF_MAX
                )
                await asyncio.sleep(child.backoff)
            else:
                child.backoff = 0.0
            # Respawn on the SAME port: every peer's routes to this
            # child stay valid, and the new process recovers from the
            # WAL + journal it finds in the data root.
            child.restarts += 1
            try:
                await self._start_child(child, port=child.port)
            except Exception as exc:
                # The respawn itself failed (died before readiness).
                # Loop: proc.wait() returns at once, backoff grows,
                # and the budget above still bounds the retries.
                self._emit(
                    {
                        "event": "respawn-failed",
                        "role": child.role,
                        "name": child.name,
                        "restarts": child.restarts,
                        "error": str(exc),
                    }
                )
                continue
            try:
                await self._send_routes(child)
            except OSError as exc:
                # Died between readiness and the route push: the next
                # proc.wait() wakes immediately and we respawn again.
                self._emit(
                    {
                        "event": "respawn-failed",
                        "role": child.role,
                        "name": child.name,
                        "restarts": child.restarts,
                        "error": f"route push failed: {exc}",
                    }
                )
                continue
            self._write_cluster_json()
            self.restarts += 1
            self._emit(
                {
                    "event": "restarted",
                    "role": child.role,
                    "name": child.name,
                    "pid": child.pid,
                    "port": child.port,
                    "restarts": child.restarts,
                }
            )

    # -- entrypoint -----------------------------------------------------------

    async def run(self) -> int:
        os.makedirs(self.data_root, exist_ok=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self.stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        try:
            for child in self.children:
                await self._start_child(child)
            if self.nemesis is not None:
                # One relay per ordered pair, built after the children so
                # the upstreams are the real (stable, respawn-surviving)
                # child ports.
                await self.nemesis.start_control()
                for viewer in self.children:
                    for peer in self.children:
                        if viewer is peer:
                            continue
                        await self.nemesis.add_link(
                            viewer.process_name,
                            peer.process_name,
                            peer.host,
                            peer.port,
                        )
            for child in self.children:
                await self._send_routes(child)
        except Exception:
            # A boot failure must not orphan the children that DID
            # start: tear them down before surfacing the error.
            await self._shutdown()
            raise
        path = self._write_cluster_json()
        ready = {
            "event": "ready",
            "role": "cluster",
            "cluster_json": path,
            "coordinator": f"{self.children[0].host}:{self.children[0].port}",
            "coordinators": {
                child.name: f"{child.host}:{child.port}"
                for child in self.children
                if child.role == "coordinator"
            },
            "agents": {
                child.name: f"{child.host}:{child.port}"
                for child in self.children
                if child.role == "agent"
            },
            "pid": os.getpid(),
        }
        if self.federation is not None:
            alloc = next(
                (c for c in self.children if c.role == "allocator"), None
            )
            if alloc is not None:
                ready["allocator"] = f"{alloc.host}:{alloc.port}"
        if self.nemesis is not None:
            control = self.nemesis.control_bound
            ready["nemesis"] = f"{control[0]}:{control[1]}"
        self._emit(ready)
        self._supervisors = [
            asyncio.ensure_future(self._supervise(child))
            for child in self.children
        ]
        await self.stop.wait()
        return await self._shutdown()

    async def _shutdown(self) -> int:
        self.shutting_down = True
        for task in self._supervisors:
            task.cancel()
        await asyncio.gather(*self._supervisors, return_exceptions=True)
        for child in self.children:
            if child.proc is not None and child.proc.returncode is None:
                with contextlib.suppress(ProcessLookupError):
                    child.proc.terminate()
        for child in self.children:
            if child.proc is None:
                continue
            try:
                await asyncio.wait_for(child.proc.wait(), STOP_TIMEOUT)
            except asyncio.TimeoutError:
                with contextlib.suppress(ProcessLookupError):
                    child.proc.kill()
                await child.proc.wait()
            self._cancel_drains(child)
        if self.nemesis is not None:
            await self.nemesis.close()
        self._emit({"event": "stopped", "restarts": self.restarts})
        return 0


def run_serve_cluster(args) -> int:
    sites = tuple(
        s for s in (args.bank_sites or "").split(",") if s
    ) or BankConfig().sites
    bank = BankConfig(
        sites=sites,
        accounts_per_branch=args.accounts,
        tellers_per_branch=args.tellers,
        initial_account_balance=args.balance,
    )
    tuning = RtTuning()
    if getattr(args, "tuning_json", None):
        tuning = RtTuning.from_dict(json.loads(args.tuning_json))
    coordinators = None
    federation = None
    n_coordinators = getattr(args, "coordinators", 0) or 0
    if n_coordinators >= 1:
        coordinators = [f"c{i + 1}" for i in range(n_coordinators)]
        federation = {
            "n_shards": getattr(args, "n_shards", 8),
            "lease_span": getattr(args, "lease_span", 64),
            "drain_timeout": getattr(args, "drain_timeout", 5.0),
        }
    supervisor = ClusterSupervisor(
        args.data_root,
        coordinator=args.name,
        coordinators=coordinators,
        federation=federation,
        bank=bank,
        tuning=tuning,
        json_mode=args.json,
        nemesis=getattr(args, "nemesis", False),
        max_restarts=getattr(args, "max_restarts", 10),
    )
    return asyncio.run(supervisor.run())
