"""Cluster launcher/supervisor: 1 coordinator + N agents as subprocesses.

``python -m repro serve cluster`` spawns each role as its own OS
process (``python -m repro serve coordinator|agent``) listening on an
ephemeral port (``--listen 127.0.0.1:0``), blocks on each child's JSON
readiness line (no sleep-polling, no port collisions), distributes the
full route table to every child over a control frame, writes
``cluster.json`` into the data root for clients, and then supervises:
a child that dies unexpectedly — say, SIGKILLed mid-prepare — is
respawned *on the same port* (routes held by its peers stay valid) and
WAL/journal recovery happens automatically in the new process, because
recovery is driven purely by what the data root contains.

Stdout protocol (``--json``): one ``{"event": "ready", "role":
"cluster", ...}`` line once the cluster is serving, then one
``exited`` + ``restarted`` line pair per supervised respawn. The storm
client's ``--launch`` mode consumes these.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import sys
from typing import Dict, List, Optional

from repro.rt.codec import FRAME_CONTROL, encode_frame
from repro.rt.node import (
    agent_address,
    agent_control,
    coordinator_address,
    coordinator_control,
)
from repro.rt.tuning import BankConfig, RtTuning

READY_TIMEOUT = 30.0
STOP_TIMEOUT = 5.0


async def send_control_frame(host: str, port: int, body: dict) -> None:
    """One-shot control frame over a raw TCP connection."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(encode_frame(FRAME_CONTROL, dict(body)))
        await writer.drain()
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


class _Child:
    """One supervised subprocess and its last known coordinates."""

    def __init__(self, role: str, name: str) -> None:
        self.role = role  # "coordinator" | "agent"
        self.name = name  # coordinator name or site
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.host: Optional[str] = None
        self.port: int = 0
        self.pid: int = 0
        self.drain_task: Optional[asyncio.Task] = None

    @property
    def process_name(self) -> str:
        prefix = "coord" if self.role == "coordinator" else "agent"
        return f"{prefix}-{self.name}"

    @property
    def control_address(self) -> str:
        if self.role == "coordinator":
            return coordinator_control(self.name)
        return agent_control(self.name)

    @property
    def addresses(self) -> List[str]:
        if self.role == "coordinator":
            return [coordinator_address(self.name), self.control_address]
        return [agent_address(self.name), self.control_address]


class ClusterSupervisor:
    """Spawn, introduce, and keep alive one coordinator + N agents."""

    def __init__(
        self,
        data_root: str,
        *,
        coordinator: str = "c1",
        bank: Optional[BankConfig] = None,
        tuning: Optional[RtTuning] = None,
        json_mode: bool = False,
    ) -> None:
        self.data_root = data_root
        self.bank = bank if bank is not None else BankConfig()
        self.tuning = tuning if tuning is not None else RtTuning()
        self.json_mode = json_mode
        self.children: List[_Child] = [_Child("coordinator", coordinator)]
        self.children.extend(_Child("agent", site) for site in self.bank.sites)
        self.stop = asyncio.Event()
        self.shutting_down = False
        self.restarts = 0
        self._supervisors: List[asyncio.Task] = []

    # -- reporting ------------------------------------------------------------

    def _emit(self, event: dict) -> None:
        if self.json_mode:
            print(json.dumps(event, sort_keys=True), flush=True)
        else:
            detail = ", ".join(
                f"{k}={v}" for k, v in event.items() if k != "event"
            )
            print(f"[cluster] {event['event']}: {detail}", flush=True)

    # -- child lifecycle ------------------------------------------------------

    def _child_argv(self, child: _Child, port: int) -> List[str]:
        argv = [sys.executable, "-m", "repro", "serve"]
        if child.role == "agent":
            argv += [
                "agent",
                "--site",
                child.name,
                "--bank-sites",
                ",".join(self.bank.sites),
                "--accounts",
                str(self.bank.accounts_per_branch),
                "--tellers",
                str(self.bank.tellers_per_branch),
                "--balance",
                str(self.bank.initial_account_balance),
            ]
        else:
            argv += ["coordinator", "--name", child.name]
        argv += [
            "--data-root",
            self.data_root,
            "--listen",
            f"127.0.0.1:{port}",
            "--json",
            "--tuning-json",
            json.dumps(self.tuning.to_dict(), sort_keys=True),
        ]
        return argv

    async def _start_child(self, child: _Child, port: int = 0) -> dict:
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        child.proc = await asyncio.create_subprocess_exec(
            *self._child_argv(child, port),
            stdout=asyncio.subprocess.PIPE,
            env=env,
        )
        try:
            line = await asyncio.wait_for(
                child.proc.stdout.readline(), READY_TIMEOUT
            )
        except asyncio.TimeoutError:
            child.proc.kill()
            raise RuntimeError(f"{child.process_name} never became ready")
        if not line:
            raise RuntimeError(
                f"{child.process_name} exited before its ready line "
                f"(rc={child.proc.returncode})"
            )
        status = json.loads(line)
        child.host = status["host"]
        child.port = int(status["port"])
        child.pid = int(status["pid"])
        child.drain_task = asyncio.ensure_future(self._drain_stdout(child))
        return status

    async def _drain_stdout(self, child: _Child) -> None:
        # children stay quiet after their ready line, but anything they
        # do print must not fill the pipe and block them.
        proc = child.proc
        with contextlib.suppress(Exception):
            while True:
                line = await proc.stdout.readline()
                if not line:
                    return
                print(
                    f"[{child.process_name}] {line.decode().rstrip()}",
                    file=sys.stderr,
                    flush=True,
                )

    def _peers(self) -> List[dict]:
        return [
            {
                "name": child.process_name,
                "host": child.host,
                "port": child.port,
                "addresses": child.addresses,
            }
            for child in self.children
        ]

    async def _send_routes(self, child: _Child) -> None:
        await send_control_frame(
            child.host,
            child.port,
            {
                "dst": child.control_address,
                "op": "routes",
                "peers": self._peers(),
            },
        )

    def _write_cluster_json(self) -> str:
        coordinator = self.children[0]
        info = {
            "coordinator": {
                "name": coordinator.name,
                "host": coordinator.host,
                "port": coordinator.port,
                "pid": coordinator.pid,
            },
            "agents": [
                {
                    "site": child.name,
                    "host": child.host,
                    "port": child.port,
                    "pid": child.pid,
                }
                for child in self.children[1:]
            ],
            "bank": self.bank.to_dict(),
            "tuning": self.tuning.to_dict(),
            "data_root": self.data_root,
        }
        path = os.path.join(self.data_root, "cluster.json")
        with open(path, "w") as fh:
            json.dump(info, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    # -- supervision ----------------------------------------------------------

    async def _supervise(self, child: _Child) -> None:
        while not self.shutting_down:
            returncode = await child.proc.wait()
            if child.drain_task is not None:
                child.drain_task.cancel()
            if self.shutting_down:
                return
            self._emit(
                {
                    "event": "exited",
                    "role": child.role,
                    "name": child.name,
                    "returncode": returncode,
                }
            )
            # Respawn on the SAME port: every peer's routes to this
            # child stay valid, and the new process recovers from the
            # WAL + journal it finds in the data root.
            await self._start_child(child, port=child.port)
            await self._send_routes(child)
            self._write_cluster_json()
            self.restarts += 1
            self._emit(
                {
                    "event": "restarted",
                    "role": child.role,
                    "name": child.name,
                    "pid": child.pid,
                    "port": child.port,
                }
            )

    # -- entrypoint -----------------------------------------------------------

    async def run(self) -> int:
        os.makedirs(self.data_root, exist_ok=True)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self.stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        for child in self.children:
            await self._start_child(child)
        for child in self.children:
            await self._send_routes(child)
        path = self._write_cluster_json()
        self._emit(
            {
                "event": "ready",
                "role": "cluster",
                "cluster_json": path,
                "coordinator": f"{self.children[0].host}:{self.children[0].port}",
                "agents": {
                    child.name: f"{child.host}:{child.port}"
                    for child in self.children[1:]
                },
                "pid": os.getpid(),
            }
        )
        self._supervisors = [
            asyncio.ensure_future(self._supervise(child))
            for child in self.children
        ]
        await self.stop.wait()
        return await self._shutdown()

    async def _shutdown(self) -> int:
        self.shutting_down = True
        for task in self._supervisors:
            task.cancel()
        await asyncio.gather(*self._supervisors, return_exceptions=True)
        for child in self.children:
            if child.proc is not None and child.proc.returncode is None:
                with contextlib.suppress(ProcessLookupError):
                    child.proc.terminate()
        for child in self.children:
            if child.proc is None:
                continue
            try:
                await asyncio.wait_for(child.proc.wait(), STOP_TIMEOUT)
            except asyncio.TimeoutError:
                with contextlib.suppress(ProcessLookupError):
                    child.proc.kill()
                await child.proc.wait()
            if child.drain_task is not None:
                child.drain_task.cancel()
        self._emit({"event": "stopped", "restarts": self.restarts})
        return 0


def run_serve_cluster(args) -> int:
    sites = tuple(
        s for s in (args.bank_sites or "").split(",") if s
    ) or BankConfig().sites
    bank = BankConfig(
        sites=sites,
        accounts_per_branch=args.accounts,
        tellers_per_branch=args.tellers,
        initial_account_balance=args.balance,
    )
    tuning = RtTuning()
    if getattr(args, "tuning_json", None):
        tuning = RtTuning.from_dict(json.loads(args.tuning_json))
    supervisor = ClusterSupervisor(
        args.data_root,
        coordinator=args.name,
        bank=bank,
        tuning=tuning,
        json_mode=args.json,
    )
    return asyncio.run(supervisor.run())
