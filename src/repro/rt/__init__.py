"""Real-deployment runtime: the DTM protocol objects over asyncio TCP.

The simulator's ``core/`` actors (TwoPCAgent, Coordinator, Certifier)
are written against a small kernel-facing surface: ``kernel.schedule``
/ ``Timer`` for timeouts, ``network.send`` / ``register`` for messages.
This package satisfies that surface with real machinery instead of the
deterministic simulation:

- :mod:`repro.rt.kernel` — ``RealtimeKernel``, the event kernel pumped
  by an asyncio loop (1 simulated time unit = 1 wall-clock second).
- :mod:`repro.rt.codec` — the length-prefixed, CRC-checked, versioned
  wire frames carrying the existing ``net/messages.py`` envelopes
  (including the session layer's ``(epoch, seq)`` stamp).
- :mod:`repro.rt.wire` — ``TcpTransport``, a ``Network``-duck-typed
  transport over asyncio TCP with per-peer outbound queues and
  reconnect/backoff.
- :mod:`repro.rt.host` — ``ProtocolHost``, one process's substrate:
  realtime kernel + TCP transport + the session layer, with boot-id
  hellos driving exactly-one session reset per peer restart.
- :mod:`repro.rt.journal` — flushed per-process history journal, the
  committed-store redo log and the input to the merged-history
  invariant battery.
- :mod:`repro.rt.node` — agent/coordinator process entrypoints with
  WAL-backed crash recovery (``python -m repro serve``).
- :mod:`repro.rt.cluster` — the 1-coordinator + 3-agent subprocess
  launcher/supervisor with a readiness handshake and auto-restart.
- :mod:`repro.rt.storm` — the live-cluster debit-credit client with
  ``--kill-agent N --at prepared`` and the BENCH_rt.json recorder.

The protocol objects themselves run unmodified; nothing in ``core/``
knows whether its kernel is simulated or real.
"""

from repro.rt.codec import (
    FRAME_CONTROL,
    FRAME_HELLO,
    FRAME_MESSAGE,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    CorruptFrame,
    FrameDecoder,
    TruncatedFrame,
    WireError,
    WireVersionMismatch,
    decode_frame,
    encode_frame,
    encode_message,
    message_from_body,
)
from repro.rt.host import ProtocolHost
from repro.rt.kernel import RealtimeKernel
from repro.rt.wire import TcpTransport

__all__ = [
    "CorruptFrame",
    "FRAME_CONTROL",
    "FRAME_HELLO",
    "FRAME_MESSAGE",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "ProtocolHost",
    "RealtimeKernel",
    "TcpTransport",
    "TruncatedFrame",
    "WIRE_VERSION",
    "WireError",
    "WireVersionMismatch",
    "decode_frame",
    "encode_frame",
    "encode_message",
    "message_from_body",
]
