"""Wall-clock-scale tuning for the runtime processes.

The simulator's defaults are calibrated in abstract time units where a
local DML operation costs 1.0; under the
:class:`~repro.rt.kernel.RealtimeKernel` one unit is one *second*, so
every default must be rescaled or an alive check would fire once a
minute and a session retransmit once every fifteen seconds. One
``RtTuning`` instance derives every protocol config from a handful of
wall-clock knobs, so all processes of a cluster agree by construction
(the launcher serialises it into ``cluster.json``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.core.agent import AgentConfig
from repro.core.coordinator import CoordinatorTimeouts
from repro.durability.config import DiskFaultConfig, DurabilityConfig
from repro.ldbs.ltm import LTMConfig
from repro.net.reliable import ReliableConfig


@dataclass(frozen=True)
class RtTuning:
    """Seconds-scale protocol timeouts for a live cluster."""

    #: Simulated cost of one DML operation (seconds).
    op_duration: float = 0.002
    lock_timeout: float = 5.0
    #: Agent timers (paper's Appendix A/C timeouts).
    alive_check_interval: float = 0.5
    commit_retry_interval: float = 0.25
    resubmit_retry_delay: float = 0.2
    #: Prepared-but-undecided entries ask the coordinator after this
    #: long (presumed-abort inquiry).  Mandatory in a real deployment:
    #: a coordinator SIGKILLed *before* forcing its decision leaves
    #: orphaned prepared subtransactions holding locks forever.
    decision_inquiry_after: float = 5.0
    #: Coordinator liveness bounds — mandatory in a real deployment
    #: (a SIGKILLed agent answers nothing until it is restarted).
    result_timeout: float = 10.0
    vote_timeout: float = 4.0
    ack_timeout: float = 1.0
    max_resends: int = 200
    #: Session layer: keep retransmitting across a kill/restart window
    #: rather than dead-lettering mid-recovery.
    rto: float = 0.3
    rto_backoff: float = 2.0
    max_rto: float = 3.0
    jitter: float = 0.05
    max_retries: int = 60
    #: WAL sync policy; "batched" is SIGKILL-safe (flush on append),
    #: "always" additionally survives machine crashes.
    sync: str = "batched"
    #: Per-peer outbound frame queue bound for the TCP transport
    #: (drop-oldest beyond it; retransmission recovers what mattered).
    outbox_limit: int = 4096
    #: Disk-fault injection per process: maps a site (or coordinator
    #: name) to a DiskFaultConfig-shaped dict.  Plain dicts so the
    #: whole tuning still round-trips through ``--tuning-json``.
    disk_faults: Optional[dict] = None

    def ltm_config(self) -> LTMConfig:
        return LTMConfig(
            op_duration=self.op_duration, lock_timeout=self.lock_timeout
        )

    def agent_config(self) -> AgentConfig:
        return AgentConfig(
            alive_check_interval=self.alive_check_interval,
            commit_retry_interval=self.commit_retry_interval,
            resubmit_retry_delay=self.resubmit_retry_delay,
            decision_inquiry_after=self.decision_inquiry_after,
        )

    def coordinator_timeouts(self) -> CoordinatorTimeouts:
        return CoordinatorTimeouts(
            result_timeout=self.result_timeout,
            vote_timeout=self.vote_timeout,
            ack_timeout=self.ack_timeout,
            max_resends=self.max_resends,
        )

    def reliable_config(self) -> ReliableConfig:
        return ReliableConfig(
            rto=self.rto,
            backoff=self.rto_backoff,
            max_rto=self.max_rto,
            jitter=self.jitter,
            max_retries=self.max_retries,
        )

    def durability_config(
        self, root: str, owner: Optional[str] = None
    ) -> DurabilityConfig:
        """Durability knobs for one process's WAL.

        ``owner`` is the process's bank site (agents) or coordinator
        name; if :attr:`disk_faults` targets it, the config carries the
        fault plan — only the targeted process gets a failing disk.
        """
        faults = None
        if owner is not None and self.disk_faults:
            spec = self.disk_faults.get(owner)
            if spec:
                faults = DiskFaultConfig.from_dict(spec)
        return DurabilityConfig(root=root, sync=self.sync, disk_faults=faults)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RtTuning":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class BankConfig:
    """The debit-credit bank shape every process must agree on.

    Agents rebuild their initial tables from this (deterministically,
    no data shipping); the storm client generates transactions against
    the same shape with the same seed.
    """

    sites: tuple = ("branch1", "branch2", "branch3")
    accounts_per_branch: int = 100
    tellers_per_branch: int = 10
    initial_account_balance: int = 1_000

    def initial_tables(self, site: str) -> dict:
        """The tables one branch site starts with."""
        if site not in self.sites:
            raise ValueError(f"unknown bank site {site!r}")
        return {
            "accounts": {
                i: self.initial_account_balance
                for i in range(self.accounts_per_branch)
            },
            "tellers": {i: 0 for i in range(self.tellers_per_branch)},
            "branch": {"balance": 0},
        }

    def to_dict(self) -> dict:
        data = asdict(self)
        data["sites"] = list(self.sites)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BankConfig":
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "sites" in kwargs:
            kwargs["sites"] = tuple(kwargs["sites"])
        return cls(**kwargs)
