"""Runtime processes: one 2PC Agent or one Coordinator per OS process.

``python -m repro serve agent --site branch1`` /
``python -m repro serve coordinator --name c1`` build the *unmodified*
protocol objects from ``core/`` against a
:class:`~repro.rt.host.ProtocolHost` (realtime kernel + TCP transport
+ session layer) and the durability subsystem's WAL as the real
recovery log:

- an agent opens ``DurableAgentLog`` under its data root, replays its
  history journal into the committed store image, pre-seeds the LTM
  with each logged subtransaction's terminal state, and enters via
  ``agent.crash()`` + ``agent.recover(log)`` — the same code path the
  simulator's crash matrix exercises — once the launcher delivers the
  route table;
- a coordinator opens ``DurableDecisionLog`` and calls
  ``resume_in_doubt()`` when its routes arrive, re-driving logged
  decisions whose acks are missing.

Readiness handshake: after the listener is bound (port 0 welcome) the
process prints exactly one status line on stdout — a JSON object under
``--json``, a human banner otherwise — carrying the bound address.
Launchers block on that line instead of sleep-polling.

Control plane (``FRAME_CONTROL`` frames addressed ``ctl:...``):
``routes`` installs the peer table (and triggers recovery /
``resume_in_doubt``), ``submit`` runs one global transaction and
replies with its outcome, ``arm-kill`` installs a crash probe that
SIGKILLs the process at an exact protocol point, ``stats`` reports
counters and store sums, ``quit`` shuts down cleanly.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from typing import Dict, List, Optional

from repro.common.ids import SubtxnId
from repro.core.agent import CRASH_POINTS, TwoPCAgent
from repro.core.certifier import Certifier, CertifierConfig
from repro.core.coordinator import COORDINATOR_KILL_POINTS, Coordinator
from repro.core.serial import SiteClock, make_sn_generator
from repro.durability.agent_log import DurableAgentLog
from repro.durability.decision_log import DurableDecisionLog
from repro.federation.leases import Lease, LeasedSN, open_allocator
from repro.federation.shard import ShardMap
from repro.durability.segments import DiskFault
from repro.history.model import History
from repro.ldbs.dlu import BoundDataGuard, DLUPolicy
from repro.ldbs.ltm import LocalTransactionManager, TxnState
from repro.rt.host import ProtocolHost
from repro.rt.journal import (
    HistoryJournal,
    committed_state,
    journal_path,
    read_journal,
)
from repro.rt.tuning import BankConfig, RtTuning

#: ``--at`` aliases for the agent's protocol crash points.
KILL_POINT_ALIASES = {
    "prepared": "post-prepare",
    "ready": "post-ready",
    "committed": "post-commit-record",
}

#: Exit code of a process that fail-stopped on an injected (or real)
#: disk fault — distinguishable from a SIGKILL (-9) in supervisor
#: ``exited`` events, so drills can attribute respawns per fault class.
EXIT_DISK_FAULT = 3


def agent_address(site: str) -> str:
    return f"agent:{site}"


def agent_control(site: str) -> str:
    return f"ctl:agent:{site}"


def coordinator_address(name: str) -> str:
    return f"coord:{name}"


def coordinator_control(name: str) -> str:
    return f"ctl:coord:{name}"


def allocator_control() -> str:
    """The (single) SN-lease allocator's control address."""
    return "ctl:alloc"


def resolve_kill_point(at: str) -> str:
    point = KILL_POINT_ALIASES.get(at, at)
    if point not in CRASH_POINTS:
        choices = sorted(set(CRASH_POINTS) | set(KILL_POINT_ALIASES))
        raise ValueError(f"unknown kill point {at!r} (choose from {choices})")
    return point


def resolve_coordinator_kill_point(at: str) -> str:
    if at not in COORDINATOR_KILL_POINTS:
        raise ValueError(
            f"unknown coordinator kill point {at!r} "
            f"(choose from {sorted(COORDINATOR_KILL_POINTS)})"
        )
    return at


def fail_stop_on_disk_fault(exc: BaseException) -> None:
    """A process that cannot persist must stop participating *now*.

    ``os._exit`` (not ``sys.exit``): nothing here is recoverable, no
    finalizer should run against a disk we just watched fail, and the
    supervisor's respawn + WAL recovery scanner own what happens next.
    """
    print(f"rt: fatal disk fault, failing stop: {exc}", file=sys.stderr, flush=True)
    os._exit(EXIT_DISK_FAULT)


def _parse_listen(listen: str):
    host, _, port = listen.rpartition(":")
    return host or "127.0.0.1", int(port)


class _NodeBase:
    """Shared lifecycle: host, journal, status line, control replies."""

    role = "node"

    def __init__(self, name: str, data_root: str, tuning: RtTuning) -> None:
        self.name = name
        self.data_root = data_root
        self.tuning = tuning
        self.host = ProtocolHost(
            name,
            reliable=tuning.reliable_config(),
            outbox_limit=tuning.outbox_limit,
        )
        self.kernel = self.host.kernel
        # A WAL append that fails inside a message handler (injected or
        # real EIO) must fail-stop the process, not be swallowed as a
        # protocol error: a 2PC participant that cannot log must not
        # keep voting.  Timer-driven appends funnel through the loop's
        # exception handler (installed in _run_node).
        self.host.wire.fatal_error_types = (DiskFault,)
        self.host.wire.on_fatal = fail_stop_on_disk_fault
        self.history = History()
        self.journal_file = journal_path(data_root, name)
        self.prior_ops = read_journal(self.journal_file)
        self.journal = HistoryJournal(self.journal_file)
        self.journal.attach(self.history)
        self.stop = asyncio.Event()
        self.routes_installed = False

    async def start(self, listen: str, json_mode: bool) -> None:
        host, port = _parse_listen(listen)
        bound = await self.host.start(host, port)
        self.announce(bound, json_mode)

    def status(self, bound) -> dict:
        return {
            "event": "ready",
            "role": self.role,
            "name": self.name,
            "host": bound[0],
            "port": bound[1],
            "pid": os.getpid(),
            "boot": self.host.wire.boot_id,
            "data_root": self.data_root,
        }

    def announce(self, bound, json_mode: bool) -> None:
        status = self.status(bound)
        if json_mode:
            print(json.dumps(status, sort_keys=True), flush=True)
        else:
            extra = ", ".join(
                f"{k}={v}"
                for k, v in status.items()
                if k not in ("event", "role", "name", "host", "port")
            )
            print(
                f"serving {self.role} {self.name} on "
                f"{bound[0]}:{bound[1]} ({extra})",
                flush=True,
            )

    def install_routes(self, peers: List[dict]) -> None:
        for peer in peers:
            if peer.get("name") == self.name:
                continue
            self.host.add_peer(
                peer["name"],
                peer["host"],
                int(peer["port"]),
                tuple(peer.get("addresses", ())),
            )
        self.routes_installed = True

    def reply_to(self, body: dict, response: dict) -> None:
        reply = body.get("reply")
        if not reply:
            return
        self.host.wire.add_route(reply["address"], reply["host"], reply["port"])
        response = dict(response)
        response.setdefault("from", self.name)
        self.host.wire.send_control(reply["address"], response)

    def request_stop(self) -> None:
        self.stop.set()

    async def close(self) -> None:
        await self.host.close()
        self.journal.close()


class AgentNode(_NodeBase):
    """One branch site: LTM + certifier + 2PC Agent, WAL-recovered."""

    role = "agent"

    def __init__(
        self, site: str, data_root: str, tuning: RtTuning, bank: BankConfig
    ) -> None:
        super().__init__(f"agent-{site}", data_root, tuning)
        self.site = site
        self.bank = bank
        kernel = self.kernel
        self.guard = BoundDataGuard(
            kernel, policy=DLUPolicy.ABORT, wait_timeout=tuning.lock_timeout
        )
        self.ltm = LocalTransactionManager(
            site,
            kernel,
            self.history,
            config=tuning.ltm_config(),
            dlu_guard=self.guard,
        )
        # The in-memory store died with the previous incarnation:
        # deterministic initial tables + the journal's committed image.
        for table, rows in bank.initial_tables(site).items():
            self.ltm.store.load(table, dict(rows))
        replayed, committed_subs = committed_state(self.prior_ops)
        for item, value in replayed.items():
            if value is not None:
                self.ltm.store.load(item.table, {item.key: value})
        self.certifier = Certifier(site, CertifierConfig())
        self.log = DurableAgentLog.open_site(
            site, tuning.durability_config(data_root, owner=site)
        )
        self.wal_entries_at_boot = len(list(self.log.entries()))
        # Pre-seed the LTM with each logged subtransaction's terminal
        # state, so ``agent.recover()`` finds the handles it expects: a
        # locally-committed incarnation is COMMITTED (recovery re-acks
        # it), anything else died with the process (unilateral abort,
        # recovery resubmits it — the paper's re-execution).
        for entry in self.log.entries():
            sub = SubtxnId(entry.txn, site, entry.incarnations - 1)
            self.ltm.begin(sub)
            if sub in committed_subs:
                self.ltm._txns[sub].state = TxnState.COMMITTED
            else:
                self.ltm.unilaterally_abort(sub)
        self.agent = TwoPCAgent(
            site,
            kernel,
            self.host.transport,
            self.history,
            self.ltm,
            self.certifier,
            dlu_guard=self.guard,
            config=tuning.agent_config(),
        )
        # Hold inbound protocol traffic (unacked, so peers keep
        # retransmitting) until routes arrive and recovery replays the
        # WAL; ``crash()`` + ``recover()`` is the simulator's own
        # restart path and re-enters PREPARED state, re-acks, resubmits.
        self.agent.crash()
        self.recovered_at_boot = 0
        self._recovery_done = False
        self.kills_armed = 0
        self.host.wire.register_control(agent_control(site), self._on_control)

    def status(self, bound) -> dict:
        status = super().status(bound)
        status["site"] = self.site
        status["recovery"] = self.wal_entries_at_boot > 0
        status["wal_entries"] = self.wal_entries_at_boot
        return status

    def _on_control(self, body: dict) -> None:
        op = body.get("op")
        if op == "routes":
            self.install_routes(body.get("peers", ()))
            if not self._recovery_done:
                self._recovery_done = True
                self.recovered_at_boot = self.agent.recover(self.log)
            self.reply_to(body, {"op": "routes-ok"})
        elif op == "arm-kill":
            point = resolve_kill_point(body.get("at", "prepared"))
            self._arm_kill(point, int(body.get("after", 1)))
            self.reply_to(body, {"op": "armed", "point": point})
        elif op == "stats":
            self.reply_to(body, {"op": "stats", "stats": self.stats()})
        elif op == "quit":
            self.request_stop()

    def _arm_kill(self, point: str, after: int) -> None:
        """SIGKILL this process at the ``after``-th hit of ``point``.

        A genuine SIGKILL at the exact protocol point: the WAL and the
        journal flush on every append, so everything the protocol acted
        on before this instant is on disk — and nothing after it.
        """
        self.kills_armed += 1
        remaining = {"n": max(1, after)}

        def probe(hit_point: str, _txn) -> bool:
            if hit_point != point:
                return False
            remaining["n"] -= 1
            if remaining["n"] > 0:
                return False
            os.kill(os.getpid(), signal.SIGKILL)
            return True  # unreachable

        self.agent.crash_probe = probe

    def stats(self) -> dict:
        session = self.host.session
        return {
            "role": "agent",
            "site": self.site,
            "pid": os.getpid(),
            "boot": self.host.wire.boot_id,
            "wal_entries_at_boot": self.wal_entries_at_boot,
            "recovered_at_boot": self.recovered_at_boot,
            "restarts": self.agent.restarts,
            "inquiries_sent": self.agent.inquiries_sent,
            # Entries not yet DONE: while any remain, in-place writes of
            # undecided subtransactions are visible in ``tables`` and the
            # bank invariants are not yet meaningful (verifiers poll this
            # down to zero before checking totals).
            "open_txns": self.agent.open_txn_count(),
            "fenced_begins": self.agent.fenced_begins,
            "tables": {
                table: sum(self.ltm.store.snapshot(table).values())
                for table in ("accounts", "tellers", "branch")
            },
            "ltm": {
                "commits": self.ltm.commits,
                "aborts": self.ltm.aborts,
                "unilateral_aborts": self.ltm.unilateral_aborts,
            },
            "session": {
                "retransmits": session.retransmits,
                "session_resets": session.session_resets,
                "dups_dropped": session.dups_dropped,
                "dead_letters": len(session.dead_letters),
            },
            "peer_resets": self.host.peer_resets,
            "journal_ops": self.journal.appended,
            "wire": self.host.wire.stats(),
            "wal": {
                "recovery_clean": self.log.wal.recovery.clean,
                "damaged_segment": self.log.wal.recovery.damaged_segment,
                "repaired_files": self.log.wal.repaired_files,
                "disk_fault_fired": self.log.wal.disk_fault_fired,
            },
        }

    async def close(self) -> None:
        await super().close()
        self.log.close()


class CoordinatorNode(_NodeBase):
    """One Coordinating Site, decision-logged and resumable.

    With ``federation`` (the cluster's shared federation config, as a
    dict), this coordinator owns a subset of the shard map, mints SNs
    from leased ranges prefetched off the allocator node, refuses
    wrong-shard BEGINs with a redirect hint, and answers the handoff
    control ops (``handoff-out`` / ``handoff-in`` / ``shard-map``).
    """

    role = "coordinator"

    #: Drain-poll period while a ``handoff-out`` waits for the shard's
    #: in-flight globals (wall seconds).
    DRAIN_POLL = 0.1
    #: Federation housekeeping tick: lease prefetch checks.
    PREFETCH_TICK = 0.5
    #: Re-request a lease if no grant arrived within this long (the
    #: allocator may have been down; fallback draws covered the gap).
    LEASE_RETRY = 2.0

    def __init__(
        self,
        name: str,
        data_root: str,
        tuning: RtTuning,
        federation: Optional[dict] = None,
    ) -> None:
        super().__init__(f"coord-{name}", data_root, tuning)
        self.coord_name = name
        self.federation = federation
        self.decision_log = DurableDecisionLog.open_name(
            name, tuning.durability_config(data_root, owner=name)
        )
        self.in_doubt_at_boot = len(self.decision_log.in_doubt())
        self.shard_map: Optional[ShardMap] = None
        self.leased: Optional[LeasedSN] = None
        if federation is not None:
            # Every coordinator derives the same initial assignment from
            # the shared federation config; handoffs arrive later as
            # control-frame pushes, and SHARD_EPOCH replay restores a
            # respawned adopter's ownership before any traffic lands.
            self.shard_map = ShardMap.initial(
                int(federation["n_shards"]),
                [str(c) for c in federation["coordinators"]],
            )
            for shard, epoch in self.decision_log.shard_epochs().items():
                self.shard_map.adopt(shard, name, epoch)
            self.leased = LeasedSN(name, clock=time.time)
            # A restarted coordinator must never mint below ranges a
            # previous incarnation held: even fallback draws skip past
            # the logged lease high-water.
            self.leased.seed_floor(float(self.decision_log.lease_high_water))
            self.sn_generator = self.leased
        else:
            clock = SiteClock(name)
            self.sn_generator = make_sn_generator(
                "clock", self.kernel, {name: clock}
            )
        self.coordinator = Coordinator(
            name=name,
            site=name,
            kernel=self.kernel,
            network=self.host.transport,
            history=self.history,
            sn_generator=self.sn_generator,
            timeouts=tuning.coordinator_timeouts(),
            decision_log=self.decision_log,
            shard_map=self.shard_map,
        )
        self.lease_span = int(federation["lease_span"]) if federation else 0
        self.drain_timeout = (
            float(federation.get("drain_timeout", 5.0)) if federation else 5.0
        )
        self._lease_request_at: Optional[float] = None
        self.lease_requests = 0
        self.lease_grants_received = 0
        self.handoffs_out = 0
        self.handoffs_in = 0
        self.resumed_at_boot = 0
        self._pending_submits: List[dict] = []
        self.submitted = 0
        self.kills_armed = 0
        self.host.wire.register_control(
            coordinator_control(name), self._on_control
        )
        if federation is not None:
            self._arm_federation_tick()

    def status(self, bound) -> dict:
        status = super().status(bound)
        status["coordinator"] = self.coord_name
        status["in_doubt"] = self.in_doubt_at_boot
        return status

    def _on_control(self, body: dict) -> None:
        op = body.get("op")
        if op == "routes":
            self.install_routes(body.get("peers", ()))
            # Now that agents are reachable, re-drive logged decisions
            # whose acks never landed.
            self.resumed_at_boot += self.coordinator.resume_in_doubt()
            self._maybe_prefetch()
            pending, self._pending_submits = self._pending_submits, []
            for queued in pending:
                self._submit(queued)
            self.reply_to(body, {"op": "routes-ok"})
        elif op == "lease":
            self._on_lease(body)
        elif op == "handoff-out":
            self._handoff_out(body)
        elif op == "handoff-in":
            self._handoff_in(body)
        elif op == "shard-map":
            self._install_shard_map(body)
        elif op == "die":
            # Drill hook: a deterministic SIGKILL from the orchestrator
            # (mid-handoff coordinator loss), same effect as arm-kill
            # but not tied to a protocol point.
            os.kill(os.getpid(), signal.SIGKILL)
        elif op == "arm-kill":
            point = resolve_coordinator_kill_point(
                body.get("at", "decision_logged")
            )
            self._arm_kill(point, int(body.get("after", 1)))
            self.reply_to(body, {"op": "armed", "point": point})
        elif op == "submit":
            if not self.routes_installed:
                # Raced ahead of the launcher's route table: hold it.
                self._pending_submits.append(body)
            else:
                self._submit(body)
        elif op == "stats":
            self.reply_to(body, {"op": "stats", "stats": self.stats()})
        elif op == "quit":
            self.request_stop()

    def _arm_kill(self, point: str, after: int) -> None:
        """SIGKILL this coordinator at the ``after``-th hit of ``point``.

        The three COORDINATOR_KILL_POINTS bracket the DECISION record:
        ``sn_drawn`` dies with nothing logged, ``decision_logged`` dies
        with the decision forced but **zero** COMMITs sent (the widest
        in-doubt window), ``mid_broadcast`` dies with the broadcast
        half-delivered.  In every case the respawned incarnation must
        replay ``DurableDecisionLog`` and ``resume_in_doubt()`` must
        finish delivery — that is exactly what the chaos drill asserts.
        """
        self.kills_armed += 1
        remaining = {"n": max(1, after)}

        def probe(hit_point: str, _txn) -> None:
            if hit_point != point:
                return
            # mid_broadcast only ever fires on >= 2 participants, so a
            # countdown hit here is always a genuine half-sent state.
            remaining["n"] -= 1
            if remaining["n"] > 0:
                return
            os.kill(os.getpid(), signal.SIGKILL)

        self.coordinator.kill_probe = probe

    # -- federation: leases + shard handoff -------------------------------

    def _arm_federation_tick(self) -> None:
        def tick() -> None:
            self._maybe_prefetch()
            self.kernel.schedule(self.PREFETCH_TICK, tick)

        self.kernel.schedule(self.PREFETCH_TICK, tick)

    def _maybe_prefetch(self) -> None:
        """Ask the allocator for a fresh range while the current one lasts.

        Fire-and-forget with a retry window: if the allocator (or its
        route) is down, the next tick re-requests and the HLC fallback
        keeps commits flowing in the meantime.
        """
        if self.leased is None or not self.routes_installed:
            return
        if not self.leased.needs_refill():
            return
        now = time.monotonic()
        if (
            self._lease_request_at is not None
            and now - self._lease_request_at < self.LEASE_RETRY
        ):
            return
        bound = self.host.bound
        if bound is None:
            return
        self._lease_request_at = now
        self.lease_requests += 1
        try:
            self.host.wire.send_control(
                allocator_control(),
                {
                    "op": "grant",
                    "owner": self.coord_name,
                    "span": self.lease_span,
                    "reply": {
                        "address": coordinator_control(self.coord_name),
                        "host": bound[0],
                        "port": bound[1],
                    },
                },
            )
        except Exception:
            pass

    def _on_lease(self, body: dict) -> None:
        if self.leased is None:
            return
        lease = Lease(
            lo=int(body["lo"]),
            hi=int(body["hi"]),
            owner=str(body.get("owner", self.coord_name)),
        )
        self._lease_request_at = None
        self.lease_grants_received += 1
        # Force the accepted range into the decision log before minting
        # from it: replay seeds the next incarnation's floor past it.
        self.decision_log.log_lease(lease.lo, lease.hi)
        self.leased.feed(lease)

    def _handoff_out(self, body: dict) -> None:
        """Phase 1 of a handoff: drain this shard, then tell the caller."""
        shard = int(body["shard"])
        to = str(body["to"])
        started = time.monotonic()
        inflight_at_start = self.coordinator.begin_drain(shard, successor=to)
        deadline = started + self.drain_timeout
        self.handoffs_out += 1

        def poll() -> None:
            inflight = self.coordinator.shard_inflight(shard)
            now = time.monotonic()
            if inflight > 0 and now < deadline:
                self.kernel.schedule(self.DRAIN_POLL, poll)
                return
            # Forced or clean, the shard stays marked draining until the
            # shard-map push names the new owner (end_drain happens in
            # _install_shard_map); refusals meanwhile redirect to ``to``.
            self.reply_to(
                body,
                {
                    "op": "drained",
                    "shard": shard,
                    "to": to,
                    "forced": inflight > 0,
                    "inflight_at_start": inflight_at_start,
                    "duration": round(now - started, 4),
                },
            )

        poll()

    def _handoff_in(self, body: dict) -> None:
        """Phase 2: adopt the shard at its bumped epoch (force-logged)."""
        shard = int(body["shard"])
        epoch = int(body["epoch"])
        self.coordinator.adopt_shard(shard, epoch)
        if self.shard_map is not None:
            self.shard_map.adopt(shard, self.coord_name, epoch)
        self.handoffs_in += 1
        self.reply_to(body, {"op": "adopted", "shard": shard, "epoch": epoch})

    def _install_shard_map(self, body: dict) -> None:
        """Phase 3 push: install the new assignment (epochs never regress)."""
        if self.shard_map is None:
            return
        self.shard_map.install(ShardMap.from_dict(body["map"]))
        for shard in list(self.coordinator._draining):
            if self.shard_map.owner(shard) != self.coord_name:
                self.coordinator.end_drain(shard)
        self.reply_to(body, {"op": "shard-map-ok"})

    def _submit(self, body: dict) -> None:
        spec = body["spec"]
        self.submitted += 1

        def finished(event) -> None:
            if event.error is not None:
                self.reply_to(
                    body,
                    {
                        "op": "outcome",
                        "txn": spec.txn.number,
                        "committed": False,
                        "reason": f"error: {event.error}",
                    },
                )
                return
            outcome = event.value
            self.reply_to(
                body,
                {
                    "op": "outcome",
                    "txn": spec.txn.number,
                    "committed": outcome.committed,
                    "reason": (
                        str(outcome.reason)
                        if outcome.reason is not None
                        else None
                    ),
                    "redirect": getattr(outcome, "redirect", None),
                    "sn": str(outcome.sn) if outcome.sn is not None else None,
                    "latency": outcome.latency,
                },
            )

        try:
            self.coordinator.submit(spec).subscribe(finished)
        except Exception as exc:
            self.reply_to(
                body,
                {
                    "op": "outcome",
                    "txn": spec.txn.number,
                    "committed": False,
                    "reason": f"submit failed: {exc}",
                },
            )

    def stats(self) -> dict:
        session = self.host.session
        federation = None
        if self.federation is not None:
            federation = {
                "shards_owned": self.shard_map.shards_of(self.coord_name),
                "lease_requests": self.lease_requests,
                "lease_grants": self.lease_grants_received,
                "lease_refills": self.leased.refills,
                "fallback_draws": self.leased.fallback_draws,
                "lease_remaining": self.leased.remaining,
                "lease_high_water": self.decision_log.lease_high_water,
                "wrong_shard_refusals": self.coordinator.wrong_shard_refusals,
                "shard_inflight": self.coordinator.shard_inflight_by_shard(),
                "shard_inflight_peak": self.coordinator.shard_inflight_peak,
                "handoffs_out": self.handoffs_out,
                "handoffs_in": self.handoffs_in,
            }
        return {
            "role": "coordinator",
            "name": self.coord_name,
            "pid": os.getpid(),
            "boot": self.host.wire.boot_id,
            "submitted": self.submitted,
            "committed": self.coordinator.committed,
            "aborted": self.coordinator.aborted,
            "in_doubt_at_boot": self.in_doubt_at_boot,
            "resumed_at_boot": self.resumed_at_boot,
            "decisions": len(self.decision_log.decisions()),
            "inquiries": self.coordinator.inquiries,
            "inquiries_presumed_abort": self.coordinator.inquiries_presumed_abort,
            "kills_armed": self.kills_armed,
            "federation": federation,
            "session": {
                "retransmits": session.retransmits,
                "session_resets": session.session_resets,
                "dups_dropped": session.dups_dropped,
                "dead_letters": len(session.dead_letters),
            },
            "peer_resets": self.host.peer_resets,
            "journal_ops": self.journal.appended,
            "wire": self.host.wire.stats(),
            "wal": {
                "recovery_clean": self.decision_log.wal.recovery.clean,
                "damaged_segment": self.decision_log.wal.recovery.damaged_segment,
                "repaired_files": self.decision_log.wal.repaired_files,
                "disk_fault_fired": self.decision_log.wal.disk_fault_fired,
            },
        }

    async def close(self) -> None:
        await super().close()
        self.decision_log.close()


class AllocatorNode(_NodeBase):
    """The federation's SN-lease authority: one WAL-backed allocator.

    Grants disjoint ``[lo, hi)`` serial-number ranges over control
    frames.  Each grant is force-logged before the reply leaves, so a
    SIGKILLed-and-respawned allocator resumes past every range ever
    handed out — no two coordinators can ever hold overlapping leases,
    across any sequence of crashes.  Grant bases are floored at
    ``time.time() * HLC_TICKS_PER_SECOND``, which keeps the lease space
    roughly tracking real time (and ahead of history even after the
    pathological wiped-WAL restart).
    """

    role = "allocator"

    def __init__(
        self, name: str, data_root: str, tuning: RtTuning, span: int = 64
    ) -> None:
        super().__init__(f"alloc-{name}", data_root, tuning)
        self.alloc_name = name
        self.allocator = open_allocator(
            tuning.durability_config(data_root, owner=name),
            clock=time.time,
            span=span,
        )
        self.high_water_at_boot = self.allocator.high_water
        self.host.wire.register_control(allocator_control(), self._on_control)

    def status(self, bound) -> dict:
        status = super().status(bound)
        status["allocator"] = self.alloc_name
        status["high_water"] = self.allocator.high_water
        return status

    def _on_control(self, body: dict) -> None:
        op = body.get("op")
        if op == "routes":
            self.install_routes(body.get("peers", ()))
            self.reply_to(body, {"op": "routes-ok"})
        elif op == "grant":
            span = int(body["span"]) if body.get("span") else None
            lease = self.allocator.grant(str(body.get("owner", "?")), span)
            self.reply_to(
                body,
                {
                    "op": "lease",
                    "lo": lease.lo,
                    "hi": lease.hi,
                    "owner": lease.owner,
                },
            )
        elif op == "stats":
            self.reply_to(body, {"op": "stats", "stats": self.stats()})
        elif op == "die":
            os.kill(os.getpid(), signal.SIGKILL)
        elif op == "quit":
            self.request_stop()

    def stats(self) -> dict:
        return {
            "role": "allocator",
            "name": self.alloc_name,
            "pid": os.getpid(),
            "boot": self.host.wire.boot_id,
            "grants": self.allocator.grants,
            "high_water": self.allocator.high_water,
            "high_water_at_boot": self.high_water_at_boot,
            "wire": self.host.wire.stats(),
            "wal": {
                "recovery_clean": self.allocator.wal.recovery.clean,
                "damaged_segment": self.allocator.wal.recovery.damaged_segment,
                "repaired_files": self.allocator.wal.repaired_files,
                "disk_fault_fired": self.allocator.wal.disk_fault_fired,
            },
        }

    async def close(self) -> None:
        await super().close()
        self.allocator.close()


async def _run_node(factory, listen: str, json_mode: bool) -> int:
    # built inside the running loop: the RealtimeKernel and the
    # transport bind to the loop that drives them.
    node: _NodeBase = factory()
    loop = asyncio.get_running_loop()

    # WAL appends driven by kernel timers (commit retries, alive
    # checks) raise outside any message handler; they surface here.
    def on_loop_exception(loop_, context) -> None:
        exc = context.get("exception")
        if isinstance(exc, DiskFault):
            fail_stop_on_disk_fault(exc)
        loop_.default_exception_handler(context)

    loop.set_exception_handler(on_loop_exception)
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, node.request_stop)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            pass
    await node.start(listen, json_mode)
    await node.stop.wait()
    await node.close()
    return 0


def _tuning_from_args(args) -> RtTuning:
    if getattr(args, "tuning_json", None):
        return RtTuning.from_dict(json.loads(args.tuning_json))
    return RtTuning()


def _bank_from_args(args) -> BankConfig:
    sites = tuple(
        s for s in (args.bank_sites or "").split(",") if s
    ) or BankConfig().sites
    return BankConfig(
        sites=sites,
        accounts_per_branch=args.accounts,
        tellers_per_branch=args.tellers,
        initial_account_balance=args.balance,
    )


def run_serve_agent(args) -> int:
    factory = lambda: AgentNode(  # noqa: E731
        args.site, args.data_root, _tuning_from_args(args), _bank_from_args(args)
    )
    return asyncio.run(_run_node(factory, args.listen, args.json))


def run_serve_coordinator(args) -> int:
    federation = None
    if getattr(args, "federation_json", None):
        federation = json.loads(args.federation_json)
    factory = lambda: CoordinatorNode(  # noqa: E731
        args.name, args.data_root, _tuning_from_args(args), federation
    )
    return asyncio.run(_run_node(factory, args.listen, args.json))


def run_serve_allocator(args) -> int:
    factory = lambda: AllocatorNode(  # noqa: E731
        args.name, args.data_root, _tuning_from_args(args), span=args.lease_span
    )
    return asyncio.run(_run_node(factory, args.listen, args.json))
