"""The wire codec: framed, CRC-checked, versioned protocol envelopes.

Frame layout (all integers little-endian), mirroring the WAL record
codec in :mod:`repro.durability.records`::

    u32 payload-length | u32 crc32(payload) | payload
    payload = u8 wire-version | u8 frame-kind | pickle(body)

Three frame kinds travel on a connection:

- ``FRAME_HELLO`` — connection preamble ``{"name", "boot"}``; the boot
  id changes on every process (re)start and lets the far side reset
  its session-layer channel state exactly once per restart.
- ``FRAME_MESSAGE`` — one ``net/messages.py`` envelope, all fields
  including the session layer's ``(epoch, seq)`` stamp and the
  overload layer's ``deadline``; the session contract IS the wire
  protocol.
- ``FRAME_CONTROL`` — out-of-band cluster plumbing (route tables,
  workload submission, kill-switch arming, stats), a dict with a
  ``"dst"`` address and an ``"op"``.

A frame that fails its CRC, declares a foreign wire version, or names
an unknown kind is rejected; the connection carrying it is closed (the
session layer retransmits over the next connection, so rejection is
safe). A short read is not an error — ``TruncatedFrame`` means "feed
me more bytes".
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, List, Optional, Tuple

from repro.common.errors import RefusalReason
from repro.net.messages import Message, MsgType

#: Bump on any incompatible change to the frame or body layout.
WIRE_VERSION = 1

FRAME_HELLO = 1
FRAME_MESSAGE = 2
FRAME_CONTROL = 3
_KINDS = frozenset((FRAME_HELLO, FRAME_MESSAGE, FRAME_CONTROL))

#: Upper bound on a single frame's payload; anything larger is treated
#: as stream corruption rather than buffered indefinitely.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct("<II")  # payload length, crc32(payload)
_PROLOGUE = struct.Struct("<BB")  # wire version, frame kind


class WireError(Exception):
    """Base class for wire codec failures."""


class TruncatedFrame(WireError):
    """The buffer ends mid-frame — not corruption, just a short read."""


class CorruptFrame(WireError):
    """CRC mismatch, impossible length, or unknown frame kind."""


class WireVersionMismatch(WireError):
    """The peer speaks a different wire version; refuse the stream."""


def encode_frame(kind: int, body: Any) -> bytes:
    """Encode one frame of ``kind`` carrying the picklable ``body``."""
    if kind not in _KINDS:
        raise WireError(f"unknown frame kind {kind}")
    payload = _PROLOGUE.pack(WIRE_VERSION, kind) + pickle.dumps(
        body, protocol=pickle.HIGHEST_PROTOCOL
    )
    if len(payload) > MAX_FRAME_BYTES:
        raise WireError(f"frame payload {len(payload)}B exceeds {MAX_FRAME_BYTES}B")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frame(buffer, offset: int = 0) -> Tuple[int, Any, int]:
    """Decode one frame at ``buffer[offset:]``.

    Returns ``(kind, body, next_offset)``. Raises ``TruncatedFrame``
    when the buffer ends before the frame does (feed more bytes and
    retry from the same offset), ``CorruptFrame`` / ``WireVersionMismatch``
    when the bytes are damaged or foreign.
    """
    if len(buffer) - offset < _HEADER.size:
        raise TruncatedFrame("incomplete frame header")
    length, crc = _HEADER.unpack_from(buffer, offset)
    if length > MAX_FRAME_BYTES:
        raise CorruptFrame(f"declared payload {length}B exceeds {MAX_FRAME_BYTES}B")
    if length < _PROLOGUE.size:
        raise CorruptFrame(f"declared payload {length}B is shorter than its prologue")
    start = offset + _HEADER.size
    end = start + length
    if len(buffer) < end:
        raise TruncatedFrame("incomplete frame payload")
    payload = bytes(buffer[start:end])
    if zlib.crc32(payload) != crc:
        raise CorruptFrame("payload CRC mismatch")
    version, kind = _PROLOGUE.unpack_from(payload, 0)
    if version != WIRE_VERSION:
        raise WireVersionMismatch(
            f"peer speaks wire version {version}, this process speaks {WIRE_VERSION}"
        )
    if kind not in _KINDS:
        raise CorruptFrame(f"unknown frame kind {kind}")
    try:
        body = pickle.loads(payload[_PROLOGUE.size :])
    except Exception as exc:  # a valid CRC over an unloadable body
        raise CorruptFrame(f"undecodable frame body: {exc}") from exc
    return kind, body, end


class FrameDecoder:
    """Incremental decoder for a TCP byte stream.

    ``feed`` returns every complete frame and keeps the tail buffered;
    corruption raises through to the caller, who should drop the
    connection (retransmission recovers anything undelivered).
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Tuple[int, Any]]:
        self._buffer.extend(data)
        frames: List[Tuple[int, Any]] = []
        offset = 0
        while True:
            try:
                kind, body, offset = decode_frame(self._buffer, offset)
            except TruncatedFrame:
                break
            frames.append((kind, body))
        if offset:
            del self._buffer[:offset]
        return frames

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# -- message envelopes --------------------------------------------------------


def message_body(message: Message) -> dict:
    """Flatten a ``Message`` to its wire body (enums by value)."""
    return {
        "type": message.type.value,
        "src": message.src,
        "dst": message.dst,
        "txn": message.txn,
        "payload": message.payload,
        "sn": message.sn,
        "reason": message.reason.value if message.reason is not None else None,
        "seq": message.seq,
        "session": message.session,
        "deadline": message.deadline,
        "shard": message.shard,
        "shard_epoch": message.shard_epoch,
    }


def message_from_body(body: dict) -> Message:
    """Rebuild a ``Message`` from its wire body."""
    reason = body.get("reason")
    session = body.get("session")
    return Message(
        type=MsgType(body["type"]),
        src=body["src"],
        dst=body["dst"],
        txn=body["txn"],
        payload=body.get("payload"),
        sn=body.get("sn"),
        reason=RefusalReason(reason) if reason is not None else None,
        seq=body["seq"],
        session=tuple(session) if session is not None else None,
        deadline=body.get("deadline"),
        shard=body.get("shard"),
        shard_epoch=body.get("shard_epoch"),
    )


def encode_message(message: Message) -> bytes:
    """Encode one protocol envelope as a ``FRAME_MESSAGE`` frame."""
    return encode_frame(FRAME_MESSAGE, message_body(message))


def decode_message(frame: bytes) -> Message:
    """Decode a single complete ``FRAME_MESSAGE`` frame (tests/tools)."""
    kind, body, _end = decode_frame(frame)
    if kind != FRAME_MESSAGE:
        raise WireError(f"expected a message frame, got kind {kind}")
    return message_from_body(body)
