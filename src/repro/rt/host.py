"""``ProtocolHost``: one process's protocol substrate.

Bundles the pieces every runtime process needs — a
:class:`~repro.rt.kernel.RealtimeKernel`, a
:class:`~repro.rt.wire.TcpTransport`, and (by default) the existing
:class:`~repro.net.reliable.SessionLayer` stacked on top so the
``(epoch, seq)`` session contract is literally what travels on the
wire. The protocol objects (``TwoPCAgent``, ``Coordinator``) are
constructed against ``host.kernel`` and ``host.transport`` and run
unmodified.

Restart detection: every connection opens with a HELLO frame carrying
the sender's boot id. When a peer's boot id *changes* (not on first
contact, not on a plain reconnect), the host calls
``SessionLayer.reset_peer`` for each of that peer's protocol
addresses — exactly once per restart, however many connections carry
the new id — so the restarted process's empty reassembly cursors and
our outstanding send windows resynchronise instead of wedging.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Sequence, Tuple

from repro.net.reliable import ReliableConfig, SessionLayer
from repro.rt.kernel import RealtimeKernel
from repro.rt.wire import TcpTransport


class ProtocolHost:
    """Kernel + transport (+ session layer) for one runtime process."""

    def __init__(
        self,
        name: str,
        *,
        reliable: Optional[ReliableConfig] = None,
        kernel: Optional[RealtimeKernel] = None,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        boot_id: Optional[str] = None,
        outbox_limit: Optional[int] = None,
    ) -> None:
        self.name = name
        self.kernel = kernel if kernel is not None else RealtimeKernel(loop)
        if outbox_limit is not None:
            self.wire = TcpTransport(
                name, self.kernel, boot_id=boot_id, outbox_limit=outbox_limit
            )
        else:
            self.wire = TcpTransport(name, self.kernel, boot_id=boot_id)
        self.session: Optional[SessionLayer] = (
            SessionLayer(self.kernel, self.wire, reliable)
            if reliable is not None
            else None
        )
        #: What the protocol objects are built against: the session
        #: layer when reliability is on, the raw wire otherwise.
        self.transport = self.session if self.session is not None else self.wire
        self._peer_boots: Dict[str, str] = {}
        self._peer_addresses: Dict[str, Tuple[str, ...]] = {}
        #: Session resets triggered by boot-id changes (observability;
        #: the satellite regression test pins this to exactly one per
        #: restart).
        self.peer_resets = 0
        self.wire.on_hello = self._on_hello

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind the listener; returns the bound ``(host, port)``."""
        return await self.wire.start(host, port)

    @property
    def bound(self) -> Optional[Tuple[str, int]]:
        return self.wire.bound

    def add_peer(
        self, name: str, host: str, port: int, addresses: Sequence[str] = ()
    ) -> None:
        """Route ``addresses`` (protocol endpoints) to a peer process."""
        for address in addresses:
            self.wire.add_route(address, host, port)
        if addresses:
            known = self._peer_addresses.get(name, ())
            merged = dict.fromkeys(known + tuple(addresses))
            self._peer_addresses[name] = tuple(merged)

    def _on_hello(self, name: str, boot: str, _body: dict) -> None:
        previous = self._peer_boots.get(name)
        self._peer_boots[name] = boot
        if previous is None or previous == boot:
            # first contact or a plain reconnect of the same
            # incarnation: session state is still coherent.
            return
        self.peer_resets += 1
        if self.session is not None:
            for address in self._peer_addresses.get(name, ()):
                # hop onto the kernel so resets serialise with protocol
                # callbacks instead of racing them mid-handler.
                self.kernel.call_soon(
                    lambda a=address: self.session.reset_peer(a)
                )

    async def close(self) -> None:
        await self.wire.close()
