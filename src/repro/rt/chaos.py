"""``python -m repro chaos-rt``: the composed real-cluster chaos drill.

One seed drives everything:

* the debit-credit **workload** (same seed the storm client uses);
* the **nemesis plan** — seeded latency spikes, throttles, connection
  resets, half-open blackholes, and timed bidirectional partitions,
  executed live over the nemesis control socket while traffic runs;
* the **kill mode** (``seed % 4``): SIGKILL the coordinator at
  ``sn_drawn`` / ``decision_logged`` / ``mid_broadcast``, or an agent
  at ``prepared``;
* a **disk fault**: one agent site's WAL injects a one-shot fsync EIO
  mid-run; the process fail-stops (exit code 3), the supervisor
  respawns it, and the marker file keeps the respawn from crash-looping
  on the same injected fault.

After the traffic drains and the plan heals, the storm client's full
merged-journal invariant battery runs (atomic commitment, bank sums,
journal-derived committed set), plus the drill's own assertions: the
partition really cut a coordinator link, the fsync fault really fired
and the victim really died with exit code 3 and came back, the kill
victim really died with SIGKILL and came back, and (for the in-doubt
coordinator kill points) the respawned coordinator really replayed its
decision log and re-drove the in-doubt global.

Results land in ``BENCH_rt.json`` under ``"chaos"`` — goodput, p99,
and a measured **recovery time per fault class**: process kill and
disk fault from supervisor exited→restarted event timestamps, network
partition from heal-to-first-commit.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import time
from argparse import Namespace
from typing import Dict, List, Optional

from repro.rt.nemesis import (
    NemesisControlClient,
    NemesisPlanConfig,
    execute_plan,
    generate_plan,
)
from repro.rt.node import EXIT_DISK_FAULT
from repro.rt.storm import StormClient
from repro.rt.tuning import BankConfig, RtTuning

#: ``seed % 4`` -> who dies, and where in the protocol.
KILL_MODES = (
    ("coordinator", "sn_drawn"),
    ("coordinator", "decision_logged"),
    ("coordinator", "mid_broadcast"),
    ("agent", "prepared"),
)


class ChaosRtDrill:
    """One seeded end-to-end chaos run against a real cluster."""

    def __init__(self, args) -> None:
        self.args = args
        self.seed = args.seed
        self.kill_role, self.kill_at = KILL_MODES[self.seed % 4]
        self.bank = BankConfig()
        sites = list(self.bank.sites)
        if self.kill_role == "agent":
            # distinct victims: the kill hits one site, the disk
            # another, so each respawn attributes to exactly one class.
            self.kill_agent_index = 1 + (self.seed // 4) % len(sites)
            self.fault_site = sites[
                (self.kill_agent_index) % len(sites)
            ]
        else:
            self.kill_agent_index = 0
            self.fault_site = sites[self.seed % len(sites)]
        self.failures: List[str] = []
        self.plan_fired: List[dict] = []
        self.nemesis_stats: Optional[dict] = None
        self.fault_log: List[dict] = []
        self.partition_ends: List[float] = []

    # -- the nemesis side task (runs concurrently with the traffic) -----------

    async def _nemesis_task(self, info: dict) -> None:
        control = info["nemesis"]["control"]
        client = NemesisControlClient(control["host"], control["port"])
        await client.connect()
        try:
            coordinator = f"coord-{info['coordinator']['name']}"
            agents = [f"agent-{a['site']}" for a in info["agents"]]
            plan = generate_plan(
                NemesisPlanConfig(
                    seed=self.seed, duration=self.args.plan_duration
                ),
                coordinator,
                agents,
            )
            loop = asyncio.get_running_loop()

            def on_event(at: float, op: dict, ack: dict) -> None:
                now = loop.time()
                self.plan_fired.append({"at": at, "op": op, "ack": ack})
                if not ack.get("ok"):
                    self.failures.append(f"nemesis op rejected: {op} -> {ack}")
                elif op["op"] == "partition":
                    self.partition_ends.append(now + float(op["duration"]))

            await execute_plan(client, plan, on_event)
            # let the longest still-ticking fault expire, then heal
            # explicitly — verification must run against a clean fabric.
            tail = max(
                (
                    float(item["op"].get("duration", 0.0))
                    for item in self.plan_fired
                ),
                default=0.0,
            )
            await asyncio.sleep(tail + 0.2)
            await client.request({"op": "heal"})
            stats = await client.request({"op": "stats", "log": True})
            self.nemesis_stats = stats.get("stats")
            self.fault_log = stats.get("fault_log", [])
        finally:
            await client.close()

    # -- recovery-time extraction from supervisor events ----------------------

    @staticmethod
    def _recovery_from_events(
        events: List[dict], role: str, name: str, returncode: int
    ) -> Optional[float]:
        """Seconds from the matching ``exited`` to the next ``restarted``."""
        exited_at = None
        for event in events:
            kind = event.get("event")
            if (
                exited_at is None
                and kind == "exited"
                and event.get("role") == role
                and event.get("name") == name
                and event.get("returncode") == returncode
            ):
                exited_at = event["t"]
            elif (
                exited_at is not None
                and kind == "restarted"
                and event.get("role") == role
                and event.get("name") == name
            ):
                return round(event["t"] - exited_at, 4)
        return None

    def _partition_recovery(self, outcomes: Dict[int, dict]) -> Optional[float]:
        """Heal-to-first-commit over the earliest partition window."""
        if not self.partition_ends:
            return None
        heal = min(self.partition_ends)
        after = [
            out["t_done"]
            for out in outcomes.values()
            if out.get("committed") and out.get("t_done", 0.0) >= heal
        ]
        if not after:
            return None
        return round(min(after) - heal, 4)

    # -- the run --------------------------------------------------------------

    def _storm_args(self) -> Namespace:
        args = self.args
        return Namespace(
            data_root=args.data_root,
            launch=True,
            txns=args.txns,
            seed=self.seed,
            remote_fraction=args.remote_fraction,
            inflight=args.inflight,
            kill_agent=self.kill_agent_index,
            kill_coordinator=self.kill_role == "coordinator",
            at=self.kill_at,
            kill_after=3 if self.kill_role == "coordinator" else 2,
            txn_timeout=args.txn_timeout,
            timeout=args.timeout,
            settle=args.settle,
            label=f"chaos_seed{self.seed}",
            bench_out=args.bench_out,
            json_report=False,
            quit_cluster=False,
        )

    def _tuning(self) -> RtTuning:
        return RtTuning(
            disk_faults={
                self.fault_site: {"seed": self.seed, "fail_fsync_at": 2}
            }
        )

    async def run(self) -> int:
        args = self.args
        client = StormClient(self._storm_args())
        client.extra_cluster_args = [
            "--nemesis",
            "--tuning-json",
            json.dumps(self._tuning().to_dict(), sort_keys=True),
        ]
        client.side_task_factory = self._nemesis_task
        print(
            f"chaos-rt seed {self.seed}: kill {self.kill_role} at "
            f"{self.kill_at}"
            + (
                f" (agent #{self.kill_agent_index})"
                if self.kill_role == "agent"
                else ""
            )
            + f", fsync fault on {self.fault_site}",
            flush=True,
        )
        try:
            await client.run()
        except Exception as exc:
            self.failures.append(f"storm run crashed: {exc}")
            with contextlib.suppress(Exception):
                await client._stop_cluster()
        self.failures.extend(client.failures)
        report = client.report or {}
        events = client.cluster_events

        # -- drill assertions over and above the storm battery ----------------
        if not any(
            item["op"]["op"] == "partition" for item in self.plan_fired
        ):
            self.failures.append("no partition was ever applied")
        marker = os.path.join(
            args.data_root, f"agent-{self.fault_site}", "disk-fault-fired"
        )
        if not os.path.exists(marker):
            self.failures.append(
                f"injected fsync fault on {self.fault_site} never fired "
                f"(no marker at {marker})"
            )
        disk_recovery = self._recovery_from_events(
            events, "agent", self.fault_site, EXIT_DISK_FAULT
        )
        if disk_recovery is None:
            self.failures.append(
                f"no exited(rc={EXIT_DISK_FAULT})->restarted pair for "
                f"disk-faulted agent {self.fault_site}"
            )
        if self.kill_role == "coordinator":
            victim_role, victim_name = (
                "coordinator",
                report.get("kill", {}).get("coordinator") or "c1",
            )
        else:
            victim_role = "agent"
            victim_name = self.bank.sites[self.kill_agent_index - 1]
        kill_recovery = self._recovery_from_events(
            events, victim_role, victim_name, -9
        )
        if kill_recovery is None:
            self.failures.append(
                f"no exited(rc=-9)->restarted pair for killed "
                f"{victim_role} {victim_name}"
            )
        if self.kill_role == "coordinator" and self.kill_at in (
            "decision_logged",
            "mid_broadcast",
        ):
            coord_stats = report.get("coordinator")
            if coord_stats and coord_stats.get("resumed_at_boot", 0) < 1:
                self.failures.append(
                    f"respawned coordinator resumed no in-doubt globals "
                    f"after a {self.kill_at} kill"
                )
        partition_recovery = self._partition_recovery(client.outcomes)

        # -- evidence + bench -------------------------------------------------
        self._persist_fault_log(args.data_root)
        entry = {
            "seed": self.seed,
            "kill": {"role": self.kill_role, "at": self.kill_at},
            "fault_site": self.fault_site,
            "txns": report.get("txns"),
            "committed_journal": report.get("invariants", {}).get(
                "journal_committed"
            ),
            "goodput_committed_per_s": report.get(
                "throughput_committed_per_s"
            ),
            "latency_p99_s": report.get("latency_p99_s"),
            "recovery_s": {
                "kill": kill_recovery,
                "disk_fault": disk_recovery,
                "partition": partition_recovery,
            },
            "nemesis": {
                "faults_applied": (self.nemesis_stats or {}).get(
                    "faults_applied"
                ),
                "bytes_dropped": (self.nemesis_stats or {}).get(
                    "bytes_dropped"
                ),
                "conns_reset": (self.nemesis_stats or {}).get("conns_reset"),
            },
            "violations": report.get("invariants", {}).get(
                "atomic_commitment_violations"
            ),
            "ok": not self.failures,
            "recorded_at": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
        }
        self._record_bench(entry)
        self._print_report(entry)
        return 1 if self.failures else 0

    def _persist_fault_log(self, data_root: str) -> None:
        path = os.path.join(data_root, "nemesis-faults.json")
        with contextlib.suppress(OSError):
            with open(path, "w") as fh:
                json.dump(
                    {
                        "seed": self.seed,
                        "fired": self.plan_fired,
                        "fault_log": self.fault_log,
                        "stats": self.nemesis_stats,
                    },
                    fh,
                    indent=2,
                    sort_keys=True,
                    default=str,
                )
                fh.write("\n")

    def _record_bench(self, entry: dict) -> None:
        path = self.args.bench_out
        bench = {"schema": 1, "runs": {}}
        if os.path.exists(path):
            with contextlib.suppress(Exception):
                with open(path) as fh:
                    bench = json.load(fh)
        bench.setdefault("chaos", {})
        bench["chaos"][f"seed{self.seed}"] = entry
        with open(path, "w") as fh:
            json.dump(bench, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def _print_report(self, entry: dict) -> None:
        if self.args.json_report:
            print(
                json.dumps(
                    {"entry": entry, "failures": self.failures},
                    sort_keys=True,
                    default=str,
                ),
                flush=True,
            )
            return
        recovery = entry["recovery_s"]
        print(
            f"chaos-rt[seed {self.seed}]: "
            f"{entry['committed_journal']} journal-committed of "
            f"{entry['txns']} at {entry['goodput_committed_per_s']} "
            f"commits/s (p99 {entry['latency_p99_s']}s)",
            flush=True,
        )
        print(
            f"chaos-rt: recovery kill={recovery['kill']}s "
            f"disk_fault={recovery['disk_fault']}s "
            f"partition={recovery['partition']}s; "
            f"nemesis applied {entry['nemesis']['faults_applied']} faults, "
            f"dropped {entry['nemesis']['bytes_dropped']} bytes",
            flush=True,
        )
        for failure in self.failures:
            print(f"chaos-rt: FAIL {failure}", flush=True)
        if not self.failures:
            print("chaos-rt: all invariants hold", flush=True)


def run_chaos(args) -> int:
    async def _main() -> int:
        return await ChaosRtDrill(args).run()

    return asyncio.run(_main())
