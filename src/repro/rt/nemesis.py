"""Toxiproxy-style wire nemesis for the real cluster.

A :class:`NemesisProxy` owns one TCP relay *per ordered peer pair*:
the cluster supervisor (``serve cluster --nemesis``) points every
child's route for peer Y at the X→Y relay instead of Y's real socket,
so every protocol byte between cluster processes crosses a hop this
module controls.  From a seeded plan — or live over a JSON-lines
control socket — each link can suffer:

* ``latency`` — per-chunk delay spikes;
* ``throttle`` — bandwidth capped at N KiB/s;
* ``reset`` — every live connection of the pair aborted (RST-like),
  which is how a frame gets cut in half on the receiver;
* ``blackhole`` — bytes silently discarded while the connection stays
  up (the half-open illusion: the sender's writes succeed, the
  receiver sees nothing); on heal the poisoned connections are aborted
  so both ends resync on a fresh stream instead of resuming mid-frame;
* ``partition`` — a timed bidirectional cut: both directions
  blackholed, live connections aborted, and *new* connections refused
  until the heal time.

Every applied fault lands in ``fault_log`` (timestamped), which drills
persist as evidence.  The supervisor's own control frames to children
go direct, not through the relays — supervision survives partitions.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

_READ_CHUNK = 65536


class _Conn:
    """One proxied connection: the client and upstream halves."""

    __slots__ = ("client_writer", "upstream_writer")

    def __init__(self, client_writer, upstream_writer) -> None:
        self.client_writer = client_writer
        self.upstream_writer = upstream_writer

    def abort(self) -> None:
        """Hard-kill both halves (no FIN handshake, no flush)."""
        for writer in (self.client_writer, self.upstream_writer):
            if writer is None:
                continue
            with contextlib.suppress(Exception):
                transport = writer.transport
                if transport is not None:
                    transport.abort()


class _Link:
    """One directional relay (``src`` dials ``dst`` through it)."""

    def __init__(self, key: str, src: str, dst: str, upstream) -> None:
        self.key = key
        self.src = src
        self.dst = dst
        self.upstream = upstream  # (host, port) of dst's real socket
        self.listen: Optional[Tuple[str, int]] = None
        self.server: Optional[asyncio.AbstractServer] = None
        self.conns: set = set()
        # fault state: value + expiry deadline on the event-loop clock
        self.delay = 0.0
        self.delay_until = 0.0
        self.rate = 0.0  # bytes/sec, 0 = unlimited
        self.rate_until = 0.0
        self.black_until = 0.0
        self.refuse_until = 0.0
        # counters
        self.bytes_forwarded = 0
        self.bytes_dropped = 0
        self.conns_opened = 0
        self.conns_refused = 0
        self.conns_reset = 0

    def blackholed(self, now: float) -> bool:
        return now < self.black_until

    def refusing(self, now: float) -> bool:
        return now < self.refuse_until

    def active_delay(self, now: float) -> float:
        return self.delay if now < self.delay_until else 0.0

    def active_rate(self, now: float) -> float:
        return self.rate if now < self.rate_until else 0.0

    def abort_conns(self) -> int:
        conns, self.conns = list(self.conns), set()
        for conn in conns:
            conn.abort()
        self.conns_reset += len(conns)
        return len(conns)

    def clear_faults(self) -> None:
        self.delay_until = 0.0
        self.rate_until = 0.0
        self.black_until = 0.0
        self.refuse_until = 0.0

    def stats(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "bytes_forwarded": self.bytes_forwarded,
            "bytes_dropped": self.bytes_dropped,
            "conns_opened": self.conns_opened,
            "conns_refused": self.conns_refused,
            "conns_reset": self.conns_reset,
            "live_conns": len(self.conns),
        }


def link_key(src: str, dst: str) -> str:
    return f"{src}->{dst}"


class NemesisProxy:
    """All the relays of one cluster plus the live control socket."""

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host
        self.links: Dict[str, _Link] = {}
        self.control_bound: Optional[Tuple[str, int]] = None
        self._control_server: Optional[asyncio.AbstractServer] = None
        self._heal_handles: List[asyncio.TimerHandle] = []
        self.fault_log: List[dict] = []
        self.faults_applied = 0
        self._closed = False

    # -- topology -------------------------------------------------------------

    async def add_link(
        self, src: str, dst: str, upstream_host: str, upstream_port: int
    ) -> Tuple[str, int]:
        """Start the ``src``→``dst`` relay; returns its listen address."""
        key = link_key(src, dst)
        link = _Link(key, src, dst, (upstream_host, int(upstream_port)))
        link.server = await asyncio.start_server(
            lambda r, w, _link=link: self._on_client(_link, r, w),
            host=self.host,
            port=0,
        )
        sockname = link.server.sockets[0].getsockname()
        link.listen = (sockname[0], sockname[1])
        self.links[key] = link
        return link.listen

    async def start_control(self) -> Tuple[str, int]:
        """Bind the JSON-lines control socket (one request per line)."""
        self._control_server = await asyncio.start_server(
            self._on_control_client, host=self.host, port=0
        )
        sockname = self._control_server.sockets[0].getsockname()
        self.control_bound = (sockname[0], sockname[1])
        return self.control_bound

    # -- data path ------------------------------------------------------------

    async def _on_client(self, link: _Link, reader, writer) -> None:
        now = asyncio.get_running_loop().time()
        if self._closed or link.refusing(now):
            link.conns_refused += 1
            with contextlib.suppress(Exception):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(*link.upstream)
        except OSError:
            with contextlib.suppress(Exception):
                writer.close()
            return
        conn = _Conn(writer, up_writer)
        link.conns.add(conn)
        link.conns_opened += 1
        try:
            await asyncio.gather(
                self._pump(link, reader, up_writer),
                self._pump(link, up_reader, writer),
            )
        finally:
            link.conns.discard(conn)
            conn.abort()

    async def _pump(self, link: _Link, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        with contextlib.suppress(OSError, asyncio.CancelledError):
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                now = loop.time()
                if link.blackholed(now):
                    # keep reading (the sender must not block — that is
                    # the half-open illusion) but deliver nothing.
                    link.bytes_dropped += len(data)
                    continue
                delay = link.active_delay(now)
                if delay > 0:
                    await asyncio.sleep(delay)
                rate = link.active_rate(now)
                if rate > 0:
                    await asyncio.sleep(len(data) / rate)
                writer.write(data)
                await writer.drain()
                link.bytes_forwarded += len(data)

    # -- control plane --------------------------------------------------------

    async def _on_control_client(self, reader, writer) -> None:
        with contextlib.suppress(OSError, asyncio.CancelledError):
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    body = json.loads(line)
                    response = self.apply(body)
                except Exception as exc:  # malformed op: report, keep serving
                    response = {"ok": False, "error": str(exc)}
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        with contextlib.suppress(Exception):
            writer.close()

    def _select(self, body: dict) -> List[_Link]:
        """The links an op targets: an exact key, or a pair (both ways)."""
        if "link" in body:
            key = body["link"]
            if key not in self.links:
                raise KeyError(f"unknown link {key!r}")
            return [self.links[key]]
        a, b = body.get("a"), body.get("b")
        if not a or not b:
            raise ValueError("op needs 'a' and 'b' (or 'link')")
        selected = [
            link
            for link in self.links.values()
            if (link.src == a and link.dst == b)
            or (link.src == b and link.dst == a)
        ]
        if not selected:
            raise KeyError(f"no links between {a!r} and {b!r}")
        return selected

    def _schedule_heal_abort(self, links: List[_Link], duration: float) -> None:
        """A healed blackhole must not resume a stream mid-frame: the
        discarded bytes are gone for good, so abort the poisoned
        connections at heal time and let both ends reconnect clean."""
        loop = asyncio.get_running_loop()

        def heal_abort() -> None:
            now = loop.time()
            for link in links:
                if not link.blackholed(now):
                    link.abort_conns()

        self._heal_handles.append(loop.call_later(duration, heal_abort))

    def apply(self, body: dict) -> dict:
        """Apply one fault op; returns its JSON-able acknowledgement."""
        op = body.get("op")
        loop = asyncio.get_running_loop()
        now = loop.time()
        if op == "stats":
            response = {"ok": True, "stats": self.stats()}
            if body.get("log"):
                response["fault_log"] = list(self.fault_log)
            return response
        if op == "heal":
            aborted = 0
            for link in self.links.values():
                if link.blackholed(now):
                    aborted += link.abort_conns()
                link.clear_faults()
            self._log(body, now)
            return {"ok": True, "op": "heal", "aborted_conns": aborted}

        duration = float(body.get("duration", 1.0))
        if op == "partition":
            links = self._select(body)
            aborted = 0
            for link in links:
                link.black_until = now + duration
                link.refuse_until = now + duration
                aborted += link.abort_conns()
            self._log(body, now)
            return {
                "ok": True,
                "op": op,
                "links": [l.key for l in links],
                "aborted_conns": aborted,
                "heal_in": duration,
            }
        if op == "blackhole":
            links = self._select(body)
            for link in links:
                link.black_until = now + duration
            self._schedule_heal_abort(links, duration)
            self._log(body, now)
            return {
                "ok": True,
                "op": op,
                "links": [l.key for l in links],
                "heal_in": duration,
            }
        if op == "reset":
            links = self._select(body)
            aborted = sum(link.abort_conns() for link in links)
            self._log(body, now)
            return {
                "ok": True,
                "op": op,
                "links": [l.key for l in links],
                "aborted_conns": aborted,
            }
        if op == "latency":
            links = self._select(body)
            delay = float(body.get("delay", 0.1))
            for link in links:
                link.delay = delay
                link.delay_until = now + duration
            self._log(body, now)
            return {
                "ok": True,
                "op": op,
                "links": [l.key for l in links],
                "delay": delay,
                "heal_in": duration,
            }
        if op == "throttle":
            links = self._select(body)
            rate = float(body.get("rate_kbps", 64.0)) * 1024.0
            for link in links:
                link.rate = rate
                link.rate_until = now + duration
            self._log(body, now)
            return {
                "ok": True,
                "op": op,
                "links": [l.key for l in links],
                "rate_bytes_s": rate,
                "heal_in": duration,
            }
        raise ValueError(f"unknown nemesis op {op!r}")

    def _log(self, body: dict, now: float) -> None:
        self.faults_applied += 1
        entry = dict(body)
        entry["t"] = round(now, 4)
        self.fault_log.append(entry)

    def stats(self) -> dict:
        return {
            "links": {key: link.stats() for key, link in self.links.items()},
            "faults_applied": self.faults_applied,
            "bytes_forwarded": sum(
                l.bytes_forwarded for l in self.links.values()
            ),
            "bytes_dropped": sum(l.bytes_dropped for l in self.links.values()),
            "conns_reset": sum(l.conns_reset for l in self.links.values()),
            "conns_refused": sum(
                l.conns_refused for l in self.links.values()
            ),
        }

    def describe(self) -> dict:
        """The cluster.json section clients read."""
        return {
            "control": {
                "host": self.control_bound[0] if self.control_bound else None,
                "port": self.control_bound[1] if self.control_bound else None,
            },
            "links": {
                key: {
                    "listen": list(link.listen),
                    "upstream": list(link.upstream),
                }
                for key, link in self.links.items()
            },
        }

    async def close(self) -> None:
        self._closed = True
        for handle in self._heal_handles:
            handle.cancel()
        servers = [l.server for l in self.links.values() if l.server]
        if self._control_server is not None:
            servers.append(self._control_server)
        for server in servers:
            server.close()
        for server in servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        for link in self.links.values():
            link.abort_conns()


class NemesisControlClient:
    """JSON-lines client for the proxy's control socket."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)
        self._reader = None
        self._writer = None

    async def connect(self) -> "NemesisControlClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def request(self, body: dict, timeout: float = 10.0) -> dict:
        if self._writer is None:
            await self.connect()
        self._writer.write(json.dumps(body).encode() + b"\n")
        await self._writer.drain()
        line = await asyncio.wait_for(self._reader.readline(), timeout)
        if not line:
            raise ConnectionError("nemesis control socket closed")
        return json.loads(line)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()
            self._reader = self._writer = None


@dataclass(frozen=True)
class NemesisPlanConfig:
    """Shape of a seeded fault plan (how many of each, over how long)."""

    seed: int = 0
    #: Plan horizon: every fault starts inside [0, duration).
    duration: float = 10.0
    partitions: int = 1
    latency_spikes: int = 1
    throttles: int = 1
    resets: int = 1
    blackholes: int = 1
    min_fault_s: float = 0.8
    max_fault_s: float = 2.5


def generate_plan(
    config: NemesisPlanConfig, coordinator: str, agents: List[str]
) -> List[Tuple[float, dict]]:
    """Seeded fault schedule: ``[(at_seconds, control_op), ...]``.

    The first partition always cuts the coordinator from one agent —
    agent↔agent links carry no 2PC traffic, so a plan whose only
    partition fell there would prove nothing.  Everything else picks
    pairs uniformly.
    """
    rng = random.Random(config.seed ^ 0x4E4D)
    peers = [coordinator] + list(agents)

    def window() -> float:
        return rng.uniform(0.05, config.duration * 0.6)

    def fault_len() -> float:
        return rng.uniform(config.min_fault_s, config.max_fault_s)

    def pair() -> Tuple[str, str]:
        return tuple(rng.sample(peers, 2))

    events: List[Tuple[float, dict]] = []
    for index in range(config.partitions):
        if index == 0 and agents:
            a, b = coordinator, rng.choice(list(agents))
        else:
            a, b = pair()
        events.append(
            (
                window(),
                {"op": "partition", "a": a, "b": b, "duration": fault_len()},
            )
        )
    for _ in range(config.latency_spikes):
        a, b = pair()
        events.append(
            (
                window(),
                {
                    "op": "latency",
                    "a": a,
                    "b": b,
                    "delay": rng.uniform(0.02, 0.15),
                    "duration": fault_len(),
                },
            )
        )
    for _ in range(config.throttles):
        a, b = pair()
        events.append(
            (
                window(),
                {
                    "op": "throttle",
                    "a": a,
                    "b": b,
                    "rate_kbps": rng.choice([32, 64, 128]),
                    "duration": fault_len(),
                },
            )
        )
    for _ in range(config.resets):
        a, b = pair()
        events.append((window(), {"op": "reset", "a": a, "b": b}))
    for _ in range(config.blackholes):
        a, b = pair()
        events.append(
            (
                window(),
                {"op": "blackhole", "a": a, "b": b, "duration": fault_len()},
            )
        )
    events.sort(key=lambda item: item[0])
    return events


async def execute_plan(
    client: NemesisControlClient,
    plan: List[Tuple[float, dict]],
    on_event=None,
) -> List[dict]:
    """Fire a plan's ops at their offsets; returns the acknowledgements."""
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    acks: List[dict] = []
    for at, op in plan:
        delay = t0 + at - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        ack = await client.request(op)
        acks.append(ack)
        if on_event is not None:
            on_event(at, op, ack)
    return acks
