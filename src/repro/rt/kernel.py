"""``RealtimeKernel``: the deterministic event kernel, pumped by asyncio.

The protocol objects in ``core/`` only ever touch the kernel through
``schedule`` / ``schedule_at`` / ``call_soon`` / ``now`` (directly or
via ``Timer`` / ``Event`` / ``Process``). This subclass keeps the
entire deterministic machinery — the heap, the tombstone accounting,
carrier-based timer restarts — and merely changes *when* the heap is
drained: instead of ``run()`` fast-forwarding simulated time, an
asyncio ``call_later`` wakes up when the earliest live entry comes due
on the wall clock and drains everything that is ripe.

Time base: **1 simulated time unit = 1 wall-clock second**, measured
from this kernel's construction on the loop's monotonic clock. ``now``
therefore lags the wall clock between pumps but never runs ahead of
it, and never goes backwards — which is exactly the contract the
``History`` append path and the SN site clocks rely on.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.kernel.events import EventHandle, EventKernel


class RealtimeKernel(EventKernel):
    """An :class:`EventKernel` whose heap is drained on the wall clock."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        super().__init__()
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self._wake: Optional[asyncio.TimerHandle] = None
        self._wake_time: Optional[float] = None
        self._pumping = False
        #: Total pump passes (observability only).
        self.pumps = 0

    @property
    def wall(self) -> float:
        """Seconds elapsed since this kernel was created."""
        return self._loop.time() - self._t0

    # -- scheduling: keep the deterministic bookkeeping, then (re)arm ---------

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        handle = super().schedule(delay, callback)
        self._arm()
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        handle = super().schedule_at(time, callback)
        self._arm()
        return handle

    def _schedule_preallocated(
        self, time: float, seq: int, callback: Callable[[], None]
    ) -> EventHandle:
        handle = super()._schedule_preallocated(time, seq, callback)
        self._arm()
        return handle

    # -- the pump -------------------------------------------------------------

    def _arm(self) -> None:
        """(Re)aim the single asyncio wakeup at the earliest live entry."""
        if self._pumping:
            return  # the pump re-arms itself when it finishes
        nxt = self._next_live_time()
        if nxt is None:
            return
        if self._wake is not None:
            if self._wake_time is not None and self._wake_time <= nxt:
                return  # already waking early enough
            self._wake.cancel()
        self._wake_time = nxt
        self._wake = self._loop.call_later(max(0.0, nxt - self.wall), self._pump)

    def _pump(self) -> None:
        self._wake = None
        self._wake_time = None
        self.pumps += 1
        self._pumping = True
        try:
            # advance=True fast-forwards ``now`` to the wall clock once
            # the heap is drained of ripe entries, so idle periods do
            # not freeze simulated time behind real time.
            self.run(until=self.wall, advance=True)
        finally:
            self._pumping = False
            self._arm()

    def pump_now(self) -> None:
        """Drain everything ripe right now (tests and shutdown paths)."""
        self._pump()
